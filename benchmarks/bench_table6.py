"""Table 6 — ambiguous state changes by cause, and the strategy choice.

Paper values:

=======================  =====  ====
Cause                    Down   Up
=======================  =====  ====
Lost Message             194    174
Spurious Retransmission  240    28
Unknown                  27     0
Total                    461    202
=======================  =====  ====

…plus §4.3's conclusions: lost packets explain 56% of all doubles; the
ambiguous periods cover 7.8% of the measurement period; and "assuming the
link remains in the previous state pushes link downtime as seen by syslog
closest to matching link downtime as seen by IS-IS."
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.ambiguity import (
    AmbiguityCause,
    analyze_ambiguous_transitions,
    evaluate_ambiguity_strategies,
)
from repro.core.report import format_percent, render_table
from repro.intervals.timeline import AmbiguityStrategy

PAPER = {
    (AmbiguityCause.LOST_MESSAGE, "down"): 194,
    (AmbiguityCause.LOST_MESSAGE, "up"): 174,
    (AmbiguityCause.SPURIOUS_RETRANSMISSION, "down"): 240,
    (AmbiguityCause.SPURIOUS_RETRANSMISSION, "up"): 28,
    (AmbiguityCause.UNKNOWN, "down"): 27,
    (AmbiguityCause.UNKNOWN, "up"): 0,
}

CAUSE_LABELS = {
    AmbiguityCause.LOST_MESSAGE: "Lost Message",
    AmbiguityCause.SPURIOUS_RETRANSMISSION: "Spurious Retransmission",
    AmbiguityCause.UNKNOWN: "Unknown",
}

STRATEGY_LABELS = {
    AmbiguityStrategy.ASSUME_DOWN: "assume down",
    AmbiguityStrategy.ASSUME_UP: "assume up",
    AmbiguityStrategy.PREVIOUS_STATE: "previous state",
}


def build_report(analysis):
    return analyze_ambiguous_transitions(
        analysis.syslog.timelines,
        analysis.isis.is_transitions,
        analysis.isis.timelines,
        analysis.horizon_start,
        analysis.horizon_end,
        window=analysis.options.matching.window,
    )


def build_table(analysis) -> str:
    report = build_report(analysis)
    rows = []
    for cause in AmbiguityCause:
        rows.append(
            [
                CAUSE_LABELS[cause],
                report.count("down", cause),
                PAPER[(cause, "down")],
                report.count("up", cause),
                PAPER[(cause, "up")],
            ]
        )
    rows.append(["Total", report.total("down"), 461, report.total("up"), 202])
    main = render_table(
        ["Cause", "Down", "(paper)", "Up", "(paper)"],
        rows,
        title="Table 6: Ambiguous state changes by cause and direction",
    )

    evaluations = evaluate_ambiguity_strategies(
        analysis.syslog.isis_transitions,
        analysis.isis.timelines,
        analysis.resolver.single_links(),
        analysis.horizon_start,
        analysis.horizon_end,
    )
    strategy_rows = [
        [
            STRATEGY_LABELS[e.strategy],
            f"{e.syslog_downtime_hours:,.0f}",
            f"{e.isis_downtime_hours:,.0f}",
            f"{e.error_hours:+,.0f}",
            f"{e.per_link_absolute_error_hours:,.0f}",
        ]
        for e in evaluations
    ]
    strategies = render_table(
        [
            "Strategy",
            "Syslog downtime (h)",
            "IS-IS downtime (h)",
            "Net error (h)",
            "Per-link |error| (h)",
        ],
        strategy_rows,
        title=(
            "§4.3: ambiguity strategies on the RAW reconstruction "
            "(before §4.2 sanitisation; bench_ablation_strategy ranks the "
            "sanitised pipeline, where the paper's previous-state choice wins)"
        ),
    )

    extras = render_table(
        ["Quantity", "Measured", "Paper"],
        [
            [
                "Lost packets explain (all doubles)",
                format_percent(
                    (
                        report.count("down", AmbiguityCause.LOST_MESSAGE)
                        + report.count("up", AmbiguityCause.LOST_MESSAGE)
                    )
                    / max(1, report.total("down") + report.total("up"))
                ),
                "56%",
            ],
            [
                "Ambiguous share of measurement period",
                format_percent(report.ambiguous_period_fraction, digits=1),
                "7.8%",
            ],
        ],
        title="§4.3: aggregate ambiguity accounting",
    )
    return main + "\n\n" + strategies + "\n\n" + extras


def test_table6(benchmark, paper_analysis):
    table = benchmark.pedantic(
        build_table, args=(paper_analysis,), rounds=1, iterations=1
    )
    emit("table6", table)

    report = build_report(paper_analysis)
    # Shape: double downs outnumber double ups; spurious retransmissions
    # dominate the down side more than the up side; unknowns are a small
    # minority in both directions.
    assert report.total("down") > report.total("up")
    assert report.cause_fraction(
        "down", AmbiguityCause.SPURIOUS_RETRANSMISSION
    ) > report.cause_fraction("up", AmbiguityCause.SPURIOUS_RETRANSMISSION)
    assert report.cause_fraction(
        "up", AmbiguityCause.LOST_MESSAGE
    ) > 0.5  # paper: 86% of double ups are lost downs
    for direction in ("down", "up"):
        assert report.cause_fraction(direction, AmbiguityCause.UNKNOWN) < 0.35

    evaluations = evaluate_ambiguity_strategies(
        paper_analysis.syslog.isis_transitions,
        paper_analysis.isis.timelines,
        paper_analysis.resolver.single_links(),
        paper_analysis.horizon_start,
        paper_analysis.horizon_end,
    )
    # On the raw (unsanitised) reconstruction the stable claim is that
    # forcing ambiguous windows DOWN is by far the worst choice; the
    # paper's previous-state-vs-assume-up ranking is asserted on the
    # sanitised pipeline in bench_ablation_strategy.
    assert evaluations[-1].strategy is AmbiguityStrategy.ASSUME_DOWN
