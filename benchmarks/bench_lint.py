"""Lint driver — wall time over ``src/`` sequential vs parallel vs cached.

Not a paper table: this bench tracks ``repro lint`` itself, so the
pre-commit loop (``repro lint --changed``) and the CI job stay fast as
the rule set and the tree grow.  Three configurations over the same
files:

* **sequential, no cache** — the baseline: every per-module rule runs
  in-process, project-wide rules included;
* **parallel, cold cache** — per-module rules fan out over worker
  processes and populate the on-disk result cache as they go;
* **parallel, warm cache** — the pre-commit steady state: per-module
  results come from the cache keyed on (file bytes, rule-set version),
  so only the project-wide rules actually run.

The acceptance bar is the steady state: a warm-cache run must beat the
uncached sequential run, and all three must agree finding-for-finding.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import emit
from repro.core.report import render_table
from repro.devtools.cache import LintCache
from repro.devtools.lint import (
    collect_files,
    default_jobs,
    lint_project,
    load_project,
)

LINT_PATHS = ["src"]

# Budget for the parallel cold-cache run: twice the 5.9s measured when
# the rule set stopped at the parallel-safety tier.  The semantic-drift
# (S401–S404) and atomicity (A501–A503) tiers ride the shared call
# graph and spine extraction, so adding them must not double the cold
# lint; a regression here means a rule is re-deriving project state
# instead of using the memoised analyses.
COLD_LINT_BUDGET_SECONDS = 11.8


@pytest.fixture(scope="module")
def lint_files():
    files = collect_files(LINT_PATHS)
    assert len(files) > 50, "bench must see the real tree"
    return files


def _timed_run(files, *, jobs, cache):
    project = load_project(files)  # re-parse each round: a real run
    start = time.perf_counter()
    active, suppressed = lint_project(
        project, jobs=jobs, cache=cache
    )
    elapsed = time.perf_counter() - start
    return active, suppressed, elapsed


def build_table(files, cache_dir) -> str:
    jobs = default_jobs()
    sequential = _timed_run(files, jobs=1, cache=None)
    cache = LintCache(str(cache_dir))
    cold = _timed_run(files, jobs=jobs, cache=cache)
    assert cache.hits == 0, "first cached run must be all misses"
    warm = _timed_run(files, jobs=jobs, cache=cache)
    assert cache.hits >= len(files), "second run must hit the cache"

    # All three configurations must agree finding-for-finding.
    assert sequential[0] == cold[0] == warm[0]
    assert sequential[1] == cold[1] == warm[1]
    # The steady state must beat the uncached sequential run.
    assert warm[2] < sequential[2], (
        f"warm cache ({warm[2]:.2f}s) must beat sequential "
        f"({sequential[2]:.2f}s)"
    )
    # The cold parallel run carries every tier, drift rules included,
    # and must stay inside the budget.
    assert cold[2] < COLD_LINT_BUDGET_SECONDS, (
        f"cold lint ({cold[2]:.2f}s) blew the "
        f"{COLD_LINT_BUDGET_SECONDS}s budget"
    )

    def row(label, run, note):
        active, _suppressed, elapsed = run
        return [
            label,
            f"{elapsed:.2f}s",
            f"{len(files) / elapsed:,.0f} files/s",
            note,
        ]

    rows = [
        row("sequential, no cache", sequential, "baseline"),
        row("parallel, cold cache", cold, f"jobs={jobs}, all misses"),
        row(
            "parallel, warm cache",
            warm,
            "steady state: only project-wide rules run",
        ),
        [
            "findings",
            f"{len(sequential[0])} active",
            f"{len(sequential[1])} suppressed",
            "identical across all three",
        ],
    ]
    return render_table(
        ["Configuration", "Wall time", "Rate", "Note"],
        rows,
        title=f"repro lint over src/ ({len(files)} files)",
    )


def test_lint_wall_time(benchmark, lint_files, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("lint-cache")
    table = benchmark.pedantic(
        build_table, args=(lint_files, cache_dir), rounds=1, iterations=1
    )
    emit("lint", table)
