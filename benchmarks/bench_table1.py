"""Table 1 — summary of the data used in the study.

Paper values: 60 Core + 175 CPE routers, 11,623 config files, 84 Core +
215 CPE IS-IS links, 47,371 syslog messages, 11,095,550 IS-IS updates.

The simulated campaign matches the topology exactly; message counts differ
because (a) our config archive holds one snapshot per router rather than
five years of snapshots, and (b) the paper's LSP count includes ~15-minute
periodic refreshes that carry no state changes — our listener archives only
state-bearing floods (plus resyncs), which is the part the analysis uses.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.report import render_table


def build_table(dataset) -> str:
    s = dataset.summary
    rows = [
        ["Routers (Core)", s.router_count_core, 60],
        ["Routers (CPE)", s.router_count_cpe, 175],
        ["Router config files", s.config_file_count, "11,623 (archive)"],
        ["IS-IS links (Core)", s.link_count_core, 84],
        ["IS-IS links (CPE)", s.link_count_cpe, 215],
        ["Multi-link device pairs", len(dataset.network.multi_link_pairs()), 26],
        ["Customer sites", len(dataset.network.sites), "~120"],
        ["Syslog messages (delivered)", s.syslog_delivered, "47,371"],
        ["Syslog datagrams lost in transit", s.syslog_lost, "(unknown)"],
        ["Syslog datagrams lost in-band", s.syslog_inband_lost, "(unknown)"],
        ["Spurious syslog retransmissions", s.syslog_spurious, "(unknown)"],
        ["IS-IS LSP records", s.lsp_record_count, "11,095,550 (incl. refreshes)"],
        ["Ground-truth failures injected", s.ground_truth_failure_count, "(n/a)"],
        ["Listener outages", s.listener_outage_count, "(several)"],
        ["Trouble tickets", s.ticket_count, "(n/a)"],
    ]
    return render_table(
        ["Parameter", "Measured", "Paper"],
        rows,
        title="Table 1: Summary of data used in the study",
    )


def test_table1(benchmark, paper_dataset):
    table = benchmark(build_table, paper_dataset)
    emit("table1", table)
    s = paper_dataset.summary
    assert s.router_count_core == 60 and s.router_count_cpe == 175
    assert s.link_count_core == 84 and s.link_count_cpe == 215
    assert len(paper_dataset.network.multi_link_pairs()) == 26
