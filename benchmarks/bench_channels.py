"""Extension — all five data sources on the same failures.

The paper's introduction lists the tools pressed into failure-analysis
service: syslog, routing protocol monitoring, SNMP, trouble tickets, and
active probes.  The study compares the first two; the library implements
all five, and this bench lines them up against generative ground truth:

* per-link channels (IS-IS, syslog, SNMP @5 min) graded on failure recall,
  precision, and downtime error;
* isolation channels (IS-IS-reconstructed, syslog-reconstructed, active
  probes @60 s) graded on isolation downtime vs true isolation;
* tickets graded on coverage of ticket-worthy (>30 min) outages.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.groundtruth import grade_channel, ground_truth_failure_events
from repro.core.isolation import compute_isolation, isolation_summary
from repro.core.matching import MatchConfig
from repro.core.report import format_percent, render_table
from repro.intervals import Interval, IntervalSet
from repro.probing import ActiveProber, ProbeParameters, reconstruct_outages_stream
from repro.snmp import PollParameters, SnmpPoller, reconstruct_stream
from repro.util.timefmt import SECONDS_PER_DAY

SNMP_PERIOD = 300.0


def _grade_rows(dataset, analysis):
    truth = ground_truth_failure_events(dataset)
    poller = SnmpPoller(dataset, PollParameters(period=SNMP_PERIOD), seed=1)
    # Stream: a 13-month archive holds ~66M samples — never materialise it.
    snmp = reconstruct_stream(poller.samples(), len(poller.poll_times()))
    single = {
        l.canonical_name for l in dataset.network.links.values()
        if l.link_id in set(dataset.network.single_link_ids())
    }
    snmp_failures = [f for f in snmp.failures if f.link in single]

    grades = [
        ("IS-IS listener", analysis.isis_failures, MatchConfig()),
        ("syslog", analysis.syslog_failures, MatchConfig()),
        # SNMP edges carry ±period/2 quantisation; match accordingly.
        ("SNMP @5min", snmp_failures, MatchConfig(window=SNMP_PERIOD)),
    ]
    rows = []
    for label, failures, config in grades:
        grade = grade_channel(label, failures, truth, config)
        rows.append(
            [
                label,
                f"{grade.reconstructed_count:,}",
                format_percent(grade.recall, digits=1),
                format_percent(grade.precision, digits=1),
                f"{100 * grade.downtime_error_fraction:+.1f}%",
            ]
        )
    return rows


def _isolation_rows(dataset, analysis):
    def down_map(failures):
        spans = {}
        for f in failures:
            spans.setdefault(f.link, []).append(Interval(f.start, f.end))
        return {link: IntervalSet(items) for link, items in spans.items()}

    prober = ActiveProber(dataset, ProbeParameters(period=60.0), seed=1)
    probed = reconstruct_outages_stream(prober.samples(), prober.parameters)
    truth_days = (
        sum(s.total_duration() for s in prober.true_isolation.values())
        / SECONDS_PER_DAY
    )

    rows = [
        [
            "truth (generative)",
            sum(len(s.intervals) for s in prober.true_isolation.values()),
            f"{truth_days:.1f}",
        ]
    ]
    for label, per_site in (
        (
            "IS-IS reconstruction",
            compute_isolation(
                dataset.network, down_map(analysis.isis_failures),
                analysis.horizon_start, analysis.horizon_end,
            ),
        ),
        (
            "syslog reconstruction",
            compute_isolation(
                dataset.network, down_map(analysis.syslog_failures),
                analysis.horizon_start, analysis.horizon_end,
            ),
        ),
        ("active probes @60s", probed),
    ):
        summary = isolation_summary(per_site)
        rows.append(
            [label, f"{summary.event_count:,}", f"{summary.downtime_days:.1f}"]
        )
    return rows


def _ticket_rows(dataset):
    worthy = [
        f for f in dataset.ground_truth_failures if f.duration >= 1800.0
    ]
    covered = sum(
        dataset.tickets.confirms(
            dataset.network.links[f.link_id].canonical_name, f.start, f.end
        )
        for f in worthy
    )
    return [
        ["ticket-worthy (>30min) outages", f"{len(worthy):,}"],
        ["covered by a ticket", f"{covered:,} ({format_percent(covered / max(1, len(worthy)))})"],
        ["total tickets", f"{len(dataset.tickets):,}"],
    ]


def build_table(dataset, analysis) -> str:
    failures = render_table(
        ["Channel", "Failures", "Recall", "Precision", "Downtime error"],
        _grade_rows(dataset, analysis),
        title="Per-link channels vs generative ground truth",
    )
    isolation = render_table(
        ["Isolation source", "Events", "Downtime (days)"],
        _isolation_rows(dataset, analysis),
        title="Customer-isolation sources vs true isolation",
    )
    tickets = render_table(
        ["Quantity", "Value"],
        _ticket_rows(dataset),
        title="Trouble tickets (the human channel)",
    )
    return (
        "Extension: the paper's five data sources on one campaign\n\n"
        + failures + "\n\n" + isolation + "\n\n" + tickets
    )


def test_channels(benchmark, paper_dataset, paper_analysis):
    table = benchmark.pedantic(
        build_table, args=(paper_dataset, paper_analysis), rounds=1, iterations=1
    )
    emit("channels", table)

    truth = ground_truth_failure_events(paper_dataset)
    poller = SnmpPoller(paper_dataset, PollParameters(period=SNMP_PERIOD), seed=1)
    snmp = reconstruct_stream(poller.samples(), len(poller.poll_times()))
    isis_grade = grade_channel("isis", paper_analysis.isis_failures, truth)
    syslog_grade = grade_channel("syslog", paper_analysis.syslog_failures, truth)
    snmp_grade = grade_channel(
        "snmp", snmp.failures, truth, MatchConfig(window=SNMP_PERIOD)
    )
    # The fidelity ordering the paper's tool hierarchy implies.
    assert isis_grade.recall > syslog_grade.recall > snmp_grade.recall
    assert snmp_grade.recall < 0.5  # five-minute polls cannot see the bulk
