"""Table 5 — per-link statistics, Core vs CPE, syslog vs IS-IS.

Paper values (median / average / 95th):

Annualised failures per link:  Core syslog 5.7/14.2/46.2, IS-IS 6.6/16.1/46.2;
                               CPE syslog 11.3/49.1/249, IS-IS 12.3/45.5/253.
Failure duration (seconds):    Core syslog 52/1078/6318, IS-IS 42/1527/6683;
                               CPE syslog 10/814/665, IS-IS 12/1140/825.
Time between failures (hours): Core 0.2/343/2014 vs 0.2/347/2147;
                               CPE 0.01/116/673 vs 0.03/136/845.
Annualised downtime (hours):   Core 0.6/4/24 vs 0.8/7/26;
                               CPE 1.9/11/49 vs 2.4/14/51.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.statistics import class_statistics
from repro.core.report import render_table

PAPER = {
    # (class, channel) -> metric -> (median, average, p95)
    ("Core", "Syslog"): {
        "failures": ("5.7", "14.2", "46.2"),
        "duration": ("52", "1078", "6318"),
        "tbf": ("0.2", "343", "2014"),
        "downtime": ("0.6", "4", "24"),
    },
    ("Core", "IS-IS"): {
        "failures": ("6.6", "16.1", "46.2"),
        "duration": ("42", "1527", "6683"),
        "tbf": ("0.2", "347", "2147"),
        "downtime": ("0.8", "7", "26"),
    },
    ("CPE", "Syslog"): {
        "failures": ("11.3", "49.1", "249"),
        "duration": ("10", "814", "665"),
        "tbf": ("0.01", "116", "673"),
        "downtime": ("1.9", "11", "49"),
    },
    ("CPE", "IS-IS"): {
        "failures": ("12.3", "45.5", "253"),
        "duration": ("12", "1140", "825"),
        "tbf": ("0.03", "136", "845"),
        "downtime": ("2.4", "14", "51"),
    },
}

METRIC_LABELS = {
    "failures": "Annualized failures per link",
    "duration": "Failure duration (seconds)",
    "tbf": "Time between failures (hours)",
    "downtime": "Annualized link downtime (hours)",
}


def compute_blocks(analysis):
    links = analysis.resolver.single_links()
    core = [l for l in links if l.is_core]
    cpe = [l for l in links if not l.is_core]
    blocks = {}
    for class_label, selection in (("Core", core), ("CPE", cpe)):
        for channel_label, failures in (
            ("Syslog", analysis.syslog_failures),
            ("IS-IS", analysis.isis_failures),
        ):
            blocks[(class_label, channel_label)] = class_statistics(
                failures, selection, analysis.horizon_start, analysis.horizon_end
            )
    return blocks


def build_table(analysis) -> str:
    blocks = compute_blocks(analysis)
    sections = []
    for metric, attribute in (
        ("failures", "failures_per_link_year"),
        ("duration", "duration_seconds"),
        ("tbf", "time_between_failures_hours"),
        ("downtime", "downtime_hours_per_year"),
    ):
        rows = []
        for stat_name, index in (("Median", "median"), ("Average", "average"), ("95%", "p95")):
            row = [stat_name]
            for class_label in ("Core", "CPE"):
                for channel_label in ("Syslog", "IS-IS"):
                    stats = getattr(blocks[(class_label, channel_label)], attribute)
                    value = getattr(stats, index)
                    paper_idx = {"median": 0, "average": 1, "p95": 2}[index]
                    paper = PAPER[(class_label, channel_label)][metric][paper_idx]
                    row.append(f"{value:,.2f}" if value < 10 else f"{value:,.0f}")
                    row.append(f"[{paper}]")
            rows.append(row)
        sections.append(
            render_table(
                [
                    "Statistic",
                    "Core/Syslog", "(paper)",
                    "Core/IS-IS", "(paper)",
                    "CPE/Syslog", "(paper)",
                    "CPE/IS-IS", "(paper)",
                ],
                rows,
                title=METRIC_LABELS[metric],
            )
        )
    return (
        "Table 5: Statistics for syslog-inferred and IS-IS listener-reported failures\n\n"
        + "\n\n".join(sections)
    )


def test_table5(benchmark, paper_analysis):
    table = benchmark(build_table, paper_analysis)
    emit("table5", table)

    blocks = compute_blocks(paper_analysis)
    core_isis = blocks[("Core", "IS-IS")]
    cpe_isis = blocks[("CPE", "IS-IS")]
    core_sys = blocks[("Core", "Syslog")]
    cpe_sys = blocks[("CPE", "Syslog")]

    # CPE links fail more often than Core links, in both channels.
    assert (
        cpe_isis.failures_per_link_year.median
        > core_isis.failures_per_link_year.median
    )
    assert (
        cpe_sys.failures_per_link_year.median
        > core_sys.failures_per_link_year.median
    )
    # CPE failures are shorter at the median than Core failures.
    assert cpe_isis.duration_seconds.median < core_isis.duration_seconds.median
    # Rates are heavy tailed: average well above median.
    assert (
        cpe_isis.failures_per_link_year.average
        > 2 * cpe_isis.failures_per_link_year.median
    )
    # Downtime per CPE link-year exceeds Core at the median (averages are
    # dominated by a handful of giant outages and too noisy to rank).
    assert (
        cpe_isis.downtime_hours_per_year.median
        > core_isis.downtime_hours_per_year.median
    )
    # Magnitudes land in the paper's ballpark.
    assert 3.0 <= core_isis.failures_per_link_year.median <= 13.0
    assert 6.0 <= cpe_isis.failures_per_link_year.median <= 25.0
    assert 10.0 <= core_isis.duration_seconds.median <= 90.0
    assert 4.0 <= cpe_isis.duration_seconds.median <= 30.0
