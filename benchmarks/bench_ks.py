"""§4.2's Kolmogorov–Smirnov consistency verdicts.

Paper: "syslog and IS-IS produce consistent data for failures per link as
well as link downtime, but not failure duration."

Note on sample structure: failures-per-link and downtime samples have one
observation per link (n≈270), duration has one per failure (n≈10,000) —
the KS test's power grows with n, which is partly *why* duration fails
while the per-link metrics pass.  The reproduction inherits that structure.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.report import render_table
from repro.core.statistics import (
    annualized_downtime_hours,
    annualized_failure_counts,
    failure_durations,
    ks_compare,
)


def _samples(analysis):
    links = analysis.resolver.single_links()
    out = {}
    for label, failures in (
        ("Syslog", analysis.syslog_failures),
        ("IS-IS", analysis.isis_failures),
    ):
        out[label] = {
            "failures per link": list(
                annualized_failure_counts(
                    failures, links, analysis.horizon_start, analysis.horizon_end
                ).values()
            ),
            "link downtime": list(
                annualized_downtime_hours(
                    failures, links, analysis.horizon_start, analysis.horizon_end
                ).values()
            ),
            "failure duration": failure_durations(failures),
        }
    return out


def build_table(analysis) -> str:
    samples = _samples(analysis)
    paper_verdicts = {
        "failures per link": "consistent",
        "link downtime": "consistent",
        "failure duration": "NOT consistent",
    }
    rows = []
    results = {}
    for metric in ("failures per link", "link downtime", "failure duration"):
        result = ks_compare(samples["Syslog"][metric], samples["IS-IS"][metric])
        results[metric] = result
        rows.append(
            [
                metric,
                f"{result.statistic:.4f}",
                f"{result.pvalue:.4f}",
                "consistent" if result.consistent else "NOT consistent",
                paper_verdicts[metric],
            ]
        )
    return (
        render_table(
            ["Metric", "KS statistic", "p-value", "verdict (α=0.05)", "paper"],
            rows,
            title="§4.2: Two-sample KS tests, syslog vs IS-IS",
        ),
        results,
    )


def test_ks(benchmark, paper_analysis):
    table, results = benchmark(build_table, paper_analysis)
    emit("ks", table)

    # The paper's headline: duration is the metric that fails.
    assert not results["failure duration"].consistent
    assert results["failures per link"].consistent
    assert results["link downtime"].consistent
    # Duration disagrees more than the per-link metrics do.
    assert results["failure duration"].statistic >= min(
        results["failures per link"].statistic,
        results["link downtime"].statistic,
    )
