"""Extension — grading both channels against the simulator's actual truth.

The paper must *assume* IS-IS is ground truth; the simulation can check
that assumption.  This bench grades each channel's reconstructed failures
against the injected ones (same ±10 s matching) and reports recall,
precision, and downtime error — quantifying how gold the gold standard is.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.groundtruth import grade_both_channels
from repro.core.report import format_percent, render_table


def build_table(dataset, analysis) -> str:
    grades = grade_both_channels(
        dataset, analysis.syslog_failures, analysis.isis_failures
    )
    rows = []
    for label in ("isis", "syslog"):
        grade = grades[label]
        rows.append(
            [
                grade.channel,
                f"{grade.truth_count:,}",
                f"{grade.reconstructed_count:,}",
                format_percent(grade.recall, digits=1),
                format_percent(grade.precision, digits=1),
                f"{100 * grade.downtime_error_fraction:+.1f}%",
            ]
        )
    return render_table(
        [
            "Channel",
            "True failures",
            "Reconstructed",
            "Recall",
            "Precision",
            "Downtime error",
        ],
        rows,
        title=(
            "Extension: channels graded against generative ground truth "
            "(validates the paper's IS-IS-as-ground-truth assumption)"
        ),
    )


def test_groundtruth(benchmark, paper_dataset, paper_analysis):
    table = benchmark(build_table, paper_dataset, paper_analysis)
    emit("groundtruth", table)

    grades = grade_both_channels(
        paper_dataset,
        paper_analysis.syslog_failures,
        paper_analysis.isis_failures,
    )
    isis, syslog = grades["isis"], grades["syslog"]
    assert isis.recall > syslog.recall
    assert isis.precision >= syslog.precision - 0.02
    assert isis.recall > 0.6
    assert abs(isis.downtime_error_fraction) < abs(
        syslog.downtime_error_fraction
    ) + 0.15
