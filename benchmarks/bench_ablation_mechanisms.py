"""Ablation — which error mechanism causes which disparity.

Each modelled syslog failure mode is switched off individually (leaving
the rest at defaults) and the headline disparity metrics re-measured.
The deltas attribute the paper's findings to their generating mechanisms:
burst/whole-flap loss drives the None column, long-outage suppression
drives the downtime deficit, blips drive the false positives, reminders
drive the spurious double-downs.

Runs at a fixed 60-day scale (7 scenario+analysis executions).
"""

from __future__ import annotations

import dataclasses

from _bench_utils import emit
from repro import ScenarioConfig, run_analysis, run_scenario
from repro.core.report import format_percent, render_table
from repro.simulation.workload import WorkloadParameters, cenic_default_workload
from repro.syslog.transport import TransportParameters
from repro.util.timefmt import SECONDS_PER_HOUR

DAYS = 60.0
SEED = 77


def _workload(**profile_overrides) -> WorkloadParameters:
    base = cenic_default_workload()
    return WorkloadParameters(
        core=dataclasses.replace(base.core, **profile_overrides),
        cpe=dataclasses.replace(base.cpe, **profile_overrides),
    )


def variants():
    yield "baseline (all on)", ScenarioConfig(seed=SEED, duration_days=DAYS)
    yield "no burst loss", ScenarioConfig(
        seed=SEED,
        duration_days=DAYS,
        transport=TransportParameters(burst_loss_probability=0.0),
    )
    yield "no whole-failure suppression", ScenarioConfig(
        seed=SEED,
        duration_days=DAYS,
        workload=_workload(
            suppress_whole_flap=0.0,
            suppress_whole_long=0.0,
            suppress_whole_base=0.0,
        ),
    )
    yield "no recovery blips", ScenarioConfig(
        seed=SEED,
        duration_days=DAYS,
        workload=_workload(
            handshake_abort_probability=0.0,
            adjacency_reset_probability=0.0,
        ),
    )
    yield "no spurious reminders", ScenarioConfig(
        seed=SEED,
        duration_days=DAYS,
        workload=_workload(
            reminder_down_probability=0.0, reminder_up_probability=0.0
        ),
    )
    yield "no in-band loss", ScenarioConfig(
        seed=SEED, duration_days=DAYS, inband_drop_probability=0.0
    )


def measure(config):
    analysis = run_analysis(run_scenario(config))
    cov = analysis.coverage
    match = analysis.failure_match
    syslog_hours = sum(f.duration for f in analysis.syslog_failures) / SECONDS_PER_HOUR
    isis_hours = sum(f.duration for f in analysis.isis_failures) / SECONDS_PER_HOUR
    anomalies = sum(
        len(t.anomalies) for t in analysis.syslog.timelines.values()
    )
    return {
        "down_none": cov.fraction("down", 0),
        "fp_rate": len(match.only_a) / max(1, len(analysis.syslog_failures)),
        "downtime_gap": (syslog_hours - isis_hours) / max(1.0, isis_hours),
        "anomalies": anomalies,
    }


def build_table() -> str:
    rows = []
    results = {}
    for label, config in variants():
        metrics = measure(config)
        results[label] = metrics
        rows.append(
            [
                label,
                format_percent(metrics["down_none"]),
                format_percent(metrics["fp_rate"]),
                f"{100 * metrics['downtime_gap']:+.0f}%",
                metrics["anomalies"],
            ]
        )
    table = render_table(
        [
            "Variant",
            "DOWN None",
            "Syslog FP rate",
            "Downtime vs IS-IS",
            "Double up/downs",
        ],
        rows,
        title="Ablation: one mechanism off at a time (60-day campaigns)",
    )
    return table, results


def test_ablation_mechanisms(benchmark):
    (table, results) = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("ablation_mechanisms", table)

    base = results["baseline (all on)"]
    # Whole-failure suppression is the dominant source of missed
    # transitions; removing it must cut DOWN None substantially.
    assert results["no whole-failure suppression"]["down_none"] < base["down_none"] - 0.04
    # Blips are a major FP source.
    assert results["no recovery blips"]["fp_rate"] < base["fp_rate"]
    # Reminders drive the repeated-message anomalies.
    assert results["no spurious reminders"]["anomalies"] < base["anomalies"]
