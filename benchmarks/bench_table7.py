"""Table 7 — customer isolation from the backbone (§4.4).

Paper values:

============  ================  ==============  ===============
Data source   Isolating events  Sites impacted  Downtime (days)
============  ================  ==============  ===============
IS-IS         1,401             74              26.3
Syslog        1,060             67              22.3
Intersection  1,002             66              19.8
============  ================  ==============  ===============

…plus the unmatched-event drill-down: syslog reports events IS-IS never
saw, and IS-IS events missed by syslog carry disproportionate downtime —
reconstruction error amplifies at this aggregate level.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.isolation import (
    compute_isolation,
    intersect_isolation,
    isolation_summary,
    match_isolation_events,
)
from repro.core.report import render_table
from repro.intervals import Interval, IntervalSet


def _down_map(failures):
    spans = {}
    for f in failures:
        spans.setdefault(f.link, []).append(Interval(f.start, f.end))
    return {link: IntervalSet(items) for link, items in spans.items()}


def compute_all(dataset, analysis):
    network = dataset.network
    isis_iso = compute_isolation(
        network,
        _down_map(analysis.isis_failures),
        analysis.horizon_start,
        analysis.horizon_end,
    )
    syslog_iso = compute_isolation(
        network,
        _down_map(analysis.syslog_failures),
        analysis.horizon_start,
        analysis.horizon_end,
    )
    return isis_iso, syslog_iso, intersect_isolation(isis_iso, syslog_iso)


def build_table(dataset, analysis) -> str:
    isis_iso, syslog_iso, inter_iso = compute_all(dataset, analysis)
    summaries = {
        "IS-IS": isolation_summary(isis_iso),
        "Syslog": isolation_summary(syslog_iso),
        "Intersection": isolation_summary(inter_iso),
    }
    paper = {
        "IS-IS": ("1,401", "74", "26.3"),
        "Syslog": ("1,060", "67", "22.3"),
        "Intersection": ("1,002", "66", "19.8"),
    }
    rows = [
        [
            label,
            f"{summary.event_count:,}",
            paper[label][0],
            summary.sites_impacted,
            paper[label][1],
            f"{summary.downtime_days:.1f}",
            paper[label][2],
        ]
        for label, summary in summaries.items()
    ]
    main = render_table(
        ["Data source", "Events", "(paper)", "Sites", "(paper)", "Days", "(paper)"],
        rows,
        title="Table 7: Customer isolation from the backbone",
    )

    # Unmatched-event drill-down (§4.4's last paragraphs).
    syslog_events = summaries["Syslog"].events
    isis_events = summaries["IS-IS"].events
    _, syslog_only = match_isolation_events(syslog_events, isis_iso)
    _, isis_only = match_isolation_events(isis_events, syslog_iso)
    drill = render_table(
        ["Quantity", "Measured", "Paper"],
        [
            ["Syslog events with no IS-IS overlap", len(syslog_only), 12],
            ["IS-IS events with no syslog overlap", len(isis_only), 218],
            [
                "IS-IS-only isolation downtime (days)",
                f"{sum(e.duration for e in isis_only) / 86400.0:.1f}",
                "(part of 6.5)",
            ],
        ],
        title="§4.4: unmatched isolating events",
    )
    return main + "\n\n" + drill


def test_table7(benchmark, paper_dataset, paper_analysis):
    table = benchmark.pedantic(
        build_table, args=(paper_dataset, paper_analysis), rounds=1, iterations=1
    )
    emit("table7", table)

    isis_iso, syslog_iso, inter_iso = compute_all(paper_dataset, paper_analysis)
    isis_summary = isolation_summary(isis_iso)
    syslog_summary = isolation_summary(syslog_iso)
    inter_summary = isolation_summary(inter_iso)

    # The paper's ordering: IS-IS sees the most isolation; the intersection
    # is the smallest on every column.
    assert isis_summary.event_count > 0
    assert inter_summary.downtime_days <= syslog_summary.downtime_days + 1e-9
    assert inter_summary.downtime_days <= isis_summary.downtime_days + 1e-9
    assert inter_summary.sites_impacted <= min(
        isis_summary.sites_impacted, syslog_summary.sites_impacted
    )
    # IS-IS sees more isolating events than syslog (the paper's 1,401 vs
    # 1,060): syslog misses whole failures on the isolating cut.
    assert isis_summary.event_count > syslog_summary.event_count
    # The two downtime totals are the same order of magnitude but clearly
    # disagree (paper: 26.3 vs 22.3 days); a handful of phantom or missed
    # multi-day isolations can swing the ratio either way at small scale.
    ratio = syslog_summary.downtime_days / isis_summary.downtime_days
    assert 0.5 <= ratio <= 1.5
    # A substantial share of sites is affected at 13-month scale.
    assert isis_summary.sites_impacted >= 30
