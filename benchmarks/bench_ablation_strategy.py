"""Ablation — end-to-end impact of the ambiguity strategy (§4.3).

bench_table6 evaluates the three strategies on *downtime* directly from
transitions; this ablation re-runs the entire pipeline under each strategy
(including DISCARD, the authors' earlier approach) and compares the full
Table 4 row each produces, showing that the strategy choice propagates into
every downstream statistic.
"""

from __future__ import annotations

from _bench_utils import emit
from repro import AnalysisOptions, run_analysis
from repro.core.extract_syslog import SyslogExtractionConfig
from repro.core.report import render_table
from repro.intervals.timeline import AmbiguityStrategy
from repro.util.timefmt import SECONDS_PER_HOUR


def _per_link_hours(failures):
    downtime = {}
    for f in failures:
        downtime[f.link] = downtime.get(f.link, 0.0) + f.duration
    return {link: seconds / SECONDS_PER_HOUR for link, seconds in downtime.items()}


def _per_link_l1(failures_a, failures_b):
    a, b = _per_link_hours(failures_a), _per_link_hours(failures_b)
    return sum(abs(a.get(l, 0.0) - b.get(l, 0.0)) for l in set(a) | set(b))

STRATEGIES = [
    AmbiguityStrategy.PREVIOUS_STATE,
    AmbiguityStrategy.ASSUME_DOWN,
    AmbiguityStrategy.ASSUME_UP,
    AmbiguityStrategy.DISCARD,
]


def run_all(dataset):
    results = {}
    for strategy in STRATEGIES:
        options = AnalysisOptions(
            syslog=SyslogExtractionConfig(strategy=strategy)
        )
        results[strategy] = run_analysis(dataset, options)
    return results


def build_table(dataset) -> str:
    results = run_all(dataset)
    isis_hours = sum(
        f.duration for f in results[AmbiguityStrategy.PREVIOUS_STATE].isis_failures
    ) / SECONDS_PER_HOUR
    rows = []
    for strategy in STRATEGIES:
        analysis = results[strategy]
        syslog_hours = sum(f.duration for f in analysis.syslog_failures) / SECONDS_PER_HOUR
        l1 = _per_link_l1(analysis.syslog_failures, analysis.isis_failures)
        rows.append(
            [
                strategy.value,
                f"{len(analysis.syslog_failures):,}",
                f"{syslog_hours:,.0f}",
                f"{syslog_hours - isis_hours:+,.0f}",
                f"{l1:,.0f}",
                f"{analysis.failure_match.matched_count:,}",
            ]
        )
    return render_table(
        [
            "Strategy",
            "Syslog failures",
            "Syslog downtime (h)",
            "Net error vs IS-IS (h)",
            "Per-link |error| (h)",
            "Matched failures",
        ],
        rows,
        title=(
            f"Ablation: full-pipeline ambiguity strategies "
            f"(IS-IS downtime {isis_hours:,.0f} h)"
        ),
    )


def test_ablation_strategy(benchmark, paper_dataset):
    table = benchmark.pedantic(
        build_table, args=(paper_dataset,), rounds=1, iterations=1
    )
    emit("ablation_strategy", table)

    results = run_all(paper_dataset)
    isis_hours = sum(
        f.duration for f in results[AmbiguityStrategy.PREVIOUS_STATE].isis_failures
    ) / SECONDS_PER_HOUR

    def error(strategy):
        return _per_link_l1(
            results[strategy].syslog_failures, results[strategy].isis_failures
        )

    # The paper's pick: previous-state beats both forced assumptions on the
    # per-link downtime distance.
    assert error(AmbiguityStrategy.PREVIOUS_STATE) <= error(
        AmbiguityStrategy.ASSUME_DOWN
    )
    assert error(AmbiguityStrategy.PREVIOUS_STATE) <= error(
        AmbiguityStrategy.ASSUME_UP
    )
