"""Sustained multi-tenant throughput of the always-on service.

Not a paper table: this bench characterises ``repro.service`` the way
the fleet bench characterises the columnar path.  It stands up one
:class:`~repro.service.supervisor.Service` with **ten tenants** on
loopback, drives every tenant concurrently over real TCP sockets for
**30 seconds** at a paced message rate, and measures:

* **sustained throughput** — messages consumed per second, aggregate
  and per tenant, over the whole feed-plus-drain window;
* **ingest-to-consumed latency** — the delay between a line leaving the
  sender's socket and the tenant worker reporting it consumed.  A
  sampler polls :meth:`Service.status` continuously; each probe's
  latency is the gap between its send time and the first status sample
  whose ``lines_seen`` covers it, so the percentiles are honest upper
  bounds at the sampling resolution.

The run then asserts the service's accounting contract — the reason
this bench exists.  For every tenant, the books must close with **zero
unattributed loss**:

* transport: ``received == sent`` (TCP on loopback loses nothing);
* frontend: ``journalled + shed == received``, every shed line typed
  ``backpressure`` in the frontend ledger;
* worker: ``lines_seen == journalled`` and every line that did not
  become an event carries a typed drop reason.

Results land in ``BENCH_service.json`` at the repo root (and a text
table under ``benchmarks/results/``) so CI can archive them.

Usage::

    python benchmarks/bench_service.py           # 10 tenants x 30 s
    python benchmarks/bench_service.py --quick   # CI smoke, 3 x 3 s
"""

from __future__ import annotations

import argparse
import bisect
import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Tuple

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from _bench_utils import emit  # noqa: E402
from repro import ScenarioConfig, run_scenario  # noqa: E402
from repro.faults.ledger import CHANNEL_SERVICE  # noqa: E402
from repro.service.framing import encode_octet_counted  # noqa: E402
from repro.service.supervisor import (  # noqa: E402
    Service,
    ServiceConfig,
    TenantConfig,
)
from repro.util.timefmt import format_timestamp  # noqa: E402

import socket  # noqa: E402

FULL_TENANTS = 10
FULL_SECONDS = 30.0
QUICK_TENANTS = 3
QUICK_SECONDS = 3.0
RATE_PER_TENANT = 40.0  # paced messages per second per tenant
BATCH_LINES = 10  # one latency probe per batch
DRAIN_CEILING = 120.0  # wall seconds allowed for the backlog to clear
PROFILE_SEED = 11
PROFILE_DAYS = 3.0


def _bench_line(index: int) -> str:
    """One parseable chatter line; event time advances monotonically so
    the reorder buffer never sheds a bench message as late."""
    stamp = format_timestamp(index * 0.5)
    return f"<189>{stamp} bench-core-01 bench chatter {index}"


def _feed_tenant(
    port: int,
    total: int,
    rate: float,
    probes: List[Tuple[int, float]],
) -> None:
    """Pace ``total`` lines into one tenant's TCP port, recording a
    (lines-sent-so-far, send-time) probe after every batch."""
    with socket.create_connection(("127.0.0.1", port), timeout=30.0) as sock:
        sent = 0
        start = time.monotonic()
        while sent < total:
            batch = [
                _bench_line(i) for i in range(sent, min(sent + BATCH_LINES, total))
            ]
            sock.sendall(b"".join(encode_octet_counted(line) for line in batch))
            sent += len(batch)
            probes.append((sent, time.monotonic()))
            delay = start + sent / rate - time.monotonic()
            if delay > 0:
                time.sleep(delay)


def _sample_status(
    service: Service,
    samples: Dict[str, List[Tuple[float, int]]],
    stop: threading.Event,
) -> None:
    """Continuously record (time, lines_seen) per tenant from the live
    status document; each probe's latency is resolved against these."""
    while not stop.is_set():
        tenants = service.status()["tenants"]
        now = time.monotonic()  # after the read: latency is never undercounted
        for name, doc in tenants.items():
            samples[name].append((now, doc["worker"]["lines_seen"]))
        stop.wait(0.02)


def _latencies_ms(
    probes: List[Tuple[int, float]],
    samples: List[Tuple[float, int]],
) -> List[float]:
    """For each probe, the gap to the first sample covering it."""
    counts = [count for _, count in samples]
    out: List[float] = []
    for sent, when in probes:
        index = bisect.bisect_left(counts, sent)
        if index < len(samples):
            out.append(max(0.0, (samples[index][0] - when) * 1000.0))
    return out


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def run_bench(tenants: int, seconds: float, rate: float) -> dict:
    per_tenant = int(seconds * rate)
    names = [f"tenant{i:02d}" for i in range(tenants)]

    with tempfile.TemporaryDirectory(prefix="bench_service_") as tmp:
        profile_dir = Path(tmp) / "profile"
        started = time.perf_counter()
        run_scenario(
            ScenarioConfig(seed=PROFILE_SEED, duration_days=PROFILE_DAYS)
        ).save(profile_dir)
        profile_seconds = time.perf_counter() - started

        config = ServiceConfig(
            tenants=[
                TenantConfig(
                    name=name,
                    profile_dir=str(profile_dir),
                    checkpoint_every=500,
                )
                for name in names
            ],
            state_dir=str(Path(tmp) / "state"),
            heartbeat_interval=0.05,
            poll_interval=0.02,
        )
        service = Service(config)
        service.start()
        try:
            ports = {
                name: doc["tcp_port"]
                for name, doc in service.status()["tenants"].items()
            }
            probes: Dict[str, List[Tuple[int, float]]] = {n: [] for n in names}
            samples: Dict[str, List[Tuple[float, int]]] = {n: [] for n in names}
            stop = threading.Event()
            sampler = threading.Thread(
                target=_sample_status, args=(service, samples, stop), daemon=True
            )
            feeders = [
                threading.Thread(
                    target=_feed_tenant,
                    args=(ports[name], per_tenant, rate, probes[name]),
                    daemon=True,
                )
                for name in names
            ]
            feed_start = time.monotonic()
            sampler.start()
            for thread in feeders:
                thread.start()
            for thread in feeders:
                thread.join()
            feed_seconds = time.monotonic() - feed_start

            # Keep sampling through the drain so every probe resolves.
            deadline = time.monotonic() + DRAIN_CEILING
            drained = False
            while time.monotonic() < deadline:
                status = service.status()["tenants"]
                if all(
                    status[name]["worker"]["lines_seen"] >= per_tenant
                    for name in names
                ):
                    drained = True
                    break
                time.sleep(0.05)
            total_seconds = time.monotonic() - feed_start
            stop.set()
            sampler.join()
        finally:
            summary = service.stop(drain_timeout=DRAIN_CEILING)

    latencies: List[float] = []
    tenants_doc = {}
    unattributed_total = 0
    sustained = 0
    for name in names:
        result = summary[name]
        report = result.get("report") or {}
        shed = result["shed"]
        journalled = result["journal_lines"]
        backpressure = (
            result["frontend_ledger"]
            .get(CHANNEL_SERVICE, {})
            .get("reasons", {})
            .get("backpressure", 0)
        )
        lines_seen = report.get("lines_seen", 0)
        events = report.get("events", 0)
        attributed = report.get("dropped", 0)
        unattributed = (
            (per_tenant - result["received"])
            + (result["received"] - journalled - shed)
            + (shed - backpressure)
            + max(0, (lines_seen - events) - attributed)
        )
        unattributed_total += unattributed
        tenant_latencies = _latencies_ms(probes[name], samples[name])
        latencies.extend(tenant_latencies)
        if result["state"] == "stopped" and lines_seen == journalled:
            sustained += 1
        tenants_doc[name] = {
            "sent": per_tenant,
            "received": result["received"],
            "journalled": journalled,
            "shed": shed,
            "consumed": lines_seen,
            "events": events,
            "attributed_drops": attributed,
            "unattributed_loss": unattributed,
            "restarts": result["restarts"],
            "p99_latency_ms": round(_percentile(tenant_latencies, 0.99), 1),
        }

    total_sent = per_tenant * len(names)
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    return {
        "quick": tenants < FULL_TENANTS or seconds < FULL_SECONDS,
        "tenants": len(names),
        "tenants_sustained": sustained,
        "seconds": seconds,
        "rate_per_tenant": rate,
        "profile_seconds": round(profile_seconds, 2),
        "total_sent": total_sent,
        "feed_seconds": round(feed_seconds, 2),
        "total_seconds": round(total_seconds, 2),
        "drained": drained,
        "sent_per_second": round(total_sent / feed_seconds, 1),
        "consumed_per_second": round(total_sent / total_seconds, 1),
        "latency_samples": len(latencies),
        "p50_latency_ms": round(_percentile(latencies, 0.50), 1),
        "p95_latency_ms": round(_percentile(latencies, 0.95), 1),
        "p99_latency_ms": round(_percentile(latencies, 0.99), 1),
        "unattributed_loss": unattributed_total,
        "per_tenant": tenants_doc,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cores": cores,
        },
    }


def render(result: dict) -> str:
    host = result["host"]
    worst = max(
        result["per_tenant"].values(), key=lambda doc: doc["p99_latency_ms"]
    )
    lines = [
        "bench_service — sustained multi-tenant ingestion on loopback TCP",
        f"  load        {result['tenants']} tenants x "
        f"{result['seconds']:g} s at {result['rate_per_tenant']:g} msg/s "
        f"each ({result['total_sent']:,} messages)",
        f"  throughput  {result['sent_per_second']:,.0f} msg/s offered, "
        f"{result['consumed_per_second']:,.0f} msg/s consumed end-to-end "
        f"(drained={result['drained']})",
        f"  latency     p50 {result['p50_latency_ms']:.0f} ms, "
        f"p95 {result['p95_latency_ms']:.0f} ms, "
        f"p99 {result['p99_latency_ms']:.0f} ms "
        f"({result['latency_samples']} probes; worst tenant p99 "
        f"{worst['p99_latency_ms']:.0f} ms)",
        f"  accounting  {result['tenants_sustained']}/{result['tenants']} "
        f"tenants sustained, unattributed loss "
        f"{result['unattributed_loss']} (sent = journalled + shed; "
        "lines = events + typed drops)",
        f"  host        {host['cores']} core(s), python {host['python']}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke scale: {QUICK_TENANTS} tenants x {QUICK_SECONDS:g} s",
    )
    parser.add_argument("--tenants", type=int, default=None)
    parser.add_argument("--seconds", type=float, default=None)
    parser.add_argument(
        "--rate", type=float, default=RATE_PER_TENANT,
        help="paced messages per second per tenant",
    )
    args = parser.parse_args(argv)
    tenants = args.tenants or (QUICK_TENANTS if args.quick else FULL_TENANTS)
    seconds = args.seconds or (QUICK_SECONDS if args.quick else FULL_SECONDS)

    result = run_bench(tenants, seconds, args.rate)
    emit("bench_service", render(result))
    (_ROOT / "BENCH_service.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    failed = False
    if result["unattributed_loss"] != 0:
        print("FAIL: unattributed message loss", file=sys.stderr)
        failed = True
    if not result["drained"]:
        print("FAIL: backlog did not drain within the ceiling", file=sys.stderr)
        failed = True
    if result["tenants_sustained"] != result["tenants"]:
        print("FAIL: a tenant did not sustain the run", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
