"""Columnar ingest vs the scalar parser on a fleet-scale corpus.

Not a paper table: this bench characterises the two halves of the fleet
subsystem together.  ``repro.fleet`` streams a 10k-router, 30-day corpus
to disk; ``repro.columnar`` must then ingest it at least **10x** faster
than the scalar reference parser — a floor asserted *unconditionally*,
because vectorisation needs no extra cores — while producing identical
results.  Identity is asserted in the same run, three ways:

* **value digest** — every parsed entry of the benchmark corpus, plus the
  segment watermarks, hashed on both paths and compared;
* **drop ledgers** — a fault-injected copy of a corpus slice (truncated
  lines, binary garbage, bad timestamps) parsed leniently on both paths
  must yield byte-identical ``IngestReport`` JSON;
* **end-to-end** — ``run_analysis(ingest="columnar")`` must equal the
  sequential scalar run, findings for findings, on scenario seeds 7 and
  2013.

Timing protocol (the ``warm_heap`` flag in the output): one untimed
columnar parse first, its result freed, so neither timed parse pays
first-touch page faults; each timed parse is digested and freed before
the next starts, so neither holds the other's two million entries.
Each engine is timed twice and the fastest repetition wins (the
standard noise estimator), on two clocks: wall time, and process CPU
time.  The floor is asserted on the **CPU-time** ratio — both parsers
are single-threaded, so CPU time is the work actually done and is
immune to noisy-neighbour descheduling that can stretch either leg's
wall clock on shared hosts; both ratios are reported.

Results land in ``BENCH_fleet.json`` at the repo root (and a text table
under ``benchmarks/results/``) so CI can archive them.

Usage::

    python benchmarks/bench_fleet.py           # fleet preset, ~5 min
    python benchmarks/bench_fleet.py --quick   # CI smoke, tiny corpus
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from _bench_utils import emit  # noqa: E402
from repro import ScenarioConfig, run_analysis, run_scenario  # noqa: E402
from repro.columnar import (  # noqa: E402
    COLUMNAR_AVAILABLE,
    parse_log_segment_columnar,
)
from repro.faults.ledger import IngestReport  # noqa: E402
from repro.fleet import preset, write_corpus  # noqa: E402
from repro.syslog.collector import SyslogCollector  # noqa: E402

SPEEDUP_FLOOR = 10.0
SCENARIO_SEEDS = (7, 2013)
TIMED_REPS = 2


def _timed_parses(parse, text):
    """Best-of-N wall and CPU seconds for ``parse(text)``, plus the last
    parse's digest and entry count (every repetition is freed before the
    next starts)."""
    best_wall = best_cpu = float("inf")
    digest = None
    entries = 0
    for _ in range(TIMED_REPS):
        wall0, cpu0 = time.perf_counter(), time.process_time()
        segment = parse(text)
        wall, cpu = (
            time.perf_counter() - wall0,
            time.process_time() - cpu0,
        )
        best_wall = min(best_wall, wall)
        best_cpu = min(best_cpu, cpu)
        digest = _digest(segment)
        entries = len(segment.entries)
        del segment
    return best_wall, best_cpu, digest, entries


def _digest(segment) -> str:
    """Value-based digest of a parse (identity-blind, unlike pickle)."""
    h = hashlib.sha256()
    for entry in segment.entries:
        h.update(repr(entry).encode())
        h.update(b"\n")
    h.update(repr((segment.latest, segment.min_parsed)).encode())
    return h.hexdigest()


def _ledger_json(report: IngestReport) -> str:
    payload = report.to_json() if hasattr(report, "to_json") else report.__dict__
    return json.dumps(payload, default=str, sort_keys=True)


def _fault_inject(text: str, seed: int = 13) -> str:
    """Damage a corpus the way broken collectors do."""
    rng = random.Random(seed)
    lines = text.splitlines()
    for i in range(len(lines)):
        roll = rng.random()
        if roll < 0.05:
            lines[i] = lines[i][: rng.randrange(max(1, len(lines[i])))]
        elif roll < 0.08:
            lines[i] = bytes(
                rng.randrange(256) for _ in range(rng.randrange(5, 40))
            ).decode("utf-8", "replace")
        elif roll < 0.10:
            lines[i] = lines[i].replace(":", ";", 1)
    return "\n".join(lines)


def _ledgers_identical(text: str) -> bool:
    scalar_report, columnar_report = IngestReport(), IngestReport()
    scalar = SyslogCollector.parse_log_segment(
        text, strict=False, report=scalar_report
    )
    columnar = parse_log_segment_columnar(
        text, strict=False, report=columnar_report
    )
    return scalar.entries == columnar.entries and _ledger_json(
        scalar_report
    ) == _ledger_json(columnar_report)


def _analysis_identical(seed: int, days: float) -> bool:
    dataset = run_scenario(ScenarioConfig(seed=seed, duration_days=days))
    scalar = run_analysis(dataset, ingest="scalar")
    columnar = run_analysis(dataset, ingest="columnar")
    return (
        scalar.syslog_failures == columnar.syslog_failures
        and scalar.isis_failures == columnar.isis_failures
        and scalar.failure_match.pairs == columnar.failure_match.pairs
        and scalar.coverage.counts == columnar.coverage.counts
        and scalar.flap_episodes == columnar.flap_episodes
    )


def run_bench(quick: bool, scenario_days: float) -> dict:
    spec = (
        preset("tiny", chatter_per_router_day=2000.0)
        if quick
        else preset("fleet")
    )

    with tempfile.TemporaryDirectory(prefix="bench_fleet_") as tmp:
        started = time.perf_counter()
        counters = write_corpus(spec, tmp)
        generate_seconds = time.perf_counter() - started
        text = (Path(tmp) / "syslog.log").read_text(encoding="utf-8")

    warm = parse_log_segment_columnar(text)
    del warm

    scalar_seconds, scalar_cpu, scalar_digest, entry_count = _timed_parses(
        SyslogCollector.parse_log_segment, text
    )
    columnar_seconds, columnar_cpu, columnar_digest, _ = _timed_parses(
        parse_log_segment_columnar, text
    )

    # Identity leg 2: drop ledgers on a damaged slice of the same corpus.
    slice_text = text[: min(len(text), 4_000_000)]
    ledgers_ok = _ledgers_identical(_fault_inject(slice_text))
    del text

    # Identity leg 3: end-to-end analysis on the scenario seeds.
    analysis_ok = {
        seed: _analysis_identical(seed, scenario_days)
        for seed in SCENARIO_SEEDS
    }

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - columnar falls back to scalar
        numpy_version = None

    return {
        "preset": spec.preset,
        "quick": quick,
        "routers": counters.routers,
        "links": counters.links,
        "failures": counters.failures,
        "corpus_lines": counters.syslog_lines,
        "lsp_records": counters.lsp_records,
        "parsed_entries": entry_count,
        "generate_seconds": round(generate_seconds, 3),
        "timed_reps": TIMED_REPS,
        "scalar_seconds": round(scalar_seconds, 3),
        "scalar_cpu_seconds": round(scalar_cpu, 3),
        "columnar_seconds": round(columnar_seconds, 3),
        "columnar_cpu_seconds": round(columnar_cpu, 3),
        "speedup_wall": round(scalar_seconds / columnar_seconds, 3),
        "speedup": round(scalar_cpu / columnar_cpu, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": not quick and COLUMNAR_AVAILABLE,
        "digest_identical": scalar_digest == columnar_digest,
        "ledgers_identical": ledgers_ok,
        "analysis_identical": analysis_ok,
        "warm_heap": True,
        "columnar_available": COLUMNAR_AVAILABLE,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": numpy_version,
            "cores": cores,
        },
    }


def render(result: dict) -> str:
    host = result["host"]
    lines = [
        "bench_fleet — columnar ingest vs scalar on a fleet corpus",
        f"  corpus          preset {result['preset']}: "
        f"{result['routers']:,} routers, {result['links']:,} links, "
        f"{result['corpus_lines']:,} lines, "
        f"{result['lsp_records']:,} LSP records",
        f"  generate        {result['generate_seconds']:.1f} s (streamed)",
        f"  scalar ingest   {result['scalar_seconds']:.2f} s wall / "
        f"{result['scalar_cpu_seconds']:.2f} s cpu "
        f"(best of {result['timed_reps']})",
        f"  columnar ingest {result['columnar_seconds']:.2f} s wall / "
        f"{result['columnar_cpu_seconds']:.2f} s cpu "
        f"(best of {result['timed_reps']})",
        f"  speedup         {result['speedup']:.1f}x cpu, "
        f"{result['speedup_wall']:.1f}x wall"
        + (
            ""
            if result["speedup_asserted"]
            else "  (not asserted: "
            + ("--quick corpus)" if result["quick"] else "numpy unavailable)")
        ),
        f"  digest          identical={result['digest_identical']} "
        "(warm heap, value-hashed, freed between runs)",
        f"  ledgers         identical={result['ledgers_identical']} "
        "(fault-injected slice, lenient mode)",
        f"  analysis        "
        + ", ".join(
            f"seed {seed}: identical={ok}"
            for seed, ok in result["analysis_identical"].items()
        ),
        f"  host            {host['cores']} core(s), "
        f"python {host['python']}, numpy {host['numpy']}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale: tiny corpus, speedup reported but not asserted",
    )
    parser.add_argument(
        "--scenario-days",
        type=float,
        default=None,
        help="length of the seed-7/2013 identity campaigns "
        "(default: 21, or 5 with --quick)",
    )
    args = parser.parse_args(argv)
    scenario_days = (
        args.scenario_days
        if args.scenario_days is not None
        else (5.0 if args.quick else 21.0)
    )

    result = run_bench(args.quick, scenario_days)
    emit("bench_fleet", render(result))
    (_ROOT / "BENCH_fleet.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    failed = False
    if not result["digest_identical"]:
        print("FAIL: columnar parse diverges from scalar", file=sys.stderr)
        failed = True
    if not result["ledgers_identical"]:
        print("FAIL: drop ledgers diverge on damaged input", file=sys.stderr)
        failed = True
    for seed, ok in result["analysis_identical"].items():
        if not ok:
            print(
                f"FAIL: analysis diverges between engines on seed {seed}",
                file=sys.stderr,
            )
            failed = True
    if result["speedup_asserted"] and result["speedup"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: CPU-time speedup {result['speedup']:.1f}x below the "
            f"{SPEEDUP_FLOOR:.0f}x floor (no extra cores required)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
