"""Table 2 — % of state transitions matching syslog, by LSP field.

Paper values:

=====================  ===============  ===============
Syslog type            IS reachability  IP reachability
=====================  ===============  ===============
IS-IS Down             82%              25%
IS-IS Up               85%              23%
physical media Down    31%              52%
physical media Up      34%              53%
=====================  ===============  ===============

Expected shape: IS reachability matches IS-IS syslog ~3x better than IP
reachability does, while IP reachability tracks physical-media messages
better than IS reachability — the basis for §3.4's choice of IS
reachability for link state.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.matching import transition_match_fraction
from repro.core.report import format_percent, render_table

PAPER = {
    ("isis", "down"): ("82%", "25%"),
    ("isis", "up"): ("85%", "23%"),
    ("media", "down"): ("31%", "52%"),
    ("media", "up"): ("34%", "53%"),
}


def build_table(analysis) -> str:
    config = analysis.options.matching
    fractions = {}
    for field, reference in (
        ("IS", analysis.isis.is_transitions),
        ("IP", analysis.isis.ip_transitions),
    ):
        for category, messages in (
            ("isis", analysis.syslog.isis_messages),
            ("media", analysis.syslog.physical_messages),
        ):
            fractions[(field, category)] = transition_match_fraction(
                reference, messages, config
            )

    rows = []
    for category, label in (("isis", "IS-IS"), ("media", "physical media")):
        for direction in ("down", "up"):
            paper_is, paper_ip = PAPER[(category, direction)]
            rows.append(
                [
                    f"{label} {direction.capitalize()}",
                    format_percent(fractions[("IS", category)][direction]),
                    paper_is,
                    format_percent(fractions[("IP", category)][direction]),
                    paper_ip,
                ]
            )
    return render_table(
        ["Syslog type", "IS reach", "(paper)", "IP reach", "(paper)"],
        rows,
        title="Table 2: State transitions matching syslog messages by LSP field",
    )


def test_table2(benchmark, paper_analysis):
    table = benchmark(build_table, paper_analysis)
    emit("table2", table)

    config = paper_analysis.options.matching
    is_vs_isis = transition_match_fraction(
        paper_analysis.isis.is_transitions,
        paper_analysis.syslog.isis_messages,
        config,
    )
    ip_vs_isis = transition_match_fraction(
        paper_analysis.isis.ip_transitions,
        paper_analysis.syslog.isis_messages,
        config,
    )
    is_vs_media = transition_match_fraction(
        paper_analysis.isis.is_transitions,
        paper_analysis.syslog.physical_messages,
        config,
    )
    ip_vs_media = transition_match_fraction(
        paper_analysis.isis.ip_transitions,
        paper_analysis.syslog.physical_messages,
        config,
    )
    # Shape assertions from §3.4's argument.
    assert is_vs_isis["down"] > 2 * ip_vs_isis["down"]
    assert is_vs_isis["down"] > 0.7
    assert ip_vs_media["down"] > is_vs_media["down"]
