"""Parallel pipeline — wall time and byte-identity vs the sequential pass.

Not a paper table: this bench characterises ``run_analysis(jobs=N)``.
Two claims are checked, one unconditionally:

* **identity** — the parallel run must reproduce the sequential run's
  findings exactly (failures, matched pairs, coverage, flap episodes).
  Any divergence fails the bench on any machine, including single-core
  CI runners.
* **speedup** — with ``--jobs 4`` on a host that actually has four
  cores, end-to-end wall time must be at least twice the sequential
  pass.  On hosts with fewer cores the ratio is still measured and
  reported, but not asserted: four workers time-slicing one core cannot
  beat one process on that core, and pretending otherwise would make
  the bench flaky exactly where CI runs it.

Results land in ``BENCH_pipeline.json`` at the repo root (and a text
table under ``benchmarks/results/``) so CI can archive them.

Usage::

    python benchmarks/bench_pipeline.py            # paper-scale, 180 days
    python benchmarks/bench_pipeline.py --quick    # CI smoke, 21 days
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from _bench_utils import emit  # noqa: E402
from repro import ScenarioConfig, run_analysis, run_scenario  # noqa: E402

SPEEDUP_FLOOR = 2.0
CORES_REQUIRED = 4


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def results_identical(sequential, parallel) -> bool:
    """Finding-level identity between two analysis runs."""
    return (
        parallel.syslog_failures == sequential.syslog_failures
        and parallel.isis_failures == sequential.isis_failures
        and parallel.failure_match.pairs == sequential.failure_match.pairs
        and parallel.failure_match.only_a == sequential.failure_match.only_a
        and parallel.failure_match.only_b == sequential.failure_match.only_b
        and parallel.coverage.counts == sequential.coverage.counts
        and parallel.flap_episodes == sequential.flap_episodes
        and parallel.flap_intervals == sequential.flap_intervals
    )


def build_dataset(seed: int, days: float, fleet_preset):
    """The workload: a scenario campaign, or a generated fleet corpus."""
    if fleet_preset is None:
        return run_scenario(ScenarioConfig(seed=seed, duration_days=days)), None
    import tempfile

    from repro import Dataset
    from repro.fleet import build_network, preset, write_corpus

    spec = preset(fleet_preset, seed=seed)
    with tempfile.TemporaryDirectory(prefix="bench_pipeline_") as tmp:
        write_corpus(spec, tmp, dataset=True)
        return Dataset.load(tmp, build_network(spec)), spec


def run_bench(seed: int, days: float, jobs: int, fleet_preset=None) -> dict:
    dataset, fleet_spec = build_dataset(seed, days, fleet_preset)

    started = time.perf_counter()
    sequential = run_analysis(dataset)
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_analysis(dataset, jobs=jobs)
    parallel_seconds = time.perf_counter() - started

    cores = available_cores()
    speedup = sequential_seconds / parallel_seconds
    return {
        "seed": seed,
        "days": days,
        "corpus": (
            "scenario"
            if fleet_spec is None
            else f"fleet preset {fleet_spec.preset}"
        ),
        "corpus_lines": dataset.syslog_text.count("\n"),
        "corpus_lsp_records": len(dataset.lsp_records),
        "corpus_routers": len(dataset.network.routers),
        "jobs": jobs,
        "cores": cores,
        "sequential_seconds": round(sequential_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 3),
        "identical": results_identical(sequential, parallel),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": cores >= CORES_REQUIRED and jobs >= CORES_REQUIRED,
        "isis_failures": len(sequential.isis_failures),
        "syslog_failures": len(sequential.syslog_failures),
        "matched_pairs": len(sequential.failure_match.pairs),
        "flap_episodes": len(sequential.flap_episodes),
    }


def render(result: dict) -> str:
    lines = [
        "bench_pipeline — parallel vs sequential run_analysis",
        f"  campaign        seed {result['seed']}, "
        f"{result['days']:g} days",
        f"  corpus          {result['corpus']}: "
        f"{result['corpus_lines']:,} syslog lines, "
        f"{result['corpus_lsp_records']:,} LSP records, "
        f"{result['corpus_routers']:,} routers",
        f"  host cores      {result['cores']}",
        f"  sequential      {result['sequential_seconds']:.3f} s",
        f"  jobs={result['jobs']:<11} {result['parallel_seconds']:.3f} s",
        f"  speedup         {result['speedup']:.2f}x"
        + (
            ""
            if result["speedup_asserted"]
            else f"  (not asserted: {result['cores']} core(s) available)"
        ),
        f"  identical       {result['identical']}",
        f"  findings        {result['isis_failures']} isis / "
        f"{result['syslog_failures']} syslog failures, "
        f"{result['matched_pairs']} matched, "
        f"{result['flap_episodes']} flap episodes",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale: 21 days instead of 180",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--days",
        type=float,
        default=None,
        help="override campaign length (default: 180, or 21 with --quick)",
    )
    parser.add_argument(
        "--fleet-preset",
        default=None,
        help="benchmark against a generated fleet corpus (tiny/small/fleet) "
        "instead of a scenario campaign; --days is ignored",
    )
    args = parser.parse_args(argv)
    days = args.days if args.days is not None else (21.0 if args.quick else 180.0)

    result = run_bench(args.seed, days, args.jobs, args.fleet_preset)
    emit("bench_pipeline", render(result))
    (_ROOT / "BENCH_pipeline.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    if not result["identical"]:
        print("FAIL: parallel results diverge from sequential", file=sys.stderr)
        return 1
    if result["speedup_asserted"] and result["speedup"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: speedup {result['speedup']:.2f}x below the "
            f"{SPEEDUP_FLOOR:.1f}x floor on a {result['cores']}-core host",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
