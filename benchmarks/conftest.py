"""Shared fixtures for the benchmark harness.

Every bench consumes the same paper-scale campaign: seed 2013, 387 days
(Oct 20, 2010 – Nov 11, 2011), CENIC-shaped topology.  The scenario and
analysis run once per session; individual benches time their own table
computation and print the table the paper reports, side by side with the
paper's published values.

Set ``REPRO_BENCH_DAYS`` to shrink the horizon for quick iterations (counts
scale roughly linearly with duration; percentages and distributions hold).
"""

from __future__ import annotations

import os
import pytest

from repro import AnalysisResult, Dataset, ScenarioConfig, run_analysis, run_scenario

PAPER_SEED = 2013
PAPER_DAYS = float(os.environ.get("REPRO_BENCH_DAYS", "387"))


@pytest.fixture(scope="session")
def paper_dataset() -> Dataset:
    """The 13-month simulated CENIC measurement campaign."""
    return run_scenario(ScenarioConfig(seed=PAPER_SEED, duration_days=PAPER_DAYS))


@pytest.fixture(scope="session")
def paper_analysis(paper_dataset: Dataset) -> AnalysisResult:
    """The full §3–§4 methodology applied to the campaign."""
    return run_analysis(paper_dataset)
