"""Micro-benchmarks for the hot codec paths.

Replaying a 13-month LSP archive means millions of unpack calls; parsing
the syslog file means hundreds of thousands of line parses.  These benches
track the unit costs so a performance regression in the codecs is visible
without running a full campaign.
"""

from __future__ import annotations

from repro.isis.lsp import LinkStatePacket, LspId
from repro.isis.tlv import (
    DynamicHostnameTlv,
    ExtendedIpReachabilityTlv,
    ExtendedIsReachabilityTlv,
    IpPrefix,
    IsNeighbor,
)
from repro.syslog.cisco import AdjacencyChangeMessage, parse_cisco_body
from repro.syslog.message import parse_syslog_line
from repro.topology.addressing import system_id_for_index


def _sample_lsp() -> LinkStatePacket:
    neighbors = tuple(IsNeighbor(system_id_for_index(i + 2), 10) for i in range(8))
    prefixes = tuple(
        IpPrefix(0x89A40000 + 2 * i, 31, 10) for i in range(8)
    )
    return LinkStatePacket(
        lsp_id=LspId("0000.0000.0001"),
        sequence_number=12345,
        tlvs=(
            DynamicHostnameTlv(hostname="lax-core-01"),
            ExtendedIsReachabilityTlv(neighbors=neighbors),
            ExtendedIpReachabilityTlv(prefixes=prefixes),
        ),
    )


def test_lsp_pack(benchmark):
    lsp = _sample_lsp()
    raw = benchmark(lsp.pack)
    assert len(raw) > 100


def test_lsp_unpack(benchmark):
    raw = _sample_lsp().pack()
    lsp = benchmark(LinkStatePacket.unpack, raw)
    assert lsp.hostname == "lax-core-01"


def test_syslog_render(benchmark):
    message = AdjacencyChangeMessage(
        router="cust001-cpe-01",
        interface="GigabitEthernet0/0",
        neighbor_hostname="lax-core-01",
        direction="down",
        reason="hold time expired",
    ).to_syslog(12345.678)
    line = benchmark(message.render)
    assert line.startswith("<189>")


def test_syslog_parse(benchmark):
    line = AdjacencyChangeMessage(
        router="cust001-cpe-01",
        interface="GigabitEthernet0/0",
        neighbor_hostname="lax-core-01",
        direction="down",
        reason="hold time expired",
    ).to_syslog(12345.678).render()

    def parse():
        message = parse_syslog_line(line)
        return parse_cisco_body(message.hostname, message.body)

    entry = benchmark(parse)
    assert entry.direction == "down"
