"""Table 3 — IS-IS transitions by number of matching syslog messages.

Paper values:

=====  ==========  ==========  ==========
       None        One         Both
=====  ==========  ==========  ==========
DOWN   2,022 18%   4,512 39%   4,962 43%
UP     1,696 15%   5,432 48%   4,168 37%
=====  ==========  ==========  ==========

…and §4.1's attribution: "the majority of unmatched transitions, 67% for
DOWN and 61% for UP, occur during periods of link flapping."
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.flapping import in_flap
from repro.core.report import format_percent, render_table

PAPER = {
    "down": ("2,022 (18%)", "4,512 (39%)", "4,962 (43%)"),
    "up": ("1,696 (15%)", "5,432 (48%)", "4,168 (37%)"),
}
PAPER_FLAP_SHARE = {"down": "67%", "up": "61%"}


def build_table(analysis) -> str:
    coverage = analysis.coverage
    rows = []
    for direction in ("down", "up"):
        cells = [
            f"{coverage.counts[direction][bucket]:,} "
            f"({format_percent(coverage.fraction(direction, bucket))})"
            for bucket in (0, 1, 2)
        ]
        paper = PAPER[direction]
        rows.append(
            [direction.upper(), cells[0], paper[0], cells[1], paper[1], cells[2], paper[2]]
        )

    # Flap attribution of the unmatched (None) transitions.
    flap_rows = []
    for direction in ("down", "up"):
        unmatched = [t for t in coverage.unmatched if t.direction == direction]
        inside = sum(
            1
            for t in unmatched
            if in_flap(analysis.flap_intervals, t.link, t.time)
        )
        share = inside / len(unmatched) if unmatched else 0.0
        flap_rows.append(
            [
                direction.upper(),
                f"{format_percent(share)} of {len(unmatched):,}",
                PAPER_FLAP_SHARE[direction],
            ]
        )

    main = render_table(
        ["IS-IS transition", "None", "(paper)", "One", "(paper)", "Both", "(paper)"],
        rows,
        title="Table 3: IS-IS transitions by number of matching syslog messages",
    )
    attribution = render_table(
        ["Direction", "Unmatched inside flap periods", "(paper)"],
        flap_rows,
        title="§4.1: flap attribution of unmatched transitions",
    )
    return main + "\n\n" + attribution


def test_table3(benchmark, paper_analysis):
    table = benchmark(build_table, paper_analysis)
    emit("table3", table)

    coverage = paper_analysis.coverage
    # Shape assertions: both directions mostly captured; a double-digit
    # share of DOWNs entirely missed; DOWNs missed at least as often as UPs.
    for direction in ("down", "up"):
        assert coverage.fraction(direction, 0) < 0.35
    assert coverage.fraction("down", 0) >= coverage.fraction("up", 0) - 0.02
    assert coverage.fraction("down", 0) > 0.08
    # Unmatched transitions concentrate in flap periods.
    unmatched = coverage.unmatched
    inside = sum(
        1
        for t in unmatched
        if in_flap(paper_analysis.flap_intervals, t.link, t.time)
    )
    assert inside / len(unmatched) > 0.4
