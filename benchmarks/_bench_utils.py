"""Output helper shared by the benches (kept out of conftest so that the
module name cannot collide with the test suite's conftest)."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a bench's table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
