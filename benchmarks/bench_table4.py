"""Table 4 — failure counts and downtime after sanitisation.

Paper values:

==================  ======  ======  =======
                    IS-IS   Syslog  Overlap
==================  ======  ======  =======
Failure count       11,213  11,738  9,298
Downtime (hours)    3,648   2,714   2,331
==================  ======  ======  =======

…plus §4.2's notes: manual verification of the >24 h syslog failures
removes ~6,000 hours of spurious downtime, and syslog reports ~25% less
downtime than IS-IS.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.report import format_hours, render_table
from repro.intervals import Interval, IntervalSet
from repro.util.timefmt import SECONDS_PER_HOUR


def _downtime_hours(failures) -> float:
    return sum(f.duration for f in failures) / SECONDS_PER_HOUR


def _overlap_hours(failures_a, failures_b) -> float:
    spans_a, spans_b = {}, {}
    for f in failures_a:
        spans_a.setdefault(f.link, []).append(Interval(f.start, f.end))
    for f in failures_b:
        spans_b.setdefault(f.link, []).append(Interval(f.start, f.end))
    total = 0.0
    for link, spans in spans_a.items():
        if link in spans_b:
            total += (
                IntervalSet(spans).intersection(IntervalSet(spans_b[link]))
            ).total_duration()
    return total / SECONDS_PER_HOUR


def build_table(analysis) -> str:
    isis = analysis.isis_failures
    syslog = analysis.syslog_failures
    match = analysis.failure_match

    rows = [
        [
            "Failure count",
            f"{len(isis):,}",
            "11,213",
            f"{len(syslog):,}",
            "11,738",
            f"{match.matched_count:,}",
            "9,298",
        ],
        [
            "Downtime (hours)",
            format_hours(_downtime_hours(isis)),
            "3,648",
            format_hours(_downtime_hours(syslog)),
            "2,714",
            format_hours(_overlap_hours(syslog, isis)),
            "2,331",
        ],
    ]
    main = render_table(
        ["", "IS-IS", "(paper)", "Syslog", "(paper)", "Overlap", "(paper)"],
        rows,
        title="Table 4: Failures and downtime after sanitisation",
    )

    sanitisation = render_table(
        ["Sanitisation step", "Measured", "Paper"],
        [
            [
                "Long (>24h) syslog failures checked",
                analysis.syslog_sanitized.long_failures_checked,
                "25",
            ],
            [
                "Removed as unverified",
                len(analysis.syslog_sanitized.removed_unverified_long),
                "(most)",
            ],
            [
                "Spurious downtime removed (hours)",
                format_hours(analysis.syslog_sanitized.spurious_downtime_hours),
                "~6,000",
            ],
            [
                "Failures removed for listener outages (syslog/IS-IS)",
                f"{len(analysis.syslog_sanitized.removed_listener_overlap)}"
                f"/{len(analysis.isis_sanitized.removed_listener_overlap)}",
                "(unreported)",
            ],
        ],
        title="§4.2: sanitisation accounting",
    )
    return main + "\n\n" + sanitisation


def test_table4(benchmark, paper_analysis):
    table = benchmark(build_table, paper_analysis)
    emit("table4", table)

    isis = paper_analysis.isis_failures
    syslog = paper_analysis.syslog_failures
    match = paper_analysis.failure_match
    # Shape: the two counts are within ~15% of each other; the matched set
    # is the large majority of both; syslog under-reports downtime.
    assert abs(len(syslog) - len(isis)) / len(isis) < 0.20
    assert match.matched_count / len(isis) > 0.6
    syslog_hours = _downtime_hours(syslog)
    isis_hours = _downtime_hours(isis)
    assert syslog_hours < isis_hours
    overlap = _overlap_hours(syslog, isis)
    assert overlap <= min(syslog_hours, isis_hours)
    # Ticket verification removes a multiple of the true downtime.
    assert (
        paper_analysis.syslog_sanitized.spurious_downtime_hours > isis_hours
    )
