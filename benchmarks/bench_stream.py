"""Streaming engine — throughput and working-set size vs the batch pass.

Not a paper table: this bench characterises the :mod:`repro.stream`
engine on a two-month campaign.  Three questions:

* **throughput** — events/second through the full online methodology
  (merge → timelines → sanitise → match → flaps), vs the batch
  pipeline's wall time on the same data;
* **working set** — the batch pass must hold the whole campaign (log
  text, LSP archive, every message list) before emitting anything; the
  engine's *undecided* state (open runs, pending timelines, held
  failures, match candidates, coverage rings) stays bounded by the
  network's size and the methodology's windows, not by campaign length;
* **checkpoint size** — the full JSON state document, dominated by the
  accumulated (already-final) results, should still be far smaller than
  the raw inputs it lets you discard.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from _bench_utils import emit
from repro import ScenarioConfig, run_analysis, run_scenario
from repro.core.report import render_table
from repro.stream import stream_dataset

BENCH_DAYS = float(os.environ.get("REPRO_BENCH_DAYS", "60"))


@pytest.fixture(scope="module")
def campaign():
    return run_scenario(ScenarioConfig(seed=2013, duration_days=BENCH_DAYS))


def _dataset_bytes(dataset) -> int:
    return len(dataset.syslog_text.encode("utf-8")) + sum(
        len(raw) for _, raw in dataset.lsp_records
    )


def _run_stream(dataset):
    peak = {"working_set": 0, "checkpoint_bytes": 0}

    def on_progress(engine) -> None:
        summary = engine.summary()
        working = (
            summary["open_runs"]
            + summary["held_failures"]
            + summary["match_pending"]
            + engine.coverage.message_buffer_size
            + len(engine.coverage.pending)
        )
        peak["working_set"] = max(peak["working_set"], working)

    def on_checkpoint(engine) -> None:
        document = json.dumps(engine.checkpoint_state(), separators=(",", ":"))
        peak["checkpoint_bytes"] = max(peak["checkpoint_bytes"], len(document))

    start = time.perf_counter()
    result = stream_dataset(
        dataset,
        on_progress=on_progress,
        progress_every=500,
        checkpoint_every=20000,
        on_checkpoint=on_checkpoint,
    )
    elapsed = time.perf_counter() - start
    return result, elapsed, peak


def build_table(dataset) -> str:
    batch_start = time.perf_counter()
    batch = run_analysis(dataset)
    batch_elapsed = time.perf_counter() - batch_start

    result, stream_elapsed, peak = _run_stream(dataset)
    events = result.counters["events"]
    input_bytes = _dataset_bytes(dataset)

    assert result.syslog_failures == batch.syslog_failures
    assert result.isis_failures == batch.isis_failures
    assert result.failure_match.pairs == batch.failure_match.pairs

    rows = [
        ["Campaign days", f"{BENCH_DAYS:g}", ""],
        ["Events streamed", f"{events:,}", ""],
        [
            "Throughput",
            f"{events / stream_elapsed:,.0f} events/s",
            f"{stream_elapsed:.2f}s total",
        ],
        [
            "Batch pipeline",
            f"{events / batch_elapsed:,.0f} events/s equiv",
            f"{batch_elapsed:.2f}s total",
        ],
        [
            "Raw inputs (batch working set)",
            f"{input_bytes / 1e6:,.2f} MB",
            "held until the end",
        ],
        [
            "Peak undecided state",
            f"{peak['working_set']:,} items",
            "open runs + held + pending + rings",
        ],
        [
            "Peak checkpoint document",
            f"{peak['checkpoint_bytes'] / 1e6:,.2f} MB",
            "full resumable state",
        ],
    ]
    return render_table(
        ["Quantity", "Value", "Note"],
        rows,
        title="Streaming engine vs batch pipeline",
    )


def test_stream_throughput(benchmark, campaign):
    table = benchmark.pedantic(build_table, args=(campaign,), rounds=1, iterations=1)
    emit("stream", table)

    result, _elapsed, peak = _run_stream(campaign)
    # The undecided working set is bounded by topology and windows — it
    # must not scale with campaign length the way the inputs do.
    assert peak["working_set"] < 10_000
    # The resumable state stays well under the inputs it replaces.
    assert peak["checkpoint_bytes"] < _dataset_bytes(campaign)
    assert result.counters["events"] > 0
