"""Figure 1 — cumulative distributions for CPE links, syslog vs IS-IS.

The paper plots three CDFs for CPE links: (a) failure duration,
(b) annualised link downtime, (c) time between failures.  A text bench
cannot draw, so each curve is reported at fixed probe points; the *shape*
claims from §4.2 are asserted:

* the two duration CDFs diverge below ~10 s (syslog sees more 1–4 s
  failures, IS-IS more 5–7 s ones) and track each other above;
* failures-per-link and downtime distributions are KS-consistent while
  duration is not (see bench_ks for the test itself).
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.statistics import (
    annualized_downtime_hours,
    cdf_at,
    failure_durations,
    time_between_failures_hours,
)
from repro.core.report import render_table

DURATION_PROBES = [1, 2, 4, 7, 10, 30, 60, 300, 3600, 86400]
DOWNTIME_PROBES = [0.1, 0.5, 1, 2, 5, 10, 25, 50, 100]
TBF_PROBES = [0.01, 0.1, 1, 10, 100, 1000]


def _cpe_series(analysis):
    cpe = [l for l in analysis.resolver.single_links() if not l.is_core]
    names = {l.name for l in cpe}
    series = {}
    for label, failures in (
        ("Syslog", analysis.syslog_failures),
        ("IS-IS", analysis.isis_failures),
    ):
        cpe_failures = [f for f in failures if f.link in names]
        series[label] = {
            "duration": failure_durations(cpe_failures),
            "downtime": [
                v
                for v in annualized_downtime_hours(
                    cpe_failures, cpe, analysis.horizon_start, analysis.horizon_end
                ).values()
            ],
            "tbf": time_between_failures_hours(cpe_failures),
        }
    return series


def build_table(analysis) -> str:
    series = _cpe_series(analysis)
    sections = []
    for key, probes, unit, title in (
        ("duration", DURATION_PROBES, "s", "(a) Failure duration CDF, CPE links"),
        ("downtime", DOWNTIME_PROBES, "h/yr", "(b) Annualized link downtime CDF, CPE links"),
        ("tbf", TBF_PROBES, "h", "(c) Time between failures CDF, CPE links"),
    ):
        syslog_cdf = cdf_at(series["Syslog"][key], probes)
        isis_cdf = cdf_at(series["IS-IS"][key], probes)
        rows = [
            [f"{probe}{unit}", f"{s:.3f}", f"{i:.3f}"]
            for probe, s, i in zip(probes, syslog_cdf, isis_cdf)
        ]
        sections.append(
            render_table(["x", "Syslog CDF", "IS-IS CDF"], rows, title=title)
        )
    return "Figure 1: CPE-link cumulative distributions\n\n" + "\n\n".join(sections)


def test_figure1(benchmark, paper_analysis):
    table = benchmark(build_table, paper_analysis)
    emit("figure1", table)

    # Also render the actual figures (SVG + CSV) next to the text table.
    from pathlib import Path

    from repro.core.figures import write_figure1

    results_dir = Path(__file__).parent / "results"
    written = write_figure1(paper_analysis, results_dir)
    assert len(written) == 6

    series = _cpe_series(paper_analysis)
    syslog_short = cdf_at(series["Syslog"]["duration"], [4.0])[0]
    isis_short = cdf_at(series["IS-IS"]["duration"], [4.0])[0]
    # §4.2: syslog has more mass in the 1–4 s range than IS-IS.
    assert syslog_short > isis_short
    # Above ~30 s the two duration CDFs track each other.
    syslog_mid = cdf_at(series["Syslog"]["duration"], [300.0])[0]
    isis_mid = cdf_at(series["IS-IS"]["duration"], [300.0])[0]
    assert abs(syslog_mid - isis_mid) < 0.10
    # Both CDFs are proper (monotone, ending near 1 at a day).
    for label in ("Syslog", "IS-IS"):
        values = cdf_at(series[label]["duration"], DURATION_PROBES)
        assert values == sorted(values)
        assert values[-1] > 0.97
