"""§4.3's false-positive accounting.

Paper values: 2,440 false positives (21% of syslog failures) carrying
17.5 h of unmatched downtime; short failures (≤10 s) are 83% of FPs but
under an hour of downtime; 94% of FP downtime sits in the 373 long FPs,
nearly all of which fall inside flapping periods.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.false_positives import classify_false_positives
from repro.core.report import format_percent, render_table


def build_report(analysis):
    return classify_false_positives(
        analysis.failure_match,
        len(analysis.syslog_failures),
        analysis.flap_intervals,
    )


def build_table(analysis) -> str:
    report = build_report(analysis)
    rows = [
        ["False positives", f"{report.count:,}", "2,440"],
        [
            "Share of syslog failures",
            format_percent(report.fraction_of_syslog),
            "21%",
        ],
        ["Short (<=10s) share of FPs", format_percent(report.short_fraction), "83%"],
        [
            "Short-FP downtime (hours)",
            f"{report.short_downtime_hours:.1f}",
            "<1",
        ],
        [
            "Long-FP downtime (hours)",
            f"{report.long_downtime_hours:.1f}",
            "16.5 (94% of FP downtime)",
        ],
        [
            "Long FPs inside flapping",
            format_percent(report.long_in_flap_fraction),
            "~95% (all but 19 of 373)",
        ],
        [
            "Sub-second FPs (aborts/resets)",
            f"{len(report.sub_second):,}",
            "(many; <=1s class)",
        ],
        [
            "FPs whose Down carries a blip cause phrase",
            f"{len(report.blip_reason):,}",
            "(identifiable by message type)",
        ],
    ]
    return render_table(
        ["Quantity", "Measured", "Paper"],
        rows,
        title="§4.3: Syslog false positives",
    )


def test_false_positives(benchmark, paper_analysis):
    table = benchmark(build_table, paper_analysis)
    emit("false_positives", table)

    report = build_report(paper_analysis)
    # Shape: FPs are a sizeable minority of syslog failures, dominated by
    # short events whose downtime contribution is negligible next to the
    # long tail.
    assert 0.05 <= report.fraction_of_syslog <= 0.40
    assert report.short_fraction > 0.5
    assert report.long_downtime_hours > report.short_downtime_hours
    assert report.sub_second
    assert report.blip_reason
