"""Ablation — the ten-second matching window (§3.4).

The paper chose ten seconds "because there is a clear knee at ten seconds
when examining the graph of window size to percent of downtime matched"
(the graph itself was omitted for space).  This bench regenerates that
sweep: matched-failure fraction and matched-downtime fraction as functions
of the window, with the knee visible as the flattening after ~10 s.
"""

from __future__ import annotations

from _bench_utils import emit
from repro.core.matching import MatchConfig, match_failures
from repro.core.report import format_percent, render_table
from repro.util.timefmt import SECONDS_PER_HOUR

WINDOWS = [1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 60.0]


def sweep(analysis):
    syslog = analysis.syslog_failures
    isis = analysis.isis_failures
    isis_hours = sum(f.duration for f in isis) / SECONDS_PER_HOUR
    points = []
    for window in WINDOWS:
        result = match_failures(syslog, isis, MatchConfig(window=window))
        matched_fraction = result.matched_count / len(isis) if isis else 0.0
        matched_hours = sum(b.duration for _, b in result.pairs) / SECONDS_PER_HOUR
        downtime_fraction = matched_hours / isis_hours if isis_hours else 0.0
        points.append((window, matched_fraction, downtime_fraction))
    return points


def build_table(analysis) -> str:
    points = sweep(analysis)
    rows = [
        [
            f"{window:.0f}s",
            format_percent(matched, digits=1),
            format_percent(downtime, digits=1),
        ]
        for window, matched, downtime in points
    ]
    return render_table(
        ["Window", "IS-IS failures matched", "IS-IS downtime matched"],
        rows,
        title="Ablation: matching-window sweep (paper reports a knee at 10s)",
    )


def test_ablation_window(benchmark, paper_analysis):
    table = benchmark.pedantic(
        build_table, args=(paper_analysis,), rounds=1, iterations=1
    )
    emit("ablation_window", table)

    points = dict(
        (window, matched) for window, matched, _ in sweep(paper_analysis)
    )
    # Monotone non-decreasing in the window.
    ordered = [points[w] for w in WINDOWS]
    assert all(b >= a - 1e-12 for a, b in zip(ordered, ordered[1:]))
    # The knee: growth from 1s to 10s dwarfs growth from 10s to 60s.
    early_gain = points[10.0] - points[1.0]
    late_gain = points[60.0] - points[10.0]
    assert early_gain > 2 * late_gain
