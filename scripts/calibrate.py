"""Calibration diagnostics: run a scenario and print paper-shaped numbers."""
import sys, time
from repro import ScenarioConfig, run_scenario, run_analysis
from repro.core.matching import transition_match_fraction, MatchConfig
from repro.core.statistics import class_statistics, ks_compare, failure_durations
from repro.util.timefmt import SECONDS_PER_HOUR

days = float(sys.argv[1]) if len(sys.argv) > 1 else 90.0
seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
t0 = time.time()
ds = run_scenario(ScenarioConfig(seed=seed, duration_days=days))
res = run_analysis(ds)
print('run %.0fs  days=%.0f seed=%d' % (time.time()-t0, days, seed))
print('gt failures:', ds.summary.ground_truth_failure_count)

# Table 2 shape
mc = MatchConfig()
for name, ref in (('IS', res.isis.is_transitions), ('IP', res.isis.ip_transitions)):
    fi = transition_match_fraction(ref, res.syslog.isis_messages, mc)
    fp = transition_match_fraction(ref, res.syslog.physical_messages, mc)
    print('T2 %s-reach (n=%d): isis-syslog down %.0f%% up %.0f%% | media down %.0f%% up %.0f%%'
          % (name, len(ref), 100*fi['down'], 100*fi['up'], 100*fp['down'], 100*fp['up']))

# Table 3
cov = res.coverage
for d in ('down','up'):
    print('T3 %s: None %.0f%% One %.0f%% Both %.0f%% (n=%d)' % (
        d.upper(), 100*cov.fraction(d,0), 100*cov.fraction(d,1), 100*cov.fraction(d,2), cov.total(d)))
# flap attribution of unmatched
from repro.core.flapping import in_flap
um = cov.unmatched
inflap = sum(1 for t in um if in_flap(res.flap_intervals, t.link, t.time))
print('T3 unmatched in flap: %.0f%% of %d' % (100*inflap/max(1,len(um)), len(um)))

# Table 4
sf, isf = res.syslog_failures, res.isis_failures
fm = res.failure_match
sd = sum(f.duration for f in sf)/3600; idt = sum(f.duration for f in isf)/3600
from repro.intervals import IntervalSet, Interval
def downtime_overlap(fa, fb):
    bya, byb = {}, {}
    for f in fa: bya.setdefault(f.link, []).append(Interval(f.start,f.end))
    for f in fb: byb.setdefault(f.link, []).append(Interval(f.start,f.end))
    tot = 0.0
    for l, ivs in bya.items():
        if l in byb:
            tot += IntervalSet(ivs).intersection(IntervalSet(byb[l])).total_duration()
    return tot/3600
print('T4: count syslog %d isis %d matched %d | downtime h: syslog %.0f isis %.0f overlap %.0f'
      % (len(sf), len(isf), fm.matched_count, sd, idt, downtime_overlap(sf, isf)))
print('    syslog-only %d (%.0f%% of syslog) partial %d; isis-only %d partial %d'
      % (len(fm.only_a), 100*len(fm.only_a)/max(1,len(sf)), len(fm.partial_a), len(fm.only_b), len(fm.partial_b)))
print('    sanitize: long checked %d removed %d spurious h %.0f; outage-removed s/i %d/%d'
      % (res.syslog_sanitized.long_failures_checked, len(res.syslog_sanitized.removed_unverified_long),
         res.syslog_sanitized.spurious_downtime_hours,
         len(res.syslog_sanitized.removed_listener_overlap), len(res.isis_sanitized.removed_listener_overlap)))

# Table 5
links = res.resolver.links()
core = [l for l in links if l.is_core]
cpe = [l for l in links if not l.is_core]
hs, he = res.horizon_start, res.horizon_end
for label, sel in (('Core', core), ('CPE', cpe)):
    for src, fl in (('syslog', sf), ('isis', isf)):
        st = class_statistics(fl, sel, hs, he)
        print('T5 %s %s: fail/yr med %.1f avg %.1f p95 %.0f | dur med %.0f avg %.0f p95 %.0f | down med %.1f avg %.1f p95 %.0f'
              % (label, src, st.failures_per_link_year.median, st.failures_per_link_year.average, st.failures_per_link_year.p95,
                 st.duration_seconds.median, st.duration_seconds.average, st.duration_seconds.p95,
                 st.downtime_hours_per_year.median, st.downtime_hours_per_year.average, st.downtime_hours_per_year.p95))
