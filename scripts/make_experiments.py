#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from benchmarks/results/*.txt.

Run the benchmark suite first (it writes one text table per experiment),
then this script, which stitches the measured tables together with the
per-experiment commentary: what the paper reported, what we measured, what
matches, and what deviates and why.

    pytest benchmarks/ --benchmark-only
    python scripts/make_experiments.py
"""

from __future__ import annotations

import datetime
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"


def table(name: str) -> str:
    path = RESULTS / f"{name}.txt"
    if not path.exists():
        return f"*(missing: run `pytest benchmarks/bench_{name}.py --benchmark-only`)*"
    return "```\n" + path.read_text().strip() + "\n```"


SECTIONS = [
    (
        "Table 1 — dataset summary",
        "table1",
        """**Verdict: topology exact; observation volumes same order.**
The generated network matches CENIC's published shape exactly (60/175
routers, 84/215 links, 26 multi-link pairs).  Message counts differ for
documented reasons: the config archive holds one snapshot per router
rather than five years of snapshots, and the paper's 11M LSP count
includes ~15-minute periodic refreshes carrying no state change, which
our listener does not archive (the analysis never consumes them).""",
    ),
    (
        "Table 2 — transitions matched, by LSP field",
        "table2",
        """**Verdict: all four ordering relationships reproduced; three of
four columns within a few points.**  IS reachability matches IS-IS syslog
~3x better than IP reachability does (the paper's reason for choosing IS
reachability), and physical-media messages track IP reachability better
than IS reachability.  The one systematic deviation: media↔IP lands in
the 60s rather than the paper's low 50s — our media-flap silence model
(optical events logged only in the transport NMS) is evidently milder
than whatever suppressed CENIC's media messages.""",
    ),
    (
        "Table 3 — None/One/Both matching",
        "table3",
        """**Verdict: DOWN row reproduced nearly exactly; UP row has None
exact with One/Both redistributed.**  The paper's DOWN row is 18/39/43
and ours lands within two points on every cell.  On the UP side the None
cell matches (15%) but our Both exceeds One, where the paper has the
reverse — our two ends' recovery messages are evidently more synchronised
than CENIC's were (their Up-side skew mechanism is not further
characterised in the paper, so we did not add a bespoke mechanism for
it).  Flap attribution of unmatched transitions reproduces §4.1's
conclusion (majority inside flap periods).""",
    ),
    (
        "Table 4 — failures and downtime after sanitisation",
        "table4",
        """**Verdict: every relationship reproduced.**  The two channels'
failure counts sit within ~6% of each other; the matched set is ~75% of
either; syslog under-reports downtime (the paper's −26%, ours in the
−10..−20% band); overlap downtime is below both totals; and ticket
verification removes several times the true downtime (the paper's
"6,000 hours ... almost twice the number of actual downtime hours" —
ours removes proportionally more because our phantom stuck-downs are
longer, see Table 6 commentary).  Absolute counts are ~20% below the
paper's: our calibration targets Table 5's per-link medians/means, and
CENIC's true rate mix cannot be recovered exactly from the published
aggregates.""",
    ),
    (
        "Table 5 — per-link statistics",
        "table5",
        """**Verdict: the full statistical structure reproduced.**  CPE
links fail more often than Core at the median in both channels; failures
per link are heavy-tailed (mean ≫ median); Core failures are longer at
the median; CPE links carry more annualised downtime at the median;
syslog and IS-IS columns track each other within the same margins the
paper reports.  Magnitudes land within ~2x on every cell, usually much
closer (e.g. CPE median duration 11s vs the paper's 12s; CPE median
downtime 2.1h/yr vs 2.4).""",
    ),
    (
        "Figure 1 — CPE cumulative distributions",
        "figure1",
        """**Verdict: the paper's curve relationships hold.**  Syslog has
more mass below ~4s (its sub-second pseudo-failures), IS-IS more in the
5–7s band (LSP-generation coalescing stretches very short failures to
the generation interval), and the two CDFs track each other above ~30s.
Rendered panels are written alongside as `figure1a/b/c.svg` with the raw
series in CSV.""",
    ),
    (
        "§4.2 — Kolmogorov–Smirnov consistency",
        "ks",
        """**Verdict: the paper's headline verdict reproduced exactly** —
failures-per-link and link downtime are KS-consistent across channels
while failure duration is not.""",
    ),
    (
        "Table 6 — ambiguous state changes",
        "table6",
        """**Verdict: causes, asymmetries, and the strategy conclusion
reproduced; magnitudes within ~2x.**  Spurious retransmissions dominate
the Down side and barely exist on the Up side (ours ~4:1, paper ~8:1);
lost messages explain the majority of double-ups (paper 86%); unknowns
are a small minority.  Our lost-message double-up count exceeds the
paper's — our correlated down-phase loss is evidently chunkier than
CENIC's.  The strategy evaluation on the *sanitised* pipeline (see the
ablation below) reproduces the paper's recommendation: previous-state
minimises the per-link downtime distance to IS-IS.""",
    ),
    (
        "Table 7 — customer isolation",
        "table7",
        """**Verdict: the amplification finding reproduced.**  IS-IS sees
more isolating events than syslog; the intersection is smallest on every
column; tens of sites are impacted over the campaign; and the unmatched-
event drill-down shows both syslog-only phantoms and IS-IS-only events
syslog missed entirely — the paper's point that multi-link metrics
amplify reconstruction error.""",
    ),
    (
        "§4.3 — false positives",
        "false_positives",
        """**Verdict: the taxonomy's count structure reproduced; FP
downtime magnitude deviates.**  False positives are 20% of syslog
failures (paper 21%) and short failures are 81% of them (paper 83%) with
under an hour of combined downtime; the sub-second class carries the blip
cause phrases ("adjacency reset", "3-way handshake failed") the paper
says identify them.  Deviation: our long FPs carry far more downtime
than the paper's 16.5h and only a minority sit inside flapping — they
are mostly lost-Up stuck-down remnants below the 24h ticket threshold,
which on our quieter links persist for hours rather than the minutes
CENIC's flappier links allowed.""",
    ),
    (
        "Ablation — matching window",
        "ablation_window",
        """The sweep the paper omitted for space: matched fractions rise
steeply to ~10s and flatten after — the knee that justified the paper's
window choice.  The assertion checks early gain > 2x late gain.""",
    ),
    (
        "Ablation — ambiguity strategies (full pipeline)",
        "ablation_strategy",
        """Re-runs the entire pipeline under each strategy.  Previous-state
minimises the per-link |downtime error| against IS-IS, reproducing
§4.3's recommendation; assume-down overshoots by converting double-up
windows into phantom downtime; assume-up and discard erase genuine
downtime that spurious double-downs interrupt.""",
    ),
    (
        "Ablation — error mechanisms",
        "ablation_mechanisms",
        """Beyond the paper: each modelled syslog failure mode toggled off
individually.  Whole-failure suppression owns the None column; recovery
blips own the false-positive rate; reminders own the repeated-message
anomalies; burst and in-band loss shift the downtime balance.""",
    ),
    (
        "Extension — ground-truth grading",
        "groundtruth",
        """Beyond the paper: both channels graded against the simulator's
generative truth.  The IS-IS listener's recall/precision in the high
90s *validates the paper's central assumption* that IGP monitoring can
stand in for ground truth; syslog's ~75% recall quantifies exactly what
the paper could only bound indirectly.""",
    ),
    (
        "Extension — all five data sources",
        "channels",
        """Beyond the paper: the full tool list from the paper's
introduction on one campaign.  The fidelity hierarchy is
IS-IS > syslog > SNMP for per-link failures; active probes measure
isolation downtime almost exactly while merging adjacent events; tickets
cover ~95% of ticket-worthy outages and nothing below the threshold.""",
    ),
]

HEADER = """# EXPERIMENTS — paper vs measured

Campaign: seed 2013, 387 days (Oct 20, 2010 – Nov 11, 2011 scale), the
CENIC-shaped topology of Table 1.  Regenerate everything with:

    pytest benchmarks/ --benchmark-only
    python scripts/make_experiments.py

Every table below is the verbatim output of one benchmark
(`benchmarks/results/*.txt`), printed side by side with the paper's
published values inside the table itself.

**Reading guide.**  The substrate is a simulator calibrated to the
paper's published aggregates (see `docs/simulation-model.md`), so exact
absolute counts are not expected; what must hold — and is asserted by the
benchmarks themselves — is every qualitative conclusion: who wins, by
roughly what factor, and where the crossovers fall.

## Summary of reproduction status

| Experiment | Status |
|---|---|
| Table 1 (dataset) | topology exact; volumes same order |
| Table 2 (IS vs IP reachability) | all orderings hold; 3/4 columns within a few points |
| Table 3 (None/One/Both) | DOWN row near-exact; UP None exact, One/Both redistributed |
| Table 4 (failures/downtime) | all relationships hold; counts ~20% low |
| Table 5 (per-link statistics) | full structure; most cells within tens of percent |
| Figure 1 (CPE CDFs) | curve relationships hold; SVGs rendered |
| §4.2 KS verdicts | exact (consistent/consistent/NOT consistent) |
| Table 6 (ambiguity) | causes + asymmetries + strategy conclusion hold |
| Table 7 (isolation) | amplification finding holds |
| §4.3 false positives | taxonomy holds |

## Known deviations and their causes

1. **Absolute event counts ~20% below the paper's** — per-link rates were
   calibrated to Table 5's medians and means; the exact CENIC rate mix is
   not recoverable from published aggregates.
2. **Table 2 media↔IP in the 60s vs the paper's low 50s** — our model of
   silent carrier events is milder than CENIC's reality.
3. **Table 3 UP row: One and Both swapped in magnitude** — our recovery
   messages are more two-sided than CENIC's; the paper gives no mechanism
   to model for the difference.
4. **Table 6 lost-message double-ups exceed the paper's** — correlated
   down-phase loss is chunkier in our channel model.
5. **More >24h syslog failures reviewed than the paper's 25, and more
   long-FP downtime than the paper's 16.5h** — our lost-Up phantoms
   persist until the link's next event, which on quiet links is hours to
   weeks away; CENIC's flappier links re-messaged sooner.  The >24h
   portion is removed by ticket verification either way; the sub-24h
   portion is why our syslog downtime deficit (−10%) is smaller than the
   paper's (−26%).

---

"""


def main() -> None:
    parts = [HEADER]
    for title, name, commentary in SECTIONS:
        parts.append(f"## {title}\n")
        parts.append(commentary.strip() + "\n")
        parts.append(table(name) + "\n")
    parts.append(
        "---\n\n*Generated "
        + datetime.datetime.now().strftime("%Y-%m-%d %H:%M")
        + " from benchmarks/results/.*\n"
    )
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")


if __name__ == "__main__":
    main()
