#!/usr/bin/env python3
"""Customer isolation analysis (§4.4): when reconstruction error amplifies.

Most customers are multi-homed and the backbone has rings, so deciding
that a customer was cut off requires *simultaneously correct* state for
several links — any single wrong link state flips the conclusion.  This
example computes per-site isolation from both channels, compares them, and
digs into the kind of egregious mismatch the paper calls out (a site
isolated for hours that syslog barely notices, and vice versa).

Run:  python examples/customer_isolation.py
"""

from repro import ScenarioConfig, run_analysis, run_scenario
from repro.core.isolation import (
    compute_isolation,
    intersect_isolation,
    isolation_summary,
    match_isolation_events,
)
from repro.core.report import render_table
from repro.intervals import Interval, IntervalSet


def down_map(failures):
    spans = {}
    for failure in failures:
        spans.setdefault(failure.link, []).append(
            Interval(failure.start, failure.end)
        )
    return {link: IntervalSet(items) for link, items in spans.items()}


def main() -> None:
    print("Simulating 120 days (seed 33)...")
    dataset = run_scenario(ScenarioConfig(seed=33, duration_days=120.0))
    result = run_analysis(dataset)
    network = dataset.network

    print("Computing per-site isolation from each channel...")
    isis_iso = compute_isolation(
        network, down_map(result.isis_failures),
        result.horizon_start, result.horizon_end,
    )
    syslog_iso = compute_isolation(
        network, down_map(result.syslog_failures),
        result.horizon_start, result.horizon_end,
    )
    inter = intersect_isolation(isis_iso, syslog_iso)

    summaries = {
        "IS-IS": isolation_summary(isis_iso),
        "Syslog": isolation_summary(syslog_iso),
        "Intersection": isolation_summary(inter),
    }
    print()
    print(
        render_table(
            ["Source", "Isolating events", "Sites impacted", "Downtime (days)"],
            [
                [label, f"{s.event_count:,}", s.sites_impacted, f"{s.downtime_days:.2f}"]
                for label, s in summaries.items()
            ],
            title="Customer isolation, per channel (compare paper Table 7)",
        )
    )

    # Events one channel reports that the other never overlaps.
    _, syslog_only = match_isolation_events(
        summaries["Syslog"].events, isis_iso
    )
    _, isis_only = match_isolation_events(
        summaries["IS-IS"].events, syslog_iso
    )
    print()
    print(
        render_table(
            ["Quantity", "Count", "Downtime (days)"],
            [
                [
                    "Syslog-only isolating events",
                    len(syslog_only),
                    f"{sum(e.duration for e in syslog_only) / 86400:.2f}",
                ],
                [
                    "IS-IS-only isolating events",
                    len(isis_only),
                    f"{sum(e.duration for e in isis_only) / 86400:.2f}",
                ],
            ],
            title="Disagreements (the amplification the paper warns about)",
        )
    )

    # The most egregious per-site disagreement.
    worst_site, worst_gap = None, 0.0
    for site in isis_iso:
        gap = abs(
            isis_iso[site].total_duration() - syslog_iso[site].total_duration()
        )
        if gap > worst_gap:
            worst_site, worst_gap = site, gap
    if worst_site:
        print()
        print(
            f"Most contested site: {worst_site} — IS-IS says "
            f"{isis_iso[worst_site].total_duration() / 3600:.1f}h isolated, "
            f"syslog says "
            f"{syslog_iso[worst_site].total_duration() / 3600:.1f}h "
            f"(disagreement {worst_gap / 3600:.1f}h)."
        )
        attachments = network.sites[worst_site].attachment_routers
        print(f"  attachments: {', '.join(attachments)}")

    print(
        "\nTakeaway (§4.4): errors that look tolerable per link compound"
        "\nwhen a metric needs several links to be right at once."
    )


if __name__ == "__main__":
    main()
