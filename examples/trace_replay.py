#!/usr/bin/env python3
"""Replay a failure trace: what would each channel have reported?

Operators with an outage log can answer a counterfactual: had we been
running only syslog collection (or only SNMP polling), what picture of
these exact failures would we have gotten?  This example exports one
campaign's ground truth to CSV, edits it down to a hand-picked scenario
(a maintenance window gone wrong: a core link flapping, then a long CPE
outage), replays it through the full measurement simulation, and shows
each channel's view.

Run:  python examples/trace_replay.py
"""

from repro import ScenarioConfig, run_analysis
from repro.core.report import render_table
from repro.simulation.scenario import ScenarioRunner
from repro.simulation.traces import export_failures_csv, workloads_from_trace


def build_trace(network) -> str:
    """A hand-written incident: a flap storm then a long outage."""
    core_link = sorted(
        l.link_id for l in network.core_links()
        if l.link_id in set(network.single_link_ids())
    )[0]
    cpe_link = sorted(
        l.link_id for l in network.cpe_links()
        if l.link_id in set(network.single_link_ids())
    )[0]
    lines = ["link_id,start,end,cause,flap_member"]
    # 06:00: the core link starts flapping — eight failures in quick
    # succession (a dying optic).
    t = 6 * 3600.0
    for _ in range(8):
        lines.append(f"{core_link},{t:.0f},{t + 25:.0f},physical,1")
        t += 25 + 70
    # 06:30: it dies for four hours until the optic is replaced.
    lines.append(f"{core_link},{t:.0f},{t + 4 * 3600:.0f},physical,0")
    # 14:00: a CPE circuit drops for 90 minutes (carrier maintenance).
    lines.append(
        f"{cpe_link},{14 * 3600:.0f},{14 * 3600 + 5400:.0f},protocol,0"
    )
    return "\n".join(lines) + "\n", core_link, cpe_link


def main() -> None:
    config = ScenarioConfig(seed=8, duration_days=1.0, warmup=1800.0)
    runner = ScenarioRunner(config)
    network = runner.network()

    trace, core_link, cpe_link = build_trace(network)
    print("The incident trace to replay:")
    print(trace)

    workloads = workloads_from_trace(trace, network, seed=8)
    dataset = runner.run(workloads=workloads)
    result = run_analysis(dataset)

    print(
        f"Observed: {dataset.summary.syslog_delivered} syslog messages, "
        f"{dataset.summary.lsp_record_count} LSPs"
    )

    def view(failures, link_id):
        canonical = network.links[link_id].canonical_name
        return [
            f"{f.start / 3600:.2f}h–{f.end / 3600:.2f}h ({f.duration:.0f}s)"
            for f in failures
            if f.link == canonical
        ]

    rows = []
    for label, link_id in (("core (flaps + 4h)", core_link), ("CPE (90min)", cpe_link)):
        truth = [
            f for f in dataset.ground_truth_failures if f.link_id == link_id
        ]
        rows.append(
            [
                label,
                len(truth),
                len(view(result.isis_failures, link_id)),
                len(view(result.syslog_failures, link_id)),
            ]
        )
    print(
        render_table(
            ["Link", "True failures", "IS-IS saw", "Syslog saw"],
            rows,
            title="Per-channel view of the incident",
        )
    )

    print("\nIS-IS reconstruction of the core link:")
    for span in view(result.isis_failures, core_link):
        print(f"  {span}")
    print("Syslog reconstruction of the core link:")
    for span in view(result.syslog_failures, core_link):
        print(f"  {span}")

    # Round-trip check: ground truth exports back out as a trace.
    exported = export_failures_csv(dataset.ground_truth_failures)
    print(f"\n(exported ground truth: {len(exported.splitlines()) - 1} rows)")


if __name__ == "__main__":
    main()
