#!/usr/bin/env python3
"""Quickstart: simulate a measurement campaign and compare the channels.

This is the 60-second tour of the library:

1. run a (shortened) CENIC-like measurement campaign — failures are
   injected into a simulated network that is observed simultaneously by a
   central syslog collector and a passive IS-IS listener;
2. run the paper's analysis methodology over the resulting dataset;
3. print the headline comparison: how many failures each channel saw, how
   well they agree, and where syslog falls short.

Run:  python examples/quickstart.py
"""

from repro import ScenarioConfig, run_analysis, run_scenario
from repro.core.report import format_percent, render_table
from repro.util.timefmt import SECONDS_PER_HOUR


def main() -> None:
    # Two months is plenty to see every phenomenon; the paper-scale run
    # (387 days) is what benchmarks/ uses.
    print("Simulating a 60-day measurement campaign (seed 7)...")
    dataset = run_scenario(ScenarioConfig(seed=7, duration_days=60.0))
    summary = dataset.summary
    print(
        f"  topology: {summary.router_count_core} core + "
        f"{summary.router_count_cpe} CPE routers, "
        f"{summary.link_count_core + summary.link_count_cpe} links"
    )
    print(
        f"  observed: {summary.syslog_delivered:,} syslog messages, "
        f"{summary.lsp_record_count:,} LSPs; "
        f"{summary.ground_truth_failure_count:,} failures actually happened"
    )

    print("\nRunning the paper's analysis (reconstruct, sanitise, match)...")
    result = run_analysis(dataset)

    syslog = result.syslog_failures
    isis = result.isis_failures
    match = result.failure_match
    syslog_hours = sum(f.duration for f in syslog) / SECONDS_PER_HOUR
    isis_hours = sum(f.duration for f in isis) / SECONDS_PER_HOUR

    print()
    print(
        render_table(
            ["", "Syslog", "IS-IS"],
            [
                ["Failures reconstructed", f"{len(syslog):,}", f"{len(isis):,}"],
                ["Downtime (hours)", f"{syslog_hours:,.0f}", f"{isis_hours:,.0f}"],
            ],
            title="The two channels' views of the same network",
        )
    )

    print()
    print(
        render_table(
            ["Quantity", "Value"],
            [
                ["Failures matched (both channels)", f"{match.matched_count:,}"],
                [
                    "Syslog-only (false positives)",
                    f"{len(match.only_a):,} "
                    f"({format_percent(len(match.only_a) / max(1, len(syslog)))})",
                ],
                [
                    "IS-IS-only (missed by syslog)",
                    f"{len(match.only_b):,} "
                    f"({format_percent(len(match.only_b) / max(1, len(isis)))})",
                ],
                ["Flapping episodes detected", f"{len(result.flap_episodes):,}"],
                [
                    "Long (>24h) syslog failures ticket-checked",
                    f"{result.syslog_sanitized.long_failures_checked}",
                ],
                [
                    "Spurious downtime removed by ticket check (hours)",
                    f"{result.syslog_sanitized.spurious_downtime_hours:,.0f}",
                ],
            ],
            title="Agreement and disagreement",
        )
    )

    print(
        "\nThe paper's bottom line, visible even at this scale: syslog"
        "\ncaptures aggregate failure behaviour well, but misses failures"
        "\n(especially during flapping), fabricates short false positives,"
        "\nand needs its long failures cross-checked against trouble tickets."
    )


if __name__ == "__main__":
    main()
