#!/usr/bin/env python3
"""Archive a campaign to disk and re-analyse it from the files.

The paper's workflow was file-based: a config archive, a central syslog
file, and a PyRT LSP capture, collected once and analysed many times.
This example saves a simulated campaign to a directory with exactly that
layout, inspects the raw artefacts (log lines, binary LSP records, mined
configs), reloads everything, and shows the re-analysis is identical.

Run:  python examples/archive_and_replay.py [directory]
"""

import sys
import tempfile
from pathlib import Path

from repro import Dataset, ScenarioConfig, run_analysis, run_scenario
from repro.core.report import render_table
from repro.isis.lsp import LinkStatePacket
from repro.isis.mrt import MrtDumpReader


def main() -> None:
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    workdir = target or Path(tempfile.mkdtemp(prefix="repro-campaign-"))

    print("Simulating 30 days (seed 99)...")
    dataset = run_scenario(ScenarioConfig(seed=99, duration_days=30.0))

    print(f"Saving the campaign to {workdir} ...")
    dataset.save(workdir)
    for name in sorted(p.name for p in workdir.iterdir()):
        print(f"  {name}")

    # ------------------------------------------------- poke at the files
    log_lines = (workdir / "syslog.log").read_text().splitlines()
    print(f"\nsyslog.log: {len(log_lines):,} lines; first three:")
    for line in log_lines[:3]:
        print(f"  {line}")

    with MrtDumpReader.open(workdir / "isis.dump") as reader:
        records = reader.read_all()
    print(f"\nisis.dump: {len(records):,} LSP records; first decoded:")
    time, raw = records[0]
    lsp = LinkStatePacket.unpack(raw)
    print(
        f"  t={time:.2f}s  origin={lsp.hostname} ({lsp.lsp_id})  "
        f"seq={lsp.sequence_number}  "
        f"{len(lsp.is_neighbors)} IS neighbors, {len(lsp.ip_prefixes)} prefixes"
    )

    config_files = sorted((workdir / "configs").glob("*.cfg"))
    print(f"\nconfigs/: {len(config_files)} router configuration files")
    sample = config_files[0].read_text().splitlines()
    for line in sample[:8]:
        print(f"  {line}")

    # -------------------------------------------------- reload and verify
    print("\nReloading from disk and re-running the analysis...")
    reloaded = Dataset.load(workdir, dataset.network)
    original = run_analysis(dataset)
    replayed = run_analysis(reloaded)

    print()
    print(
        render_table(
            ["Quantity", "Original", "From disk"],
            [
                [
                    "Syslog failures",
                    len(original.syslog_failures),
                    len(replayed.syslog_failures),
                ],
                [
                    "IS-IS failures",
                    len(original.isis_failures),
                    len(replayed.isis_failures),
                ],
                [
                    "Matched",
                    original.failure_match.matched_count,
                    replayed.failure_match.matched_count,
                ],
            ],
            title="Re-analysis from the archived files",
        )
    )
    identical = (
        len(original.syslog_failures) == len(replayed.syslog_failures)
        and len(original.isis_failures) == len(replayed.isis_failures)
        and original.failure_match.matched_count
        == replayed.failure_match.matched_count
    )
    print(f"\nIdentical: {identical}")
    if target is None:
        print(f"(campaign left in {workdir} for inspection)")


if __name__ == "__main__":
    main()
