#!/usr/bin/env python3
"""How sensitive is the comparison to the matching window?

The paper matches failures across channels when starts and ends agree
within ten seconds, chosen for the knee in the window-vs-matched-downtime
curve.  This example sweeps the window and prints the curve, then shows
what a careless choice (1 s, or 60 s) would have done to the headline
"syslog misses X% of failures" number.

Run:  python examples/window_sensitivity.py
"""

from repro import ScenarioConfig, run_analysis, run_scenario
from repro.core.matching import MatchConfig, match_failures
from repro.core.report import format_percent, render_table
from repro.util.timefmt import SECONDS_PER_HOUR


def main() -> None:
    print("Simulating 90 days (seed 14)...")
    dataset = run_scenario(ScenarioConfig(seed=14, duration_days=90.0))
    result = run_analysis(dataset)
    syslog = result.syslog_failures
    isis = result.isis_failures
    isis_hours = sum(f.duration for f in isis) / SECONDS_PER_HOUR

    rows = []
    headline = {}
    for window in (0.5, 1, 2, 5, 10, 15, 20, 30, 60, 120):
        match = match_failures(syslog, isis, MatchConfig(window=window))
        matched_fraction = match.matched_count / len(isis)
        missed_fraction = len(match.only_b) / len(isis)
        matched_hours = (
            sum(b.duration for _, b in match.pairs) / SECONDS_PER_HOUR
        )
        rows.append(
            [
                f"{window:g}s",
                f"{match.matched_count:,}",
                format_percent(matched_fraction, digits=1),
                format_percent(matched_hours / isis_hours, digits=1),
                format_percent(missed_fraction, digits=1),
            ]
        )
        headline[window] = missed_fraction
    print()
    print(
        render_table(
            [
                "Window",
                "Matched",
                "IS-IS failures matched",
                "IS-IS downtime matched",
                "'syslog misses'",
            ],
            rows,
            title="Matching-window sweep (paper: knee at 10s)",
        )
    )

    print(
        f"\nHeadline sensitivity: with a 1s window you would report that "
        f"syslog misses {format_percent(headline[1])} of IS-IS failures; "
        f"at 10s, {format_percent(headline[10])}; at 60s, "
        f"{format_percent(headline[60])}."
    )
    print(
        "Past the knee the number barely moves — the residual misses are"
        "\nreal absences (lost messages), not timing skew."
    )


if __name__ == "__main__":
    main()
