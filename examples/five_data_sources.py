#!/usr/bin/env python3
"""All five of the paper's data sources, side by side.

The paper opens by listing the tools networks press into failure-analysis
service: "syslog, routing protocol monitoring, SNMP, human trouble
tickets, active probes and so on" — and studies the first two.  This
example runs *all five* over one simulated campaign and shows what each
can and cannot see, graded against the simulator's generative truth.

Run:  python examples/five_data_sources.py
"""

from repro import ScenarioConfig, run_analysis, run_scenario
from repro.core.groundtruth import grade_channel, ground_truth_failure_events
from repro.core.matching import MatchConfig
from repro.core.report import format_percent, render_table
from repro.probing import ActiveProber, ProbeParameters, reconstruct_outages_stream
from repro.snmp import PollParameters, SnmpPoller, reconstruct_stream
from repro.util.timefmt import SECONDS_PER_DAY


def main() -> None:
    print("Simulating 60 days (seed 42)...")
    dataset = run_scenario(ScenarioConfig(seed=42, duration_days=60.0))
    analysis = run_analysis(dataset)
    truth = ground_truth_failure_events(dataset)

    # ------------------------------------------------- per-link channels
    print("Polling SNMP (5-minute sweeps)...")
    poller = SnmpPoller(dataset, PollParameters(period=300.0), seed=2)
    snmp = reconstruct_stream(poller.samples(), len(poller.poll_times()))

    rows = []
    for label, failures, window in (
        ("IS-IS listener", analysis.isis_failures, 10.0),
        ("syslog", analysis.syslog_failures, 10.0),
        ("SNMP @5min", snmp.failures, 300.0),
    ):
        grade = grade_channel(label, failures, truth, MatchConfig(window=window))
        rows.append(
            [
                label,
                f"{grade.reconstructed_count:,}",
                format_percent(grade.recall, digits=1),
                format_percent(grade.precision, digits=1),
                f"{100 * grade.downtime_error_fraction:+.0f}%",
            ]
        )
    print()
    print(
        render_table(
            ["Channel", "Failures seen", "Recall", "Precision", "Downtime err"],
            rows,
            title=f"Per-link failure channels ({len(truth):,} true failures)",
        )
    )

    # ------------------------------------------------- isolation channels
    print("\nProbing every customer site (60s period)...")
    prober = ActiveProber(dataset, ProbeParameters(period=60.0), seed=2)
    probed = reconstruct_outages_stream(prober.samples(), prober.parameters)
    true_days = (
        sum(s.total_duration() for s in prober.true_isolation.values())
        / SECONDS_PER_DAY
    )
    probe_days = sum(s.total_duration() for s in probed.values()) / SECONDS_PER_DAY
    print(
        render_table(
            ["Source", "Isolation downtime (days)"],
            [
                ["truth", f"{true_days:.2f}"],
                ["active probes", f"{probe_days:.2f}"],
            ],
            title="Direct isolation measurement",
        )
    )

    # -------------------------------------------------------------- tickets
    worthy = [f for f in dataset.ground_truth_failures if f.duration >= 1800.0]
    covered = sum(
        dataset.tickets.confirms(
            dataset.network.links[f.link_id].canonical_name, f.start, f.end
        )
        for f in worthy
    )
    print()
    print(
        render_table(
            ["Quantity", "Value"],
            [
                ["Outages a NOC would ticket (>30min)", len(worthy)],
                ["Actually ticketed", f"{covered} ({format_percent(covered / max(1, len(worthy)))})"],
                [
                    "Short failures (no ticket, ever)",
                    len(dataset.ground_truth_failures) - len(worthy),
                ],
            ],
            title="Trouble tickets: reliable only for long outages",
        )
    )

    print(
        "\nThe hierarchy the paper implies, made explicit:"
        "\n  IS-IS listener   - near-perfect, but rarely deployed"
        "\n  syslog           - good aggregates, misses flaps, fabricates blips"
        "\n  SNMP polling     - only the long failures, ±half a poll period"
        "\n  active probes    - isolation only, quantised, needs confirmations"
        "\n  trouble tickets  - long outages only, but human-verified"
    )


if __name__ == "__main__":
    main()
