#!/usr/bin/env python3
"""An operator's reliability report from syslog alone.

The paper's motivating scenario: a network operator has *only* syslog (no
IGP listener) and wants the reliability picture — per-class failure rates,
downtime, worst links, flap offenders.  This example produces that report,
then — because this is a simulation — grades it against the IS-IS view the
operator doesn't have.

Run:  python examples/operator_reliability_report.py
"""

from repro import ScenarioConfig, run_analysis, run_scenario
from repro.core.statistics import (
    annualized_downtime_hours,
    annualized_failure_counts,
    class_statistics,
)
from repro.core.report import render_table
from repro.util.timefmt import SECONDS_PER_HOUR


def main() -> None:
    print("Simulating 90 days of operations (seed 21)...")
    dataset = run_scenario(ScenarioConfig(seed=21, duration_days=90.0))
    result = run_analysis(dataset)

    links = result.resolver.single_links()
    core = [l for l in links if l.is_core]
    cpe = [l for l in links if not l.is_core]

    # ---------------------------------------------------------- class view
    rows = []
    for label, selection in (("Core", core), ("CPE", cpe)):
        stats = class_statistics(
            result.syslog_failures, selection,
            result.horizon_start, result.horizon_end,
        )
        rows.append(
            [
                label,
                len(selection),
                f"{stats.failures_per_link_year.median:.1f}",
                f"{stats.failures_per_link_year.average:.1f}",
                f"{stats.duration_seconds.median:.0f}s",
                f"{stats.downtime_hours_per_year.median:.2f}h",
            ]
        )
    print()
    print(
        render_table(
            [
                "Class", "Links",
                "Median fail/yr", "Mean fail/yr",
                "Median duration", "Median downtime/yr",
            ],
            rows,
            title="Reliability by link class (syslog reconstruction)",
        )
    )

    # --------------------------------------------------------- worst links
    downtime = annualized_downtime_hours(
        result.syslog_failures, links, result.horizon_start, result.horizon_end
    )
    counts = annualized_failure_counts(
        result.syslog_failures, links, result.horizon_start, result.horizon_end
    )
    worst = sorted(downtime.items(), key=lambda kv: -kv[1])[:8]
    print()
    print(
        render_table(
            ["Link", "Downtime h/yr", "Failures/yr"],
            [
                [name[:58], f"{hours:.1f}", f"{counts[name]:.1f}"]
                for name, hours in worst
            ],
            title="Worst links by annualised downtime",
        )
    )

    # ------------------------------------------------------ flap offenders
    by_link = {}
    for episode in result.flap_episodes:
        by_link.setdefault(episode.link, []).append(episode)
    offenders = sorted(by_link.items(), key=lambda kv: -len(kv[1]))[:5]
    print()
    print(
        render_table(
            ["Link", "Flap episodes", "Failures inside"],
            [
                [
                    name[:58],
                    len(episodes),
                    sum(e.failure_count for e in episodes),
                ]
                for name, episodes in offenders
            ],
            title="Flap offenders (ten-minute rule)",
        )
    )

    # ------------------------------------------------- grade vs ground IGP
    syslog_hours = sum(f.duration for f in result.syslog_failures) / SECONDS_PER_HOUR
    isis_hours = sum(f.duration for f in result.isis_failures) / SECONDS_PER_HOUR
    missed = len(result.failure_match.only_b)
    print()
    print(
        render_table(
            ["Check", "Result"],
            [
                [
                    "Downtime error vs IS-IS",
                    f"{100 * (syslog_hours - isis_hours) / isis_hours:+.0f}%",
                ],
                [
                    "IS-IS failures invisible to this report",
                    f"{missed:,} of {len(result.isis_failures):,}",
                ],
                [
                    "Verdict",
                    "aggregate statistics: usable; "
                    "failure-for-failure accounting: do not",
                ],
            ],
            title="Grading the syslog-only report against the hidden IS-IS view",
        )
    )


if __name__ == "__main__":
    main()
