#!/usr/bin/env python3
"""Handling ambiguous syslog: double downs, double ups, and what to assume.

A syslog stream is not a clean alternation of Down and Up.  When a Down
arrives while the link is already reconstructed as down (or an Up while
up), the window between the repeated messages is ambiguous: was the
opposite message lost, or is the repeat a spurious restatement?

This example classifies every ambiguous window against IS-IS ground truth
(the paper's Table 6 method) and then evaluates the three correction
strategies end to end, reproducing the paper's recommendation to leave the
link in its previous state.

Run:  python examples/ambiguity_strategies.py
"""

from repro import AnalysisOptions, ScenarioConfig, run_analysis, run_scenario
from repro.core.ambiguity import AmbiguityCause, analyze_ambiguous_transitions
from repro.core.extract_syslog import SyslogExtractionConfig
from repro.core.report import format_percent, render_table
from repro.intervals.timeline import AmbiguityStrategy
from repro.util.timefmt import SECONDS_PER_HOUR


def main() -> None:
    print("Simulating 120 days (seed 5)...")
    dataset = run_scenario(ScenarioConfig(seed=5, duration_days=120.0))
    result = run_analysis(dataset)

    # ------------------------------------------------------ classification
    report = analyze_ambiguous_transitions(
        result.syslog.timelines,
        result.isis.is_transitions,
        result.isis.timelines,
        result.horizon_start,
        result.horizon_end,
    )
    rows = []
    for cause, label in (
        (AmbiguityCause.LOST_MESSAGE, "Lost message"),
        (AmbiguityCause.SPURIOUS_RETRANSMISSION, "Spurious restatement"),
        (AmbiguityCause.UNKNOWN, "Unknown"),
    ):
        rows.append(
            [label, report.count("down", cause), report.count("up", cause)]
        )
    rows.append(["Total", report.total("down"), report.total("up")])
    print()
    print(
        render_table(
            ["Cause (vs IS-IS ground truth)", "Double Down", "Double Up"],
            rows,
            title="Why repeated same-direction messages happen (Table 6 method)",
        )
    )
    print(
        f"Ambiguous windows cover "
        f"{format_percent(report.ambiguous_period_fraction, digits=1)} of the "
        f"measurement period (paper: 7.8%)."
    )

    # --------------------------------------------------------- strategies
    print("\nRe-running the full pipeline under each strategy...")
    rows = []
    isis_hours = None
    for strategy in (
        AmbiguityStrategy.PREVIOUS_STATE,
        AmbiguityStrategy.ASSUME_DOWN,
        AmbiguityStrategy.ASSUME_UP,
        AmbiguityStrategy.DISCARD,
    ):
        analysis = run_analysis(
            dataset, AnalysisOptions(syslog=SyslogExtractionConfig(strategy=strategy))
        )
        syslog_hours = (
            sum(f.duration for f in analysis.syslog_failures) / SECONDS_PER_HOUR
        )
        if isis_hours is None:
            isis_hours = (
                sum(f.duration for f in analysis.isis_failures) / SECONDS_PER_HOUR
            )
        rows.append(
            [
                strategy.value,
                f"{len(analysis.syslog_failures):,}",
                f"{syslog_hours:,.0f}",
                f"{syslog_hours - isis_hours:+,.0f}",
            ]
        )
    print()
    print(
        render_table(
            ["Strategy", "Syslog failures", "Downtime (h)", "vs IS-IS (h)"],
            rows,
            title=f"Strategy comparison (IS-IS downtime: {isis_hours:,.0f} h)",
        )
    )
    print(
        "\nPaper §4.3: 'assuming the link remains in the previous state"
        "\npushes link downtime as seen by syslog closest to matching link"
        "\ndowntime as seen by IS-IS' — DISCARD (the authors' earlier"
        "\napproach) simply throws the ambiguous time away."
    )


if __name__ == "__main__":
    main()
