"""Command-line interface.

Eight subcommands — four mirror the paper's workflow, the rest scale and
guard it:

``repro simulate``
    Run a measurement campaign and save the dataset directory (configs/,
    syslog.log, isis.dump, ground_truth.json, tickets.json, meta.json).

``repro analyze``
    Load a saved dataset (or simulate one on the fly with ``--seed``) and
    print the headline comparison: failures per channel, matching, and
    sanitisation accounting.

``repro report``
    Print one of the paper's tables computed from a dataset.

``repro stream``
    Tail a dataset through the online incremental engine
    (:mod:`repro.stream`): live progress summaries while the stream runs,
    the same end-of-stream tables as ``analyze``, and optional periodic
    checkpoints a killed run resumes from with ``--resume``.

``repro lint``
    Run the project's reproducibility linter (:mod:`repro.devtools`):
    determinism, mutable-default, checkpoint-codec-drift, and event-time
    rules over the source tree.  See ``docs/static-analysis.md``.

``repro fleetgen``
    Stream a fleet-scale corpus (:mod:`repro.fleet`) to disk: 10k–100k
    routers, months of simulated time, optionally gzipped, optionally a
    full loadable dataset.  ``--shard LO:HI`` regenerates just one pod
    range of the identical corpus.  See ``docs/scale.md``.

``repro chaos``
    Replay a seeded campaign under every fault injector
    (:mod:`repro.faults`) and assert the robustness invariants: no
    unhandled exception on damaged artifacts, every loss attributed in
    the drop ledger, kill-at-any-boundary resume byte-identical.
    ``--only service-`` restricts the run to the live-service
    scenarios.  See ``docs/robustness.md``.

``repro serve``
    Run the always-on multi-tenant ingestion service (:mod:`repro.service`):
    live RFC 3164 syslog over UDP and TCP (RFC 6587 framing) into
    supervised per-tenant stream engines with checkpoint-backed
    failover, or query a running service with ``--status URL``.  See
    ``docs/service.md``.

Examples::

    repro simulate --seed 7 --days 60 --out campaign/
    repro analyze campaign/ --seed 7
    repro analyze campaign/ --seed 7 --jobs 4
    repro report campaign/ --seed 7 --table table4
    repro stream campaign/ --seed 7 --checkpoint engine.ckpt \\
        --checkpoint-every 50000
    repro stream campaign/ --seed 7 --checkpoint engine.ckpt --resume
    repro lint src --format json
    repro chaos --quick
    repro chaos --quick --only service-
    repro serve --config service.json
    repro serve --status http://127.0.0.1:8514
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import AnalysisResult, Dataset, ScenarioConfig, run_analysis, run_scenario
from repro.core.report import format_percent, render_table
from repro.topology.cenic import CenicParameters, build_cenic_like_network
from repro.util.timefmt import SECONDS_PER_HOUR


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Syslog vs IS-IS failure analysis (IMC 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run a campaign and save it")
    simulate.add_argument("--seed", type=int, default=2013)
    simulate.add_argument("--days", type=float, default=60.0)
    simulate.add_argument("--out", required=True, help="output directory")

    analyze = sub.add_parser("analyze", help="analyse a saved or fresh campaign")
    analyze.add_argument("dataset", nargs="?", help="saved dataset directory")
    analyze.add_argument("--seed", type=int, default=2013)
    analyze.add_argument("--days", type=float, default=60.0)
    analyze.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="process-pool width; 0 (the default) uses one job per CPU "
        "core, >1 shards the pipeline (results are byte-identical to "
        "--jobs 1)",
    )
    analyze.add_argument(
        "--ingest",
        choices=["scalar", "columnar"],
        default="scalar",
        help="syslog parse engine; columnar is the vectorised fast path "
        "(identical results, see docs/scale.md)",
    )

    report = sub.add_parser("report", help="print one of the paper's tables")
    report.add_argument("dataset", nargs="?", help="saved dataset directory")
    report.add_argument("--seed", type=int, default=2013)
    report.add_argument("--days", type=float, default=60.0)
    report.add_argument(
        "--table",
        choices=["table2", "table3", "table4", "table5", "flaps"],
        default="table4",
    )

    stream = sub.add_parser(
        "stream", help="tail a campaign through the incremental engine"
    )
    stream.add_argument("dataset", nargs="?", help="saved dataset directory")
    stream.add_argument("--seed", type=int, default=2013)
    stream.add_argument("--days", type=float, default=60.0)
    stream.add_argument(
        "--progress-every",
        type=int,
        default=25000,
        help="events between live summaries (0 disables them)",
    )
    stream.add_argument(
        "--checkpoint", help="checkpoint file to write and/or resume from"
    )
    stream.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="events between checkpoint writes (requires --checkpoint)",
    )
    stream.add_argument(
        "--resume",
        action="store_true",
        help="continue from the --checkpoint file instead of starting over",
    )
    stream.add_argument(
        "--drain-interval",
        type=int,
        default=256,
        help="events between watermark sweeps (latency knob, not results)",
    )

    from repro.devtools.lint import add_arguments as add_lint_arguments

    lint = sub.add_parser(
        "lint", help="run the reproducibility linter (docs/static-analysis.md)"
    )
    add_lint_arguments(lint)

    spine = sub.add_parser(
        "spine",
        help="regenerate or verify the engine correspondence map "
        "(engine-spec.json, docs/architecture.md)",
    )
    spine.add_argument(
        "--output", default=None, help="where to write the spec"
    )
    spine.add_argument(
        "--check",
        action="store_true",
        help="fail with a diff when the committed spec is stale",
    )

    fleetgen = sub.add_parser(
        "fleetgen", help="generate a fleet-scale corpus (docs/scale.md)"
    )
    fleetgen.add_argument("--out", required=True, help="output directory")
    fleetgen.add_argument(
        "--preset",
        default="tiny",
        help="size preset: tiny, small, fleet, or paper",
    )
    fleetgen.add_argument(
        "--seed", type=int, default=None, help="override the preset's seed"
    )
    fleetgen.add_argument(
        "--days", type=float, default=None, help="override the horizon length"
    )
    fleetgen.add_argument(
        "--pods", type=int, default=None, help="override the pod count"
    )
    fleetgen.add_argument(
        "--shard",
        default=None,
        metavar="LO:HI",
        help="emit only pods [LO, HI); shards of a partition concatenate "
        "to the full corpus",
    )
    fleetgen.add_argument(
        "--gzip", action="store_true", help="gzip the streamed artifacts"
    )
    fleetgen.add_argument(
        "--dataset",
        action="store_true",
        help="also write configs and ground truth so the directory loads "
        "as a full dataset",
    )

    chaos = sub.add_parser(
        "chaos", help="run the fault-injection harness (docs/robustness.md)"
    )
    chaos.add_argument("--seed", type=int, default=2013)
    chaos.add_argument(
        "--days",
        type=float,
        default=10.0,
        help="campaign length of the replayed scenario",
    )
    chaos.add_argument(
        "--kill-samples",
        type=int,
        default=6,
        help="event boundaries to kill and resume the stream at",
    )
    chaos.add_argument(
        "--quick",
        action="store_true",
        help="small campaign (3 days, 4 kill points) for CI",
    )
    chaos.add_argument(
        "--only",
        metavar="PREFIX",
        default=None,
        help="run only scenarios whose name starts with PREFIX "
        "(e.g. 'service-' for the live-service scenarios)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the always-on multi-tenant ingestion service "
        "(docs/service.md)",
    )
    serve.add_argument(
        "--config",
        metavar="CONFIG.json",
        default=None,
        help="service configuration document (tenants, ports, state dir)",
    )
    serve.add_argument(
        "--status",
        metavar="URL",
        default=None,
        help="query a running service's status endpoint and print a "
        "per-tenant table instead of starting a service",
    )
    return parser


def _load_or_run(args: argparse.Namespace) -> Dataset:
    if args.dataset:
        manifest_path = Path(args.dataset) / "manifest.json"
        if manifest_path.exists():
            # A fleet corpus carries its spec; the network is rebuilt
            # arithmetically rather than from the scenario seed.
            from repro.fleet import FleetSpec, build_network

            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            if not manifest.get("dataset"):
                raise SystemExit(
                    f"{args.dataset} is a stream-only fleet corpus; "
                    "regenerate it with `repro fleetgen --dataset` to "
                    "analyse it"
                )
            spec = FleetSpec(**manifest["spec"])
            return Dataset.load(args.dataset, build_network(spec))
        # The network is regenerated from the scenario seed; topology
        # parameters are deterministic in it.
        network = build_cenic_like_network(CenicParameters(seed=args.seed))
        return Dataset.load(args.dataset, network)
    print(
        f"(no dataset directory given: simulating seed={args.seed} "
        f"days={args.days:g})",
        file=sys.stderr,
    )
    return run_scenario(ScenarioConfig(seed=args.seed, duration_days=args.days))


def _print_analysis(result: AnalysisResult) -> None:
    syslog = result.syslog_failures
    isis = result.isis_failures
    match = result.failure_match
    syslog_hours = sum(f.duration for f in syslog) / SECONDS_PER_HOUR
    isis_hours = sum(f.duration for f in isis) / SECONDS_PER_HOUR
    print(
        render_table(
            ["Quantity", "Syslog", "IS-IS"],
            [
                ["Failures", f"{len(syslog):,}", f"{len(isis):,}"],
                ["Downtime (h)", f"{syslog_hours:,.0f}", f"{isis_hours:,.0f}"],
            ],
            title="Channel comparison",
        )
    )
    print()
    print(
        render_table(
            ["Quantity", "Value"],
            [
                ["Matched failures", f"{match.matched_count:,}"],
                [
                    "Syslog-only",
                    f"{len(match.only_a):,} "
                    f"({format_percent(len(match.only_a) / max(1, len(syslog)))})",
                ],
                [
                    "IS-IS-only",
                    f"{len(match.only_b):,} "
                    f"({format_percent(len(match.only_b) / max(1, len(isis)))})",
                ],
                ["Flap episodes", f"{len(result.flap_episodes):,}"],
                [
                    "Spurious downtime removed (h)",
                    f"{result.syslog_sanitized.spurious_downtime_hours:,.0f}",
                ],
            ],
            title="Matching and sanitisation",
        )
    )


def _print_table2(result: AnalysisResult) -> None:
    from repro.core.matching import transition_match_fraction

    config = result.options.matching
    fractions = {}
    for field, reference in (
        ("IS", result.isis.is_transitions),
        ("IP", result.isis.ip_transitions),
    ):
        for category, messages in (
            ("isis", result.syslog.isis_messages),
            ("media", result.syslog.physical_messages),
        ):
            fractions[(field, category)] = transition_match_fraction(
                reference, messages, config
            )
    rows = []
    for category, label in (("isis", "IS-IS"), ("media", "physical media")):
        for direction in ("down", "up"):
            rows.append(
                [
                    f"{label} {direction.capitalize()}",
                    format_percent(fractions[("IS", category)][direction]),
                    format_percent(fractions[("IP", category)][direction]),
                ]
            )
    print(
        render_table(
            ["Syslog type", "IS reach", "IP reach"],
            rows,
            title="Table 2: state transitions matching syslog by LSP field",
        )
    )


def _print_table3(result: AnalysisResult) -> None:
    from repro.core.flapping import in_flap

    coverage = result.coverage
    rows = []
    for direction in ("down", "up"):
        rows.append(
            [direction.upper()]
            + [
                f"{coverage.counts[direction][bucket]:,} "
                f"({format_percent(coverage.fraction(direction, bucket))})"
                for bucket in (0, 1, 2)
            ]
        )
    print(
        render_table(
            ["IS-IS transition", "None", "One", "Both"],
            rows,
            title="Table 3: IS-IS transitions by matching syslog messages",
        )
    )
    print()
    flap_rows = []
    for direction in ("down", "up"):
        unmatched = [t for t in coverage.unmatched if t.direction == direction]
        inside = sum(
            1
            for t in unmatched
            if in_flap(result.flap_intervals, t.link, t.time)
        )
        share = inside / len(unmatched) if unmatched else 0.0
        flap_rows.append(
            [direction.upper(), f"{format_percent(share)} of {len(unmatched):,}"]
        )
    print(
        render_table(
            ["Direction", "Unmatched inside flap periods"],
            flap_rows,
            title="§4.1: flap attribution of unmatched transitions",
        )
    )


def _print_report(result: AnalysisResult, table: str) -> None:
    if table == "table2":
        _print_table2(result)
        return
    if table == "table3":
        _print_table3(result)
        return
    if table == "table4":
        _print_analysis(result)
        return
    if table == "table5":
        from repro.core.statistics import class_statistics

        links = result.resolver.single_links()
        rows = []
        for label, selection in (
            ("Core", [l for l in links if l.is_core]),
            ("CPE", [l for l in links if not l.is_core]),
        ):
            for channel, failures in (
                ("Syslog", result.syslog_failures),
                ("IS-IS", result.isis_failures),
            ):
                stats = class_statistics(
                    failures, selection, result.horizon_start, result.horizon_end
                )
                rows.append(
                    [
                        label,
                        channel,
                        f"{stats.failures_per_link_year.median:.1f}",
                        f"{stats.duration_seconds.median:.0f}",
                        f"{stats.downtime_hours_per_year.median:.2f}",
                    ]
                )
        print(
            render_table(
                [
                    "Class", "Channel",
                    "Median fail/yr", "Median dur (s)", "Median down h/yr",
                ],
                rows,
                title="Per-link statistics (Table 5 medians)",
            )
        )
        return
    if table == "flaps":
        episodes = sorted(
            result.flap_episodes, key=lambda e: -e.failure_count
        )[:15]
        print(
            render_table(
                ["Link", "Failures", "Duration (h)"],
                [
                    [
                        e.link[:58],
                        e.failure_count,
                        f"{(e.end - e.start) / 3600:.2f}",
                    ]
                    for e in episodes
                ],
                title="Largest flapping episodes (ten-minute rule)",
            )
        )
        return
    raise ValueError(f"unknown table {table!r}")


def _run_stream(args: argparse.Namespace) -> int:
    from repro.stream import (
        CheckpointError,
        load_checkpoint,
        save_checkpoint,
        stream_dataset,
    )
    from repro.stream.engine import StreamOptions

    if args.checkpoint_every and not args.checkpoint:
        print("--checkpoint-every requires --checkpoint", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.drain_interval < 1:
        print("--drain-interval must be at least 1", file=sys.stderr)
        return 2

    dataset = _load_or_run(args)
    resume_state = None
    if args.resume:
        try:
            resume_state = load_checkpoint(args.checkpoint)
        except CheckpointError as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
        print(
            f"(resuming from {args.checkpoint}: "
            f"{resume_state['events_consumed']:,} events already consumed)",
            file=sys.stderr,
        )

    def on_progress(engine) -> None:
        s = engine.summary()
        print(
            f"[{s['events']:>10,} ev] t={s['watermark']:>12,.0f}s  "
            f"kept syslog {s['syslog_kept']:,} / isis {s['isis_kept']:,}  "
            f"matched {s['matched']:,} (+{s['match_pending']} pending)  "
            f"flap episodes {s['flap_episodes']:,}",
            file=sys.stderr,
        )

    def on_checkpoint(engine) -> None:
        save_checkpoint(args.checkpoint, engine)
        print(
            f"(checkpoint written at event {engine.events_consumed:,})",
            file=sys.stderr,
        )

    result = stream_dataset(
        dataset,
        StreamOptions(drain_interval=args.drain_interval),
        resume_state=resume_state,
        on_progress=on_progress if args.progress_every else None,
        progress_every=args.progress_every,
        checkpoint_every=args.checkpoint_every,
        on_checkpoint=on_checkpoint if args.checkpoint_every else None,
    )

    counters = result.counters
    print(
        render_table(
            ["Quantity", "Count"],
            [
                ["Events consumed", f"{counters['events']:,}"],
                [
                    "Syslog messages",
                    f"{counters['syslog_isis_messages'] + counters['syslog_physical_messages']:,}",
                ],
                [
                    "IS-IS reachability changes",
                    f"{counters['isis_is_messages'] + counters['isis_ip_messages']:,}",
                ],
                ["LSP refresh ticks", f"{counters['ticks']:,}"],
                [
                    "Link transitions",
                    f"{sum(counters[f'{k}-transitions'] for k in ('syslog-isis', 'syslog-physical', 'isis-is', 'isis-ip')):,}",
                ],
            ],
            title="Stream consumption",
        )
    )
    print()
    # StreamResult exposes the same fields the analyze printer reads.
    _print_analysis(result)
    return 0


def _run_fleetgen(args: argparse.Namespace) -> int:
    from repro.fleet import preset, write_corpus

    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.days is not None:
        overrides["duration_days"] = args.days
    if args.pods is not None:
        overrides["pods"] = args.pods
    try:
        spec = preset(args.preset, **overrides)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    pods = None
    if args.shard is not None:
        try:
            lo, hi = (int(part) for part in args.shard.split(":"))
        except ValueError:
            raise SystemExit(
                f"bad --shard {args.shard!r}: expected LO:HI"
            ) from None
        if not 0 <= lo < hi <= spec.pods:
            raise SystemExit(
                f"--shard {args.shard} out of range for {spec.pods} pods"
            )
        pods = range(lo, hi)

    try:
        counters = write_corpus(
            spec,
            args.out,
            gzip_artifacts=args.gzip,
            dataset=args.dataset,
            pods=pods,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(
        f"wrote {args.out}: {counters.syslog_lines:,} syslog lines "
        f"({counters.failure_lines:,} failure, {counters.chatter_lines:,} "
        f"chatter), {counters.lsp_records:,} LSP records, "
        f"{counters.failures:,} failures across {counters.routers:,} "
        f"routers / {counters.links:,} links"
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        Service,
        ServiceConfig,
        fetch_status,
        render_status,
    )

    if args.status is not None:
        print(render_status(fetch_status(args.status)))
        return 0
    if args.config is None:
        raise SystemExit("repro serve: either --config or --status required")
    config_path = Path(args.config)
    try:
        document = json.loads(config_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bad --config {args.config}: {exc}") from None
    try:
        config = ServiceConfig.from_document(document)
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"bad --config {args.config}: {exc}") from None

    service = Service(config)
    service.start()
    for name, doc in sorted(service.status()["tenants"].items()):
        print(
            f"serve: tenant {name}: tcp={doc['tcp_port']} "
            f"udp={doc['udp_port']}"
        )
    if service.status_port is not None:
        print(
            f"serve: status endpoint "
            f"http://{config.host}:{service.status_port}/status"
        )
    print("serve: running — Ctrl-C to drain and stop")
    try:
        while True:
            service.clock.sleep(1.0)
    except KeyboardInterrupt:
        print("serve: draining…")
    finally:
        summary = service.stop()
    failed = [
        name
        for name, doc in summary.items()
        if doc.get("state") == "failed"
    ]
    print(render_status(service.status()))
    if failed:
        print(f"serve: FAILED tenants: {', '.join(sorted(failed))}")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        dataset = run_scenario(
            ScenarioConfig(seed=args.seed, duration_days=args.days)
        )
        dataset.save(args.out)
        summary = dataset.summary
        print(
            f"saved {args.out}: {summary.syslog_delivered:,} syslog messages, "
            f"{summary.lsp_record_count:,} LSP records, "
            f"{summary.ground_truth_failure_count:,} ground-truth failures"
        )
        return 0
    if args.command == "analyze":
        result = run_analysis(
            _load_or_run(args), jobs=args.jobs, ingest=args.ingest
        )
        _print_analysis(result)
        return 0
    if args.command == "fleetgen":
        return _run_fleetgen(args)
    if args.command == "report":
        result = run_analysis(_load_or_run(args))
        _print_report(result, args.table)
        return 0
    if args.command == "stream":
        return _run_stream(args)
    if args.command == "lint":
        from repro.devtools.lint import run as run_lint

        return run_lint(args)
    if args.command == "spine":
        from repro.devtools.spine import main as run_spine

        spine_argv: List[str] = []
        if args.output is not None:
            spine_argv.extend(["--output", args.output])
        if args.check:
            spine_argv.append("--check")
        return run_spine(spine_argv)
    if args.command == "chaos":
        from repro.faults.chaos import run_chaos

        days = 3.0 if args.quick else args.days
        kill_samples = 4 if args.quick else args.kill_samples
        return run_chaos(
            args.seed, days, kill_samples=kill_samples, only=args.only
        )
    if args.command == "serve":
        return _run_serve(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
