"""Command-line interface.

Three subcommands mirror the paper's workflow:

``repro simulate``
    Run a measurement campaign and save the dataset directory (configs/,
    syslog.log, isis.dump, ground_truth.json, tickets.json, meta.json).

``repro analyze``
    Load a saved dataset (or simulate one on the fly with ``--seed``) and
    print the headline comparison: failures per channel, matching, and
    sanitisation accounting.

``repro report``
    Print one of the paper's tables computed from a dataset.

Examples::

    repro simulate --seed 7 --days 60 --out campaign/
    repro analyze campaign/ --seed 7
    repro report campaign/ --seed 7 --table table4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import AnalysisResult, Dataset, ScenarioConfig, run_analysis, run_scenario
from repro.core.report import format_percent, render_table
from repro.topology.cenic import CenicParameters, build_cenic_like_network
from repro.util.timefmt import SECONDS_PER_HOUR


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Syslog vs IS-IS failure analysis (IMC 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run a campaign and save it")
    simulate.add_argument("--seed", type=int, default=2013)
    simulate.add_argument("--days", type=float, default=60.0)
    simulate.add_argument("--out", required=True, help="output directory")

    analyze = sub.add_parser("analyze", help="analyse a saved or fresh campaign")
    analyze.add_argument("dataset", nargs="?", help="saved dataset directory")
    analyze.add_argument("--seed", type=int, default=2013)
    analyze.add_argument("--days", type=float, default=60.0)

    report = sub.add_parser("report", help="print one of the paper's tables")
    report.add_argument("dataset", nargs="?", help="saved dataset directory")
    report.add_argument("--seed", type=int, default=2013)
    report.add_argument("--days", type=float, default=60.0)
    report.add_argument(
        "--table",
        choices=["table4", "table5", "flaps"],
        default="table4",
    )
    return parser


def _load_or_run(args: argparse.Namespace) -> Dataset:
    if args.dataset:
        # The network is regenerated from the scenario seed; topology
        # parameters are deterministic in it.
        network = build_cenic_like_network(CenicParameters(seed=args.seed))
        return Dataset.load(args.dataset, network)
    print(
        f"(no dataset directory given: simulating seed={args.seed} "
        f"days={args.days:g})",
        file=sys.stderr,
    )
    return run_scenario(ScenarioConfig(seed=args.seed, duration_days=args.days))


def _print_analysis(result: AnalysisResult) -> None:
    syslog = result.syslog_failures
    isis = result.isis_failures
    match = result.failure_match
    syslog_hours = sum(f.duration for f in syslog) / SECONDS_PER_HOUR
    isis_hours = sum(f.duration for f in isis) / SECONDS_PER_HOUR
    print(
        render_table(
            ["Quantity", "Syslog", "IS-IS"],
            [
                ["Failures", f"{len(syslog):,}", f"{len(isis):,}"],
                ["Downtime (h)", f"{syslog_hours:,.0f}", f"{isis_hours:,.0f}"],
            ],
            title="Channel comparison",
        )
    )
    print()
    print(
        render_table(
            ["Quantity", "Value"],
            [
                ["Matched failures", f"{match.matched_count:,}"],
                [
                    "Syslog-only",
                    f"{len(match.only_a):,} "
                    f"({format_percent(len(match.only_a) / max(1, len(syslog)))})",
                ],
                [
                    "IS-IS-only",
                    f"{len(match.only_b):,} "
                    f"({format_percent(len(match.only_b) / max(1, len(isis)))})",
                ],
                ["Flap episodes", f"{len(result.flap_episodes):,}"],
                [
                    "Spurious downtime removed (h)",
                    f"{result.syslog_sanitized.spurious_downtime_hours:,.0f}",
                ],
            ],
            title="Matching and sanitisation",
        )
    )


def _print_report(result: AnalysisResult, table: str) -> None:
    if table == "table4":
        _print_analysis(result)
        return
    if table == "table5":
        from repro.core.statistics import class_statistics

        links = result.resolver.single_links()
        rows = []
        for label, selection in (
            ("Core", [l for l in links if l.is_core]),
            ("CPE", [l for l in links if not l.is_core]),
        ):
            for channel, failures in (
                ("Syslog", result.syslog_failures),
                ("IS-IS", result.isis_failures),
            ):
                stats = class_statistics(
                    failures, selection, result.horizon_start, result.horizon_end
                )
                rows.append(
                    [
                        label,
                        channel,
                        f"{stats.failures_per_link_year.median:.1f}",
                        f"{stats.duration_seconds.median:.0f}",
                        f"{stats.downtime_hours_per_year.median:.2f}",
                    ]
                )
        print(
            render_table(
                [
                    "Class", "Channel",
                    "Median fail/yr", "Median dur (s)", "Median down h/yr",
                ],
                rows,
                title="Per-link statistics (Table 5 medians)",
            )
        )
        return
    if table == "flaps":
        episodes = sorted(
            result.flap_episodes, key=lambda e: -e.failure_count
        )[:15]
        print(
            render_table(
                ["Link", "Failures", "Duration (h)"],
                [
                    [
                        e.link[:58],
                        e.failure_count,
                        f"{(e.end - e.start) / 3600:.2f}",
                    ]
                    for e in episodes
                ],
                title="Largest flapping episodes (ten-minute rule)",
            )
        )
        return
    raise ValueError(f"unknown table {table!r}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        dataset = run_scenario(
            ScenarioConfig(seed=args.seed, duration_days=args.days)
        )
        dataset.save(args.out)
        summary = dataset.summary
        print(
            f"saved {args.out}: {summary.syslog_delivered:,} syslog messages, "
            f"{summary.lsp_record_count:,} LSP records, "
            f"{summary.ground_truth_failure_count:,} ground-truth failures"
        )
        return 0
    if args.command == "analyze":
        result = run_analysis(_load_or_run(args))
        _print_analysis(result)
        return 0
    if args.command == "report":
        result = run_analysis(_load_or_run(args))
        _print_report(result, args.table)
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
