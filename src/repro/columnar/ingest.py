"""Vectorised RFC 3164 syslog parsing with an exact scalar-identity contract.

The contract
------------
:func:`parse_log_segment_columnar` is a drop-in replacement for
:meth:`repro.syslog.collector.SyslogCollector.parse_log_segment`: for every
input — clean, garbage, truncated, non-ASCII — it returns the same
``ParsedSegment`` (same entries, same ``latest``/``min_parsed``), records
the same drops in the same order into the ``IngestReport``, and raises the
same exception from the same line in strict mode.

The engine earns its speed only on lines it can *prove* the scalar parser
would accept, and proves it with vectorised byte-level checks:

* the line is printable ASCII (bytes 32..126) — this collapses the regex's
  Unicode ``\\S``/whitespace semantics to "not a space byte";
* the exact ``<PRI>Mmm dd HH:MM:SS.mmm HOST BODY`` grammar holds at fixed
  byte offsets, with PRI ≤ 191, a known month name, and in-range
  day/hour/minute/second values;
* the calendar date is not Feb 29 — the only date for which the scalar
  parser's candidate-year window can reject every year
  (``TimestampRangeError``), so the only date whose outcome depends on
  context in a way the batch path does not model.

Everything else — malformed lines, out-of-range values, control bytes,
Feb 29, non-ASCII — is handed to the scalar parser *in line order*, with
the running ``latest`` timestamp threaded through, so drop reasons, strict
errors, and year-resolution context stay bit-identical.

Year resolution as a fixpoint
-----------------------------
The scalar parser resolves the RFC 3164 missing-year ambiguity against the
running maximum timestamp (see :func:`repro.util.timefmt.parse_timestamp`):
each line takes the earliest candidate year whose timestamp is no more than
two days behind the maximum parsed so far.  Batch parsing computes the same
assignment by iteration: start every line at its earliest valid candidate,
compute the running maximum with ``np.maximum.accumulate``, bump any line
whose choice fell more than the slack behind the maximum *before* it to the
next candidate year, and repeat until no line moves.  Choices only ever
move up, each bump is forced under the final (larger) maxima as well, and
for any non-Feb-29 date the candidate one year past the running maximum is
always eligible — so the iteration terminates at exactly the sequential
assignment, and never needs the scalar parser's out-of-range escape.
"""

from __future__ import annotations

import datetime
import gc
from typing import Dict, List, Optional, Tuple

from repro.faults.ledger import CHANNEL_SYSLOG, IngestReport
from repro.syslog.cisco import CiscoLogEntry, parse_cisco_body
from repro.syslog.collector import CollectedEntry, ParsedSegment, SyslogCollector
from repro.syslog.message import parse_syslog_line, try_parse_syslog_line
from repro.util.timefmt import STUDY_EPOCH, _YEAR_RESOLUTION_SLACK

try:  # numpy is the engine; without it the scalar parser serves every call.
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None  # type: ignore[assignment]

COLUMNAR_AVAILABLE = np is not None

try:  # pragma: no cover - optional, absent in the reference environment
    import polars  # noqa: F401

    _HAVE_POLARS = True
except ImportError:
    _HAVE_POLARS = False


def available_backends() -> Tuple[str, ...]:
    """Engine backends present in this environment (diagnostic only)."""
    backends = []
    if COLUMNAR_AVAILABLE:
        backends.append("numpy")
    if _HAVE_POLARS:
        backends.append("polars")
    return tuple(backends)


#: Month-name table derived through strftime so it matches whatever %b
#: strptime accepts in this locale.  Names not matching the line grammar's
#: ``[A-Z][a-z]{2}`` could never appear in a grammar-valid line.
_MONTH_BY_CODE: Dict[int, int] = {}
for _m in range(1, 13):
    _name = datetime.date(2001, _m, 1).strftime("%b")
    if len(_name) == 3 and _name[0].isupper() and _name[1:].islower():
        _code = (ord(_name[0]) << 16) | (ord(_name[1]) << 8) | ord(_name[2])
        _MONTH_BY_CODE[_code] = _m

#: Day-count ceiling per month on the fast path; Feb 29 is deliberately
#: below the ceiling so leap-day lines take the scalar route.
_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)

#: Bodies that can possibly parse as one of the four Cisco mnemonics; the
#: parse regexes are anchored on these literals.
_CISCO_PREFIXES = ("%CLNS-", "%ROUTING-", "%LINK-", "%LINEPROTO-")

#: Memoised ``parse_cisco_body`` results keyed by (hostname, body), with
#: the canonical key strings stored alongside.  Router chatter repeats
#: heavily, so the cache turns the per-entry regex cost into a dict hit —
#: and reusing the stored strings means a 10k-router, multi-million-line
#: corpus holds one copy of each distinct hostname/body instead of one
#: per line (hundreds of MB at fleet scale; the transient slices used for
#: the lookup die immediately, keeping the allocator's hot blocks hot).
#: On overflow the cache is cleared rather than frozen: adversarial
#: high-cardinality input re-fills it at one regex parse per distinct
#: pair per epoch, while memory stays bounded by the cap.
_CISCO_CACHE: Dict[
    Tuple[str, str], Tuple[str, str, Optional[CiscoLogEntry]]
] = {}
_CISCO_CACHE_CAP = 1 << 18

#: Lines per vectorised batch; bounds peak temporary-array memory on
#: multi-million-line corpora without changing results (batching is just
#: segment composition with the context threaded through).  Sized so the
#: classifier's windowed gathers stay cache-resident: 2**17 lines keep
#: every temporary under ~10 MB, measured ~3x faster end-to-end than
#: 2**20 on a 2M-line corpus.
_BATCH_LINES = 1 << 17


def _parsed_entry(time: float, hostname: str, body: str) -> CollectedEntry:
    cache = _CISCO_CACHE  # reprolint: disable=W003 -- per-process memo: every entry is re-derived purely from (hostname, body), so whatever a worker's copy holds, the returned values equal a cold parse
    cached = cache.get((hostname, body))
    if cached is None:
        if body.startswith(_CISCO_PREFIXES):
            entry = parse_cisco_body(hostname, body)
        else:
            entry = None
        if len(cache) >= _CISCO_CACHE_CAP:
            cache.clear()  # reprolint: disable=W001 -- the memo never escapes the process and carries no result state; mutating a worker's copy only affects that worker's parse speed
        cached = (hostname, body, entry)
        cache[hostname, body] = cached
    hostname, body, entry = cached
    # CollectedEntry is a frozen dataclass; its generated __init__ routes
    # every field through object.__setattr__, which costs ~3x this direct
    # dict fill.  Equality, hashing and pickling only see the final
    # __dict__, so the constructed instance is indistinguishable.
    made = CollectedEntry.__new__(CollectedEntry)
    d = made.__dict__
    d["generated_time"] = time
    d["hostname"] = hostname
    d["raw_body"] = body
    d["entry"] = entry
    return made


class _Walk:
    """Mutable per-parse state threaded through batches and slow lines."""

    __slots__ = ("strict", "report", "latest", "min_parsed", "entries")

    def __init__(
        self, strict: bool, report: Optional[IngestReport], after: float
    ) -> None:
        self.strict = strict
        self.report = report
        self.latest = after
        self.min_parsed: Optional[float] = None
        self.entries: List[CollectedEntry] = []

    def scalar_line(self, line: str, line_number: int, line_offset: int) -> None:
        """Process one line exactly as the scalar loop body does."""
        if not line.strip():
            return
        if self.strict:
            message = parse_syslog_line(line, after=self.latest)
        else:
            message, reason = try_parse_syslog_line(line, after=self.latest)
            if message is None:
                if self.report is not None:
                    self.report.record(
                        CHANNEL_SYSLOG,
                        reason or "malformed-line",
                        offset=line_offset,
                        index=line_number,
                        sample=line,
                    )
                return
        timestamp = message.timestamp
        if timestamp > self.latest:
            self.latest = timestamp
        if self.min_parsed is None or timestamp < self.min_parsed:
            self.min_parsed = timestamp
        self.entries.append(
            _parsed_entry(timestamp, message.hostname, message.body)
        )


def _year_base_table(years: "np.ndarray") -> "np.ndarray":
    """``base[j, m-1]`` = integer seconds of (years[j], m, 1) past the epoch."""
    table = np.empty((len(years), 12), dtype=np.int64)
    for j, year in enumerate(years.tolist()):
        for month in range(1, 13):
            delta = datetime.datetime(year, month, 1) - STUDY_EPOCH
            table[j, month - 1] = delta.days * 86400 + delta.seconds
    return table


def _resolve_years(
    day_seconds: "np.ndarray",
    months: "np.ndarray",
    millis: "np.ndarray",
    after: float,
) -> Tuple["np.ndarray", float]:
    """Assign each fast line its sequential-identical timestamp.

    ``day_seconds`` is the year-independent part (seconds from the 1st of
    the month, integer-valued), ``months`` the 1-based month numbers.
    Returns the timestamps in line order plus the updated running maximum.
    """
    slack = _YEAR_RESOLUTION_SLACK
    count = len(day_seconds)
    reached = (STUDY_EPOCH + datetime.timedelta(seconds=after)).year
    high = max(2012, reached + 1)
    millis_f = millis.astype(np.float64) / 1000.0
    rows = np.arange(count)

    for _ in range(64):
        years = np.arange(2010, high + 1, dtype=np.int64)
        base = _year_base_table(years)
        cand_int = base[:, months - 1].T + day_seconds[:, None]
        cand = cand_int.astype(np.float64)
        cand[cand_int < 0] = np.inf
        cand += millis_f[:, None]
        choice = np.isfinite(cand).argmax(axis=1)

        # Each iteration bumps at least one line and every line bumps at
        # most once per candidate year, so this terminates; the budget is
        # the proof's worst case, not an expectation (clean corpora
        # converge in one or two passes).
        budget = count * len(years) + 2
        while budget > 0:
            budget -= 1
            chosen = cand[rows, choice]
            running = np.maximum.accumulate(
                np.concatenate(([after], chosen))
            )
            behind = chosen < running[:-1] - slack
            if not behind.any():
                return chosen, float(running[-1])
            choice[behind] += 1
            if choice.max() >= len(years):
                break  # widen the candidate-year window and restart
        high += 4
    raise RuntimeError("year-resolution fixpoint failed to converge")


def _classify_ascii(
    buf: "np.ndarray", starts: "np.ndarray", ends: "np.ndarray"
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray", dict]:
    """Split lines into provably-fast and everything-else.

    Returns ``(fast_mask, hostname_starts, hostname_spaces, fields)`` where
    the last two are aligned with the fast lines only and ``fields`` holds
    their decoded timestamp components.
    """
    # Pad so fixed-offset probes past short final lines stay in bounds; the
    # padding can never *validate* a line because the length gate below is
    # arithmetic on the true line extents.
    padded = np.concatenate([buf, np.zeros(32, dtype=np.uint8)])
    lengths = ends - starts
    s = starts

    # One windowed gather per region instead of dozens of scattered ones:
    # the PRI region is anchored at the line start, the timestamp region at
    # the (PRI-length-dependent) timestamp start.
    head = padded[s[:, None] + np.arange(5)]
    b1, b2, b3 = (
        head[:, 1].astype(np.int32),
        head[:, 2].astype(np.int32),
        head[:, 3].astype(np.int32),
    )
    d1 = (b1 >= 48) & (b1 <= 57)
    d2 = (b2 >= 48) & (b2 <= 57)
    d3 = (b3 >= 48) & (b3 <= 57)
    pri1 = d1 & (head[:, 2] == 62)
    pri2 = d1 & d2 & (head[:, 3] == 62)
    pri3 = d1 & d2 & d3 & (head[:, 4] == 62)
    pri_len = np.where(pri1, 1, np.where(pri2, 2, 3))
    pri_val = np.where(
        pri1,
        b1 - 48,
        np.where(pri2, (b1 - 48) * 10 + b2 - 48, (b1 - 48) * 100 + (b2 - 48) * 10 + b3 - 48),
    )
    fast = (head[:, 0] == 60) & (pri1 | pri2 | pri3) & (pri_val <= 191)

    ts = s + pri_len + 2  # first byte of the 19-char timestamp
    # Window columns 0..18 are the timestamp, 19 the pre-hostname space,
    # 20 the first hostname byte.
    win = padded[ts[:, None] + np.arange(21)]
    digit_cols = win[:, (5, 7, 8, 10, 11, 13, 14, 16, 17, 18)]
    fast &= ((digit_cols >= 48) & (digit_cols <= 57)).all(axis=1)
    sep_cols = win[:, (3, 6, 9, 12, 15, 19)]
    fast &= (
        sep_cols == np.array([32, 32, 58, 58, 46, 32], dtype=np.uint8)
    ).all(axis=1)
    day_hi = win[:, 4]
    fast &= (day_hi == 32) | ((day_hi >= 48) & (day_hi <= 57))
    fast &= win[:, 20] != 32  # hostname must start with a non-space

    # Month lookup: unknown names never survive strptime in any year.
    m0, m1, m2 = win[:, 0], win[:, 1], win[:, 2]
    fast &= (m0 >= 65) & (m0 <= 90) & (m1 >= 97) & (m1 <= 122)
    fast &= (m2 >= 97) & (m2 <= 122)
    code = (m0.astype(np.int32) << 16) | (m1.astype(np.int32) << 8) | m2
    month_codes = np.array(sorted(_MONTH_BY_CODE), dtype=np.int32)
    month_nums = np.array(
        [_MONTH_BY_CODE[c] for c in sorted(_MONTH_BY_CODE)], dtype=np.int32
    )
    pos = np.searchsorted(month_codes, code)
    pos[pos >= len(month_codes)] = 0
    month = np.where(month_codes[pos] == code, month_nums[pos], 0)
    fast &= month > 0

    day = (
        np.where(day_hi == 32, 0, day_hi.astype(np.int32) - 48) * 10
        + win[:, 5]
        - 48
    )
    hour = (win[:, 7].astype(np.int32) - 48) * 10 + win[:, 8] - 48
    minute = (win[:, 10].astype(np.int32) - 48) * 10 + win[:, 11] - 48
    second = (win[:, 13].astype(np.int32) - 48) * 10 + win[:, 14] - 48
    ms = (
        (win[:, 16].astype(np.int32) - 48) * 100
        + (win[:, 17].astype(np.int32) - 48) * 10
        + win[:, 18]
        - 48
    )
    dim = np.zeros(13, dtype=np.int32)
    dim[1:] = _DAYS_IN_MONTH
    fast &= (day >= 1) & (day <= dim[month]) & (hour <= 23)
    fast &= (minute <= 59) & (second <= 59)

    # The line must have room for the full grammar: PRI, timestamp, one
    # hostname byte, and the hostname/body separator space.
    h0 = ts + 20
    fast &= lengths >= (pri_len + 24)

    # Any control byte (other than the newlines already removed) or
    # non-ASCII byte voids the whole line's proof: regex \S and str.strip
    # have Unicode semantics the byte checks don't model.
    suspicious = np.flatnonzero(
        ((buf < 32) & (buf != 10)) | (buf > 126)
    )
    if len(suspicious):
        bad_lines = np.unique(np.searchsorted(starts, suspicious, "right") - 1)
        fast[bad_lines] = False

    # First space at or after the hostname start (an index into buf, with a
    # one-past-the-end sentinel so "no space" falls out of the range check).
    space_positions = np.concatenate(
        (np.flatnonzero(buf == 32), [len(buf)])
    )
    fast_idx = np.flatnonzero(fast)
    h0_fast = h0[fast_idx]
    sp = space_positions[np.searchsorted(space_positions, h0_fast)]
    has_space = sp < ends[fast_idx]
    if not has_space.all():
        fast[fast_idx[~has_space]] = False
        fast_idx = fast_idx[has_space]
        h0_fast = h0_fast[has_space]
        sp = sp[has_space]

    fields = {
        "day_seconds": (
            (day[fast_idx].astype(np.int64) - 1) * 86400
            + hour[fast_idx].astype(np.int64) * 3600
            + minute[fast_idx].astype(np.int64) * 60
            + second[fast_idx].astype(np.int64)
        ),
        "month": month[fast_idx],
        "ms": ms[fast_idx],
    }
    return fast, h0_fast, sp, fields


def _parse_ascii_batch(
    text: str,
    buf: "np.ndarray",
    starts: "np.ndarray",
    ends: "np.ndarray",
    walk: _Walk,
    line_base: int,
    offset_base: int,
) -> None:
    """Parse one batch of lines of a printable-ASCII chunk.

    ``starts``/``ends`` index into ``buf`` (== character offsets in
    ``text``); ``line_base``/``offset_base`` place the batch's first line
    globally for ledger records.
    """
    fast, h0, sp, fields = _classify_ascii(buf, starts, ends)
    lengths = ends - starts
    slow_idx = np.flatnonzero(~fast & (lengths > 0))
    fast_idx = np.flatnonzero(fast)

    # Walk fast groups and slow lines in line order.  Slow lines can parse
    # (Feb 29, control bytes in the body) and thereby advance the
    # year-resolution context, so each one is a barrier between groups.
    group_start = 0  # position within fast_idx
    fast_list = fast_idx.tolist()
    h0_list = h0.tolist()
    sp_list = sp.tolist()
    end_list = ends[fast_idx].tolist()
    end_all = ends.tolist()
    start_list = starts.tolist()

    def run_group(lo: int, hi: int) -> None:
        """Vector-resolve and emit fast lines [lo, hi) of fast_idx."""
        if hi <= lo:
            return
        times, latest = _resolve_years(
            fields["day_seconds"][lo:hi],
            fields["month"][lo:hi],
            fields["ms"][lo:hi],
            walk.latest,
        )
        group_min = float(times.min())
        if walk.min_parsed is None or group_min < walk.min_parsed:
            walk.min_parsed = group_min
        walk.latest = latest
        append = walk.entries.append
        make = _parsed_entry
        for t, a, b, e in zip(
            times.tolist(), h0_list[lo:hi], sp_list[lo:hi], end_list[lo:hi]
        ):
            append(make(t, text[a:b], text[b + 1 : e]))

    for slow_line in slow_idx.tolist():
        hi = group_start
        while hi < len(fast_list) and fast_list[hi] < slow_line:
            hi += 1
        run_group(group_start, hi)
        group_start = hi
        line_text = text[start_list[slow_line] : end_all[slow_line]]
        walk.scalar_line(
            line_text,
            line_base + 1 + slow_line,
            offset_base + start_list[slow_line],
        )
    run_group(group_start, len(fast_list))


def _parse_ascii_chunk(
    text: str, walk: _Walk, line_base: int, offset_base: int
) -> None:
    """Parse a printable-or-not, but pure-ASCII, chunk of log text."""
    buf = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
    newline = np.flatnonzero(buf == 10)
    starts = np.concatenate(([0], newline + 1))
    ends = np.concatenate((newline, [len(buf)]))
    for lo in range(0, len(starts), _BATCH_LINES):
        hi = min(lo + _BATCH_LINES, len(starts))
        # Rebase the batch onto its own slice of the buffer: every scan
        # inside the classifier (control bytes, spaces, the pad copy) is
        # then O(batch), not O(chunk).  Classification never reads across
        # a line's own extent, so cutting at the batch's last line-end
        # cannot change any verdict.
        byte_lo = int(starts[lo])
        byte_hi = int(ends[hi - 1])
        _parse_ascii_batch(
            text[byte_lo:byte_hi],
            buf[byte_lo:byte_hi],
            starts[lo:hi] - byte_lo,
            ends[lo:hi] - byte_lo,
            walk,
            line_base + lo,
            offset_base + byte_lo,
        )


def parse_log_segment_columnar(
    text: str,
    *,
    strict: bool = True,
    report: Optional[IngestReport] = None,
    after: float = 0.0,
    line_base: int = 0,
    offset_base: int = 0,
) -> ParsedSegment:
    """Vectorised twin of ``SyslogCollector.parse_log_segment``.

    Same signature, same results, same ledger records, same strict-mode
    exceptions — see the module docstring for how the identity is proven
    line by line.  Falls back to the scalar parser wholesale when numpy is
    unavailable.
    """
    if np is None:
        return SyslogCollector.parse_log_segment(
            text,
            strict=strict,
            report=report,
            after=after,
            line_base=line_base,
            offset_base=offset_base,
        )
    walk = _Walk(strict=strict, report=report, after=after)
    # The parse allocates one tracked object per line and they all survive
    # to the end, so the generational collector can only waste time
    # re-walking the growing heap (measured at >2x the whole parse).  Pause
    # it for the duration; collection semantics are unchanged, only timing.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        if text.isascii():
            _parse_ascii_chunk(text, walk, line_base, offset_base)
        else:
            _parse_mixed(text, walk, line_base, offset_base)
    finally:
        if gc_was_enabled:
            gc.enable()
    return ParsedSegment(
        entries=walk.entries, latest=walk.latest, min_parsed=walk.min_parsed
    )


def _parse_mixed(
    text: str, walk: _Walk, line_base: int, offset_base: int
) -> None:
    """Non-ASCII text: vectorise maximal ASCII line runs, scalar the rest.

    Byte offsets are taken from the surrogatepass encoding of each line —
    the same accounting the scalar loop performs — while character slicing
    stays correct because runs are re-joined from the split lines.
    """
    lines = text.split("\n")
    offsets = []
    running = offset_base
    for line in lines:
        offsets.append(running)
        running += len(line.encode("utf-8", errors="surrogatepass")) + 1

    i = 0
    while i < len(lines):
        if lines[i].isascii():
            j = i
            while j < len(lines) and lines[j].isascii():
                j += 1
            _parse_ascii_chunk(
                "\n".join(lines[i:j]), walk, line_base + i, offsets[i]
            )
            i = j
        else:
            walk.scalar_line(lines[i], line_base + 1 + i, offsets[i])
            i += 1


def parse_log_columnar(
    text: str,
    *,
    strict: bool = True,
    report: Optional[IngestReport] = None,
) -> List[CollectedEntry]:
    """Vectorised twin of ``SyslogCollector.parse_log`` (whole-file parse)."""
    segment = parse_log_segment_columnar(text, strict=strict, report=report)
    return segment.entries
