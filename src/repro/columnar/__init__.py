"""Columnar (vectorised) syslog ingest fast path.

The scalar parser in :mod:`repro.syslog.collector` walks the log one line
at a time through a regex and ``strptime`` — robust, but ~70 µs/line, which
turns a fleet-scale corpus (see :mod:`repro.fleet`) into minutes of ingest.
This package batch-parses the log with numpy on the raw byte buffer and
routes only the lines it cannot *prove* it handles identically back through
the scalar parser, so the result — entries, running timestamp context,
drop ledgers, and strict-mode errors — is exactly what the scalar parser
produces, at a fraction of the cost.

The engine is pure numpy; Polars is detected (``available_backends``) but
not required, and its absence changes nothing.  See ``docs/scale.md`` for
the identity contract and the benchmark protocol behind ``BENCH_fleet.json``.
"""

from repro.columnar.ingest import (
    COLUMNAR_AVAILABLE,
    available_backends,
    parse_log_columnar,
    parse_log_segment_columnar,
)

__all__ = [
    "COLUMNAR_AVAILABLE",
    "available_backends",
    "parse_log_columnar",
    "parse_log_segment_columnar",
]
