"""Half-open time intervals and normalised interval sets.

All interval endpoints are floats (simulation seconds).  Intervals are
half-open ``[start, end)`` so that abutting intervals tile time without
overlap and the measure of a union is the sum of the measures of disjoint
parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open time interval ``[start, end)`` with ``start <= end``.

    Zero-length intervals are permitted as inputs to :class:`IntervalSet`
    (they are dropped during normalisation) but ``start > end`` is an error.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start

    def is_empty(self) -> bool:
        """True when the interval has zero measure."""
        return self.end == self.start

    def contains(self, instant: float) -> bool:
        """True when ``instant`` lies inside the half-open span.

        >>> Interval(1.0, 2.0).contains(1.0), Interval(1.0, 2.0).contains(2.0)
        (True, False)
        """
        return self.start <= instant < self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share positive measure.

        Abutting intervals (``a.end == b.start``) do not overlap.
        """
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """The overlapping span, or ``None`` when disjoint/abutting."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def shift(self, delta: float) -> "Interval":
        """Translate the interval by ``delta`` seconds."""
        return Interval(self.start + delta, self.end + delta)


class IntervalSet:
    """An immutable, normalised union of disjoint half-open intervals.

    Construction accepts intervals in any order, overlapping or abutting;
    normalisation sorts, drops empties, and merges touching spans so that the
    internal representation is canonical.  Two interval sets covering the same
    points always compare equal.

    >>> s = IntervalSet([Interval(0, 1), Interval(1, 2), Interval(5, 6)])
    >>> list(s)
    [Interval(start=0, end=2), Interval(start=5, end=6)]
    >>> s.total_duration()
    3
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: Tuple[Interval, ...] = tuple(self._normalise(intervals))

    @staticmethod
    def _normalise(intervals: Iterable[Interval]) -> List[Interval]:
        ordered = sorted(iv for iv in intervals if not iv.is_empty())
        merged: List[Interval] = []
        for iv in ordered:
            if merged and iv.start <= merged[-1].end:
                if iv.end > merged[-1].end:
                    merged[-1] = Interval(merged[-1].start, iv.end)
            else:
                merged.append(iv)
        return merged

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[float, float]]) -> "IntervalSet":
        """Build from ``(start, end)`` tuples."""
        return cls(Interval(start, end) for start, end in pairs)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        spans = ", ".join(f"[{iv.start}, {iv.end})" for iv in self._intervals)
        return f"IntervalSet({spans})"

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The canonical disjoint intervals, in increasing order."""
        return self._intervals

    def total_duration(self) -> float:
        """Lebesgue measure of the set, in seconds."""
        return sum(iv.duration for iv in self._intervals)

    def contains(self, instant: float) -> bool:
        """Membership test by binary search (O(log n))."""
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if instant < iv.start:
                hi = mid - 1
            elif instant >= iv.end:
                lo = mid + 1
            else:
                return True
        return False

    def touches(self, start: float, end: float) -> bool:
        """Closed-interval overlap test: does ``[start, end]`` touch the set?

        Unlike :meth:`intersection` (half-open, positive measure only),
        this treats both the probe and every member interval as closed, so
        a zero-length probe sitting exactly on a member's boundary — or a
        probe abutting a member end-to-start — counts as touching.  Note
        that zero-width *member* intervals are dropped at normalisation,
        so only the probe may be degenerate.  O(log n).
        """
        if end < start:
            raise ValueError(f"probe end {end} precedes start {start}")
        # The rightmost member starting at or before `end` is, because
        # member ends increase with starts, also the furthest-reaching
        # candidate; the closed spans touch iff it reaches back to `start`.
        lo, hi = 0, len(self._intervals) - 1
        candidate = -1
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._intervals[mid].start <= end:
                candidate = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return candidate >= 0 and self._intervals[candidate].end >= start

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union."""
        return IntervalSet(list(self._intervals) + list(other._intervals))

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection via a linear merge of the two sorted lists."""
        result: List[Interval] = []
        i = j = 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            overlap = a[i].intersection(b[j])
            if overlap is not None:
                result.append(overlap)
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self - other``."""
        result: List[Interval] = []
        for iv in self._intervals:
            cursor = iv.start
            for hole in other._intervals:
                if hole.end <= cursor:
                    continue
                if hole.start >= iv.end:
                    break
                if hole.start > cursor:
                    result.append(Interval(cursor, hole.start))
                cursor = max(cursor, hole.end)
                if cursor >= iv.end:
                    break
            if cursor < iv.end:
                result.append(Interval(cursor, iv.end))
        return IntervalSet(result)

    def complement(self, horizon_start: float, horizon_end: float) -> "IntervalSet":
        """The portion of ``[horizon_start, horizon_end)`` not covered."""
        if horizon_end < horizon_start:
            raise ValueError("horizon end precedes start")
        horizon = IntervalSet([Interval(horizon_start, horizon_end)])
        return horizon.subtract(self)

    def clip(self, start: float, end: float) -> "IntervalSet":
        """Restrict the set to ``[start, end)``."""
        return self.intersection(IntervalSet([Interval(start, end)]))

    def overlapping(self, probe: Interval) -> List[Interval]:
        """Member intervals sharing positive measure with ``probe``."""
        return [iv for iv in self._intervals if iv.overlaps(probe)]

    @staticmethod
    def intersect_all(sets: Sequence["IntervalSet"]) -> "IntervalSet":
        """Intersection of many sets; the intersection of none is an error.

        Used by isolation analysis: a customer is isolated exactly while
        *every* link in some cut is simultaneously down.
        """
        if not sets:
            raise ValueError("intersect_all requires at least one set")
        result = sets[0]
        for other in sets[1:]:
            if not result:
                break
            result = result.intersection(other)
        return result

    @staticmethod
    def union_all(sets: Sequence["IntervalSet"]) -> "IntervalSet":
        """Union of many sets (empty input yields the empty set)."""
        combined: List[Interval] = []
        for s in sets:
            combined.extend(s.intervals)
        return IntervalSet(combined)
