"""Interval algebra and link-state timelines.

Everything in the analysis reduces to operations on sets of half-open time
intervals: downtime is the measure of a link's DOWN interval set, matching
overlap is intersection, customer isolation is the intersection of the DOWN
sets of a topological cut, and sanitisation subtracts listener-outage windows.

:class:`Interval` is a single half-open ``[start, end)`` span;
:class:`IntervalSet` is a normalised disjoint union supporting the usual set
algebra; :class:`LinkStateTimeline` turns a sequence of up/down transitions
(possibly inconsistent, as raw syslog is) into interval sets per state.
"""

from repro.intervals.interval import Interval, IntervalSet
from repro.intervals.timeline import AmbiguityStrategy, LinkStateTimeline, LinkState

__all__ = [
    "Interval",
    "IntervalSet",
    "AmbiguityStrategy",
    "LinkState",
    "LinkStateTimeline",
]
