"""Link state timelines built from (possibly inconsistent) transition streams.

Raw observation streams are not clean alternations of down/up: the paper
finds 461 "down" messages preceded by another "down" and 202 "up" messages
preceded by another "up" (§4.3, Table 6).  The state of the link in the
window between two same-direction messages is *ambiguous* — either the
intervening opposite message was lost in the UDP syslog channel, or the
repeated message is a spurious retransmission and the link never changed
state.

:class:`LinkStateTimeline` reconstructs a total state function over the
measurement horizon from such a stream under a configurable
:class:`AmbiguityStrategy`:

``PREVIOUS_STATE``
    Leave the link in the state established by the earlier message and treat
    the repeated message as a spurious reminder.  The paper finds this
    strategy brings syslog-derived downtime closest to IS-IS ground truth.
``ASSUME_DOWN`` / ``ASSUME_UP``
    Force the ambiguous window to DOWN / UP respectively (the "lost message"
    interpretations).
``DISCARD``
    Mark the window AMBIGUOUS and exclude it from both up and down time —
    the approach of the authors' earlier SIGCOMM 2010 study.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.intervals.interval import Interval, IntervalSet

#: Transition direction literals used throughout the library.
DOWN = "down"
UP = "up"


class LinkState(enum.Enum):
    """State of a link at an instant, as reconstructed from a message stream."""

    UP = "up"
    DOWN = "down"
    AMBIGUOUS = "ambiguous"


class AmbiguityStrategy(enum.Enum):
    """Policy for the window between two same-direction transition messages."""

    PREVIOUS_STATE = "previous_state"
    ASSUME_DOWN = "assume_down"
    ASSUME_UP = "assume_up"
    DISCARD = "discard"


@dataclass(frozen=True)
class StateAnomaly:
    """A repeated same-direction message and the ambiguous window it creates.

    ``direction`` is the direction of the *repeated* message; the window runs
    from the earlier same-direction message to the repeated one.
    """

    window_start: float
    window_end: float
    direction: str

    @property
    def duration(self) -> float:
        return self.window_end - self.window_start


@dataclass(frozen=True)
class StateSpan:
    """A maximal constant-state span of the reconstructed timeline.

    ``censored_left`` / ``censored_right`` mark spans that begin or end at the
    horizon boundary rather than at an observed transition; such spans cannot
    be counted as complete failures.
    """

    start: float
    end: float
    state: LinkState
    censored_left: bool = False
    censored_right: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


def _window_state(strategy: AmbiguityStrategy, current: LinkState) -> LinkState:
    if strategy is AmbiguityStrategy.PREVIOUS_STATE:
        return current
    if strategy is AmbiguityStrategy.ASSUME_DOWN:
        return LinkState.DOWN
    if strategy is AmbiguityStrategy.ASSUME_UP:
        return LinkState.UP
    return LinkState.AMBIGUOUS


class LinkStateTimeline:
    """Total reconstructed state of one link over a measurement horizon.

    Build with :meth:`from_transitions` from a sequence of
    ``(time, direction)`` pairs, where direction is ``"up"`` or ``"down"``.
    Transitions outside the horizon are ignored.  The link is assumed to be
    in ``initial_state`` (UP by default — links spend the vast majority of
    their life up) from the horizon start until the first message.
    """

    def __init__(
        self,
        spans: Sequence[StateSpan],
        anomalies: Sequence[StateAnomaly],
        horizon_start: float,
        horizon_end: float,
    ) -> None:
        self._spans = tuple(spans)
        self._anomalies = tuple(anomalies)
        self.horizon_start = horizon_start
        self.horizon_end = horizon_end

    @classmethod
    def from_transitions(
        cls,
        transitions: Iterable[Tuple[float, str]],
        horizon_start: float,
        horizon_end: float,
        initial_state: LinkState = LinkState.UP,
        strategy: AmbiguityStrategy = AmbiguityStrategy.PREVIOUS_STATE,
    ) -> "LinkStateTimeline":
        if horizon_end < horizon_start:
            raise ValueError("horizon end precedes start")
        events = sorted(
            (t, d) for t, d in transitions if horizon_start <= t < horizon_end
        )
        for _, direction in events:
            if direction not in (UP, DOWN):
                raise ValueError(f"unknown transition direction {direction!r}")

        # Delegate to the canonical engine core: an exhaustive feed of the
        # per-link builder replays exactly the classic batch loop.  The
        # import is function-level to keep this module a leaf.
        from repro.core.events import Transition
        from repro.engine.timeline import TimelineBuilder

        builder = TimelineBuilder(
            "",
            horizon_start,
            horizon_end,
            strategy,
            "",
            initial_state=initial_state,
            capture=True,
        )
        for time, direction in events:
            builder.feed(
                Transition(
                    time=time,
                    link="",
                    direction=direction,
                    source="",
                    reporters=frozenset(("",)),
                    messages=(),
                )
            )
        builder.flush()
        return builder.timeline()

    @property
    def spans(self) -> Tuple[StateSpan, ...]:
        """All maximal constant-state spans in time order."""
        return self._spans

    @property
    def anomalies(self) -> Tuple[StateAnomaly, ...]:
        """Repeated same-direction messages encountered during the build."""
        return self._anomalies

    def state_at(self, instant: float) -> LinkState:
        """The reconstructed state at ``instant`` (must lie in the horizon)."""
        if not self.horizon_start <= instant < self.horizon_end:
            raise ValueError("instant outside the timeline horizon")
        lo, hi = 0, len(self._spans) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            span = self._spans[mid]
            if instant < span.start:
                hi = mid - 1
            elif instant >= span.end:
                lo = mid + 1
            else:
                return span.state
        raise AssertionError("timeline spans do not tile the horizon")

    def _intervals_for(self, state: LinkState) -> IntervalSet:
        return IntervalSet(
            Interval(span.start, span.end)
            for span in self._spans
            if span.state == state
        )

    @property
    def up_intervals(self) -> IntervalSet:
        """All time the link spent UP."""
        return self._intervals_for(LinkState.UP)

    @property
    def down_intervals(self) -> IntervalSet:
        """All time the link spent DOWN."""
        return self._intervals_for(LinkState.DOWN)

    @property
    def ambiguous_intervals(self) -> IntervalSet:
        """Windows excluded under the DISCARD strategy."""
        return self._intervals_for(LinkState.AMBIGUOUS)

    def down_spans(self, include_censored: bool = False) -> List[StateSpan]:
        """Maximal DOWN spans; censored ones excluded unless requested.

        A censored span touches the horizon boundary, so its true start or
        end was not observed — it is downtime but not a complete *failure*.
        """
        return [
            span
            for span in self._spans
            if span.state is LinkState.DOWN
            and (include_censored or not (span.censored_left or span.censored_right))
        ]

    def downtime(self) -> float:
        """Total DOWN seconds over the horizon (censored spans included)."""
        return self.down_intervals.total_duration()
