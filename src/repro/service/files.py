"""Atomic JSON state files shared by the supervisor and its workers.

The service's cross-process state — heartbeats, checkpoint-adjacent
reports, stop requests — lives in small JSON documents inside each
tenant's state directory.  Writers always go through a sibling temp file
and :func:`os.replace`, the same discipline
:func:`repro.stream.checkpoint.save_checkpoint` established, so a reader
never observes a torn document: it sees the previous complete version or
the new complete version, nothing in between.  Readers treat a missing
or (transiently) undecodable file as "no document yet" rather than an
error — the writer may simply not have produced one.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional


def write_json_atomic(path: "str | os.PathLike[str]", document: Dict[str, Any]) -> None:
    """Write ``document`` to ``path`` so readers never see a torn file."""
    target = os.fspath(path)
    temp_path = f"{target}.tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, target)


def read_json(path: "str | os.PathLike[str]") -> Optional[Dict[str, Any]]:
    """Read a JSON document written by :func:`write_json_atomic`.

    Returns ``None`` when the file does not exist or does not decode —
    with atomic writers the latter can only be a foreign or damaged
    file, and the service treats both as "no usable document".
    """
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def touch_marker(path: "str | os.PathLike[str]") -> None:
    """Create an empty marker file (stop requests); idempotent."""
    with open(os.fspath(path), "a", encoding="utf-8"):
        pass
