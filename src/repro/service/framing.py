"""RFC 3164 / RFC 6587 framing for live syslog transport.

UDP needs no framing: one datagram is one message (RFC 3164 §2).  Over
TCP, RFC 6587 defines the two framings in the wild:

* **octet counting** (§3.4.1): ``MSG-LEN SP MSG`` — self-describing and
  binary-safe, the framing reliable collectors prefer;
* **non-transparent framing** (§3.4.2): messages separated by LF — what
  legacy senders emit, vulnerable to torn writes.

:class:`TcpFrameDecoder` accepts arbitrary byte chunks from a TCP stream
(frames torn at any byte boundary reassemble; that is the stream
contract, not an error) and yields complete message lines.  It
auto-detects the framing per connection from the first byte, exactly as
RFC 6587 §3.4 suggests receivers do.  Genuine damage — an unparseable
length prefix, a frame beyond the size bound, a connection closed mid
frame — never raises and is never silent: each failure yields a typed
:class:`FrameError` the caller records in the drop ledger with reasons
from :data:`FRAME_REASONS`.

Everything here is pure (bytes in, records out) so the framing layer is
testable and fuzzable without sockets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

#: Frame/line size bound (bytes).  RFC 5424 transports must support at
#: least 2048 octets; we allow comfortably more, and anything beyond is
#: shed as hostile or corrupt rather than buffered without bound.
MAX_FRAME_BYTES = 16384

#: Longest run of digits an octet-count prefix may carry (2**20 bytes
#: needs 7 digits; more digits means a corrupt or hostile prefix).
_MAX_COUNT_DIGITS = 7

#: Drop-ledger reasons the decoder can attribute.
REASON_BAD_FRAME = "bad-frame"
REASON_OVERSIZE_FRAME = "oversize-frame"
REASON_TORN_FRAME = "torn-frame"
FRAME_REASONS = frozenset(
    {REASON_BAD_FRAME, REASON_OVERSIZE_FRAME, REASON_TORN_FRAME}
)


@dataclass(frozen=True)
class FrameError:
    """One framing-level loss, attributable in the drop ledger.

    ``reason`` is a :data:`FRAME_REASONS` member; ``sample`` is a clipped
    piece of the offending bytes; ``discarded`` counts the bytes this
    error consumed (so transport accounting still closes to the byte).
    """

    reason: str
    sample: bytes
    discarded: int


#: What :meth:`TcpFrameDecoder.feed` yields: decoded message lines
#: (``str``) interleaved with framing losses (:class:`FrameError`).
FrameItem = Union[str, FrameError]


def encode_octet_counted(line: str) -> bytes:
    """Encode one message line as an RFC 6587 octet-counted frame."""
    payload = line.encode("utf-8")
    return f"{len(payload)} ".encode("ascii") + payload


def encode_lf_delimited(line: str) -> bytes:
    """Encode one message line in RFC 6587 non-transparent framing."""
    if "\n" in line:
        raise ValueError("LF-delimited frames cannot contain newlines")
    return line.encode("utf-8") + b"\n"


class TcpFrameDecoder:
    """Incremental RFC 6587 frame reassembly over one TCP connection.

    Feed it every received chunk in order; it yields complete message
    lines and typed :class:`FrameError` records.  Call :meth:`close`
    when the connection ends to flush (and attribute) a torn final
    frame.  The decoder is deterministic in the byte stream alone —
    chunk boundaries never change what it yields, which is what the
    torn-frame chaos scenario asserts.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be positive")
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._mode: str = "detect"  # "detect" | "octet" | "lf"
        self._closed = False
        # One damaged run in flight: bytes are discarded as they arrive
        # but the FrameError is emitted only once the run ends (at the
        # resync LF, or at close).  Emitting eagerly would split one
        # damaged run into a chunk-boundary-dependent number of errors,
        # breaking the decoder's determinism contract.
        self._skip_reason: str = ""
        self._skip_sample = bytearray()
        self._skip_count = 0

    @property
    def mode(self) -> str:
        """The framing this connection locked onto (``detect`` until known)."""
        return self._mode

    def feed(self, data: bytes) -> List[FrameItem]:
        """Consume one received chunk; returns completed items in order."""
        if self._closed:
            raise ValueError("decoder already closed")
        self._buffer.extend(data)
        items: List[FrameItem] = []
        while True:
            if self._skip_reason:
                flushed = self._drain_skip()
                if flushed is None:
                    break  # the damaged run has no end in sight yet
                items.append(flushed)
                continue
            if self._mode == "detect":
                if not self._buffer:
                    break
                # RFC 6587 §3.4: a digit first byte means octet counting
                # (a syslog line proper always starts with "<").
                first = self._buffer[0:1]
                self._mode = "octet" if first.isdigit() else "lf"
            before = len(self._buffer)
            if self._mode == "octet":
                items.extend(self._drain_octet())
            else:
                items.extend(self._drain_lf())
            if len(self._buffer) == before and not self._skip_reason:
                break
        return items

    def close(self) -> List[FrameItem]:
        """End of connection: attribute whatever is left as torn."""
        if self._closed:
            return []
        self._closed = True
        if self._skip_reason:
            # The damaged run never found its resync LF; the connection
            # end bounds it instead.
            self._absorb_into_skip(len(self._buffer))
            return [self._finish_skip()]
        if not self._buffer:
            return []
        leftover = bytes(self._buffer)
        self._buffer.clear()
        return [
            FrameError(
                reason=REASON_TORN_FRAME,
                sample=leftover[:64],
                discarded=len(leftover),
            )
        ]

    # ------------------------------------------------------------- skip
    def _begin_skip(self, reason: str) -> None:
        self._skip_reason = reason

    def _absorb_into_skip(self, count: int) -> None:
        taken = bytes(self._buffer[:count])
        del self._buffer[:count]
        self._skip_sample.extend(taken[: max(0, 64 - len(self._skip_sample))])
        self._skip_count += len(taken)

    def _finish_skip(self) -> FrameError:
        error = FrameError(
            reason=self._skip_reason,
            sample=bytes(self._skip_sample),
            discarded=self._skip_count,
        )
        self._skip_reason = ""
        self._skip_sample = bytearray()
        self._skip_count = 0
        return error

    def _drain_skip(self) -> "FrameError | None":
        """Discard buffered bytes up to the resync LF (the only other
        frame boundary in the wild); emit once the run is bounded."""
        cut = self._buffer.find(b"\n")
        if cut < 0:
            self._absorb_into_skip(len(self._buffer))
            return None
        self._absorb_into_skip(cut + 1)
        return self._finish_skip()

    # ------------------------------------------------------------ octet
    def _drain_octet(self) -> List[FrameItem]:
        items: List[FrameItem] = []
        while True:
            space = self._buffer.find(b" ", 0, _MAX_COUNT_DIGITS + 1)
            if space < 0:
                if len(self._buffer) > _MAX_COUNT_DIGITS:
                    # No space within the longest legal prefix: the
                    # stream lost octet sync.
                    self._begin_skip(REASON_BAD_FRAME)
                break  # else: an incomplete count prefix; wait for bytes
            prefix = bytes(self._buffer[:space])
            if not prefix.isdigit():
                self._begin_skip(REASON_BAD_FRAME)
                break
            length = int(prefix)
            if length > self.max_frame_bytes:
                self._begin_skip(REASON_OVERSIZE_FRAME)
                break
            end = space + 1 + length
            if len(self._buffer) < end:
                break  # torn frame: wait for the rest
            payload = bytes(self._buffer[space + 1 : end])
            del self._buffer[:end]
            items.append(payload.decode("utf-8", errors="replace"))
        return items

    # --------------------------------------------------------------- lf
    def _drain_lf(self) -> List[FrameItem]:
        items: List[FrameItem] = []
        while True:
            cut = self._buffer.find(b"\n")
            if cut < 0:
                if len(self._buffer) > self.max_frame_bytes:
                    self._begin_skip(REASON_OVERSIZE_FRAME)
                break
            if cut > self.max_frame_bytes:
                # The line is complete but over the bound; shedding must
                # not depend on whether its LF had arrived by the time
                # the length bound tripped, so both paths converge here.
                self._begin_skip(REASON_OVERSIZE_FRAME)
                break
            raw = bytes(self._buffer[:cut])
            del self._buffer[: cut + 1]
            if raw.endswith(b"\r"):  # tolerate CRLF senders
                raw = raw[:-1]
            if not raw:
                continue  # keepalive blank lines carry nothing
            items.append(raw.decode("utf-8", errors="replace"))
        return items


def decode_datagram(data: bytes) -> str:
    """One UDP datagram as a message line (RFC 3164: no framing at all).

    Trailing newlines some senders append are stripped; undecodable
    bytes survive as replacement characters so the line still reaches
    the parser (and, if malformed, the parse ledger) rather than
    vanishing at the transport.
    """
    return data.rstrip(b"\r\n").decode("utf-8", errors="replace")
