"""Chaos scenarios for the always-on service (``repro chaos``).

These extend the fault-injection harness from artifacts at rest to the
live service: each scenario stands up a real :class:`Service` on
loopback, drives it over real sockets, injures it — a worker killed
mid-stream, a flood past the high-water mark, torn and duplicated TCP
frames, a checkpoint corrupted between restarts — and asserts the same
two invariants the rest of the harness enforces:

* **every loss is attributed** — the arithmetic ``sent = journalled +
  shed`` and ``lines = events + drops`` closes exactly against the
  frontend and worker ledgers;
* **degradation is bounded and recovery is exact** — after the injury
  heals, the tenant's final report is byte-identical to a clean
  in-process run (:func:`~repro.service.worker.replay_lines`) over the
  same delivered lines.

The scenarios use the harness's pristine campaign directory as the
tenant profile and its syslog text as the live corpus, so everything
derives from the chaos seed.
"""

from __future__ import annotations

import os
import signal
import socket
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.ledger import CHANNEL_CHECKPOINT, CHANNEL_SERVICE
from repro.service.clock import Clock
from repro.service.framing import (
    REASON_BAD_FRAME,
    REASON_TORN_FRAME,
    encode_lf_delimited,
    encode_octet_counted,
)
from repro.service.profile import load_tenant_context
from repro.service.supervisor import Service, ServiceConfig, TenantConfig
from repro.service.worker import (
    CHECKPOINT_FILE,
    REASON_BAD_CHECKPOINT,
    replay_lines,
)

#: Wall-clock ceiling for any single wait (the scenarios poll state, so
#: normal runs finish far sooner; the ceiling only bounds a hung run).
WAIT_CEILING = 120.0


def corpus_lines(syslog_text: str) -> List[str]:
    """The live corpus: the campaign's central log, one line per message."""
    return [line for line in syslog_text.split("\n") if line.strip()]


def _tenant_service(
    chaos: "_Chaos",  # noqa: F821
    name: str,
    *,
    tenant_overrides: Optional[Dict[str, object]] = None,
    service_overrides: Optional[Dict[str, object]] = None,
) -> Service:
    """One-tenant service over the pristine campaign, state under the
    chaos work directory."""
    tenant_kwargs: Dict[str, object] = {
        "name": "tenant0",
        "profile_dir": str(chaos.pristine_dir),
        "checkpoint_every": 50,
    }
    tenant_kwargs.update(tenant_overrides or {})
    service_kwargs: Dict[str, object] = {
        "state_dir": str(Path(chaos.root) / name / "state"),
        "seed": chaos.seed,
        "watchdog_timeout": 10.0,
        "backoff_base": 0.1,
        "backoff_cap": 0.5,
    }
    service_kwargs.update(service_overrides or {})
    return Service(
        ServiceConfig(tenants=[TenantConfig(**tenant_kwargs)], **service_kwargs)
    )


def _wait_for(
    clock: Clock,
    predicate: Callable[[], bool],
    label: str,
    outcome: "ScenarioOutcome",  # noqa: F821
    *,
    ceiling: float = WAIT_CEILING,
) -> bool:
    """Poll until ``predicate`` holds; a ceiling hit fails the scenario."""
    deadline = clock.now() + ceiling
    while clock.now() < deadline:
        if predicate():
            return True
        clock.sleep(0.05)
    outcome.check(False, f"timed out waiting for {label}")
    return False


def _send_lines(
    port: int, lines: List[str], encode: Callable[[str], bytes]
) -> None:
    with socket.create_connection(("127.0.0.1", port)) as sock:
        for line in lines:
            sock.sendall(encode(line))


def _accounting_closes(
    outcome: "ScenarioOutcome",  # noqa: F821
    result: Dict[str, object],
    sent: int,
) -> None:
    """The zero-unattributed-loss arithmetic, checked at both stages."""
    journalled = result["journal_lines"]
    shed = result["shed"]
    outcome.check(
        result["received"] == sent,
        f"transport delivered all {sent} sent lines",
    )
    outcome.check(
        journalled + shed == result["received"],
        f"frontend closes: {journalled} journalled + {shed} shed "
        f"= {result['received']} received",
    )
    report = result.get("report")
    outcome.check(report is not None, "worker produced its final report")
    if report is None:
        return
    outcome.check(
        report["lines_seen"] == journalled,
        f"worker consumed every journalled line ({journalled})",
    )
    parsed_away = report["lines_seen"] - report["events"]
    outcome.check(
        parsed_away <= report["dropped"],
        f"worker closes: {report['lines_seen']} lines = {report['events']} "
        f"events + ≤{report['dropped']} attributed drops",
    )


def _scenario_worker_kill(chaos: "_Chaos") -> "ScenarioOutcome":  # noqa: F821
    """Kill the worker mid-stream; restart must resume byte-identically."""
    from repro.faults.chaos import ScenarioOutcome, stream_signature

    outcome = ScenarioOutcome("service-worker-kill")
    clock = Clock()
    lines = corpus_lines(chaos.pristine.syslog_text)
    half = len(lines) // 2
    service = _tenant_service(chaos, "service-worker-kill")
    service.start()
    try:
        runtime = service.tenants["tenant0"]
        checkpoint_path = runtime.state_dir / CHECKPOINT_FILE
        _send_lines(runtime.tcp_port, lines[:half], encode_lf_delimited)
        if not _wait_for(
            clock,
            lambda: checkpoint_path.exists(),
            "a checkpoint before the kill",
            outcome,
        ):
            return outcome
        os.kill(runtime.process.pid, signal.SIGKILL)
        checkpointed = checkpoint_path.exists()
        _send_lines(runtime.tcp_port, lines[half:], encode_lf_delimited)
        if not _wait_for(
            clock,
            lambda: (
                lambda t: t["state"] == "running"
                and t["worker"]["lines_seen"] >= len(lines)
            )(service.status()["tenants"]["tenant0"]),
            "restarted worker to catch up",
            outcome,
        ):
            return outcome
    finally:
        results = service.stop()
    result = results["tenant0"]
    outcome.check(checkpointed, "a checkpoint existed before the kill")
    outcome.check(
        result["restarts"] == 1, f"exactly one restart ({result['restarts']})"
    )
    _accounting_closes(outcome, result, len(lines))
    clean, _ = replay_lines(
        load_tenant_context("tenant0", chaos.pristine_dir), lines
    )
    if result["report"] is not None:
        outcome.check(
            result["report"]["signature"] == stream_signature(clean),
            "post-restart report byte-identical to a clean run",
        )
        outcome.drops = result["report"]["dropped"] + result["frontend_dropped"]
        outcome.check(outcome.drops == 0, "no message lost to the kill")
    return outcome


def _scenario_flood(chaos: "_Chaos") -> "ScenarioOutcome":  # noqa: F821
    """Flood past high-water: shedding is typed, bounded, and accounted."""
    from repro.faults.chaos import ScenarioOutcome

    outcome = ScenarioOutcome("service-flood")
    clock = Clock()
    base = corpus_lines(chaos.pristine.syslog_text)
    # The flood replays the corpus repeatedly — far faster than the
    # worker's high-water allowance, so the ingress buffer must shed.
    flood = base * 10
    service = _tenant_service(
        chaos,
        "service-flood",
        tenant_overrides={"high_water": 50, "buffer_capacity": 100},
    )
    service.start()
    try:
        runtime = service.tenants["tenant0"]
        _send_lines(runtime.tcp_port, flood, encode_octet_counted)
        _wait_for(
            clock,
            lambda: (
                lambda t: t["queue_depth"] == 0
                and t["worker"]["lines_seen"] >= t["journal_lines"] > 0
            )(service.status()["tenants"]["tenant0"]),
            "flood to drain",
            outcome,
        )
    finally:
        results = service.stop()
    result = results["tenant0"]
    shed = result["shed"]
    outcome.drops = result["frontend_dropped"] + (
        result["report"]["dropped"] if result["report"] else 0
    )
    outcome.check(shed > 0, f"flood forced shedding ({shed} lines)")
    frontend = result["frontend_ledger"].get(CHANNEL_SERVICE, {})
    outcome.check(
        frontend.get("reasons", {}).get("backpressure", 0) == shed,
        "every shed line ledgered with the backpressure reason",
    )
    outcome.check(
        result["state"] == "stopped" and result["restarts"] == 0,
        "worker survived the flood without a restart",
    )
    _accounting_closes(outcome, result, len(flood))
    return outcome


def _scenario_torn_frames(chaos: "_Chaos") -> "ScenarioOutcome":  # noqa: F821
    """Torn, duplicated, and garbage TCP frames: damage attributed,
    valid lines unharmed."""
    from repro.faults.chaos import ScenarioOutcome, stream_signature

    outcome = ScenarioOutcome("service-torn-frames")
    clock = Clock()
    lines = corpus_lines(chaos.pristine.syslog_text)
    half = len(lines) // 2
    service = _tenant_service(chaos, "service-torn-frames")
    service.start()
    try:
        runtime = service.tenants["tenant0"]
        port = runtime.tcp_port
        delivered: List[str] = []

        # Connection 1: octet-counted, dribbled a few bytes at a time
        # (frames torn at arbitrary byte boundaries must reassemble),
        # with a garbage length prefix injected mid-stream and one frame
        # sent twice (duplication is data, not damage).
        with socket.create_connection(("127.0.0.1", port)) as sock:
            payload = bytearray()
            for index, line in enumerate(lines[:half]):
                payload += encode_octet_counted(line)
                delivered.append(line)
                if index == half // 2:
                    payload += b"99x this is not an octet count\n"
                    payload += encode_octet_counted(line)
                    delivered.append(line)
            step = 7  # prime-sized chunks tear every frame eventually
            for start in range(0, len(payload), step):
                sock.sendall(bytes(payload[start : start + step]))

        # The journal must absorb connection 1 before connection 2 opens
        # — the comparator replays `delivered` in order, so the two
        # connections' lines must not interleave in the journal.
        if not _wait_for(
            clock,
            lambda: service.status()["tenants"]["tenant0"]["journal_lines"]
            >= len(delivered),
            "connection 1 to reach the journal",
            outcome,
        ):
            return outcome

        # Connection 2: LF-framed remainder, closed mid-line so the
        # final frame is genuinely torn.
        with socket.create_connection(("127.0.0.1", port)) as sock:
            for line in lines[half:]:
                sock.sendall(encode_lf_delimited(line))
                delivered.append(line)
            sock.sendall(b"<189>Oct 99 torn mid-write")  # no newline, then FIN

        _wait_for(
            clock,
            lambda: (
                lambda t: t["worker"]["lines_seen"] >= len(delivered)
            )(service.status()["tenants"]["tenant0"]),
            "damaged stream to drain",
            outcome,
        )
    finally:
        results = service.stop()
    result = results["tenant0"]
    frontend = result["frontend_ledger"].get(CHANNEL_SERVICE, {})
    reasons = frontend.get("reasons", {})
    outcome.drops = result["frontend_dropped"]
    outcome.check(
        reasons.get(REASON_BAD_FRAME, 0) == 1,
        "garbage octet prefix ledgered as bad-frame",
    )
    outcome.check(
        reasons.get(REASON_TORN_FRAME, 0) == 1,
        "mid-line connection close ledgered as torn-frame",
    )
    outcome.check(
        result["journal_lines"] == len(delivered),
        f"all {len(delivered)} valid lines (including the duplicate) "
        "survived the damage",
    )
    clean, _ = replay_lines(
        load_tenant_context("tenant0", chaos.pristine_dir), delivered
    )
    if result["report"] is not None:
        outcome.check(
            result["report"]["signature"] == stream_signature(clean),
            "report byte-identical to a clean run over the valid lines",
        )
    else:
        outcome.check(False, "worker produced its final report")
    return outcome


def _scenario_checkpoint_corrupt(chaos: "_Chaos") -> "ScenarioOutcome":  # noqa: F821
    """Corrupt the checkpoint between restarts: the worker falls back to
    a full journal replay and still recovers byte-identically."""
    from repro.faults.chaos import ScenarioOutcome, stream_signature

    outcome = ScenarioOutcome("service-checkpoint-corrupt")
    clock = Clock()
    lines = corpus_lines(chaos.pristine.syslog_text)
    half = len(lines) // 2
    service = _tenant_service(chaos, "service-checkpoint-corrupt")
    service.start()
    try:
        runtime = service.tenants["tenant0"]
        checkpoint_path = runtime.state_dir / CHECKPOINT_FILE
        _send_lines(runtime.tcp_port, lines[:half], encode_lf_delimited)
        if not _wait_for(
            clock,
            lambda: checkpoint_path.exists(),
            "the first checkpoint write",
            outcome,
        ):
            return outcome
        os.kill(runtime.process.pid, signal.SIGKILL)
        # Between death and restart, the checkpoint is damaged the way a
        # torn write would: a truncated JSON prefix.
        raw = checkpoint_path.read_bytes()
        checkpoint_path.write_bytes(raw[: max(1, len(raw) // 3)])
        _send_lines(runtime.tcp_port, lines[half:], encode_lf_delimited)
        _wait_for(
            clock,
            lambda: (
                lambda t: t["state"] == "running"
                and t["worker"]["lines_seen"] >= len(lines)
            )(service.status()["tenants"]["tenant0"]),
            "restarted worker to replay past the corrupt checkpoint",
            outcome,
        )
    finally:
        results = service.stop()
    result = results["tenant0"]
    outcome.check(
        result["restarts"] == 1, f"exactly one restart ({result['restarts']})"
    )
    report = result.get("report")
    outcome.check(report is not None, "worker produced its final report")
    if report is None:
        return outcome
    checkpoint_ledger = report["ledger"].get(CHANNEL_CHECKPOINT, {})
    outcome.drops = report["dropped"]
    outcome.check(
        checkpoint_ledger.get("reasons", {}).get(REASON_BAD_CHECKPOINT, 0) == 1,
        "corrupt checkpoint ledgered with a typed reason",
    )
    clean, _ = replay_lines(
        load_tenant_context("tenant0", chaos.pristine_dir), lines
    )
    outcome.check(
        report["signature"] == stream_signature(clean),
        "full-replay recovery byte-identical to a clean run",
    )
    outcome.check(
        report["dropped"] == 1 and result["frontend_dropped"] == 0,
        "no message lost — the only ledger entry is the checkpoint itself",
    )
    return outcome


def service_scenarios() -> List[Tuple[str, Callable[..., object]]]:
    """The service scenarios, in the harness's (name, callable) shape."""
    return [
        ("service-worker-kill", _scenario_worker_kill),
        ("service-flood", _scenario_flood),
        ("service-torn-frames", _scenario_torn_frames),
        ("service-checkpoint-corrupt", _scenario_checkpoint_corrupt),
    ]
