"""Tenant profiles: what the always-on service knows about each tenant.

A tenant is one network whose routers stream syslog at the service.  Its
*profile* is a saved campaign directory (the ``repro simulate`` output
format): the router config archive supplies the link inventory the
analysis resolves reporters against, ``meta.json`` supplies the analysis
horizon, and ``tickets.json``/listener outages supply the sanitisation
context.  Live ingestion needs exactly that subset — no ground truth, no
topology object, no LSP archive — so :func:`load_tenant_context` loads
it directly instead of round-tripping through
:meth:`repro.simulation.dataset.Dataset.load` (which requires the
regenerated :class:`~repro.topology.model.Network`).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.core.links import LinkResolver
from repro.intervals import Interval, IntervalSet
from repro.ticketing import TicketSystem, TroubleTicket
from repro.topology.configmine import ConfigArchive, mine_configs

#: Tenant names become directory names and URL path segments, so they
#: are restricted to a filesystem- and URL-safe alphabet up front.
_TENANT_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_tenant_name(name: str) -> str:
    """Return ``name`` if it is usable as a tenant identifier, else raise.

    The name namespaces the tenant's state directory and checkpoint
    files; anything that could traverse paths or collide after
    normalisation is rejected here, once, rather than defended against
    everywhere downstream.
    """
    if not _TENANT_NAME_RE.match(name):
        raise ValueError(
            f"tenant name {name!r} is not a safe identifier "
            "(letters, digits, dot, dash, underscore; max 64 chars)"
        )
    return name


@dataclass(frozen=True)
class TenantContext:
    """Everything a tenant's analysis engine needs besides the live feed."""

    name: str
    resolver: LinkResolver
    analysis_start: float
    horizon_end: float
    listener_outages: IntervalSet
    tickets: TicketSystem


def load_tenant_context(name: str, profile_dir: "str | Path") -> TenantContext:
    """Load a tenant's analysis context from its saved profile directory.

    ``profile_dir`` is a saved campaign directory; only ``configs/``,
    ``meta.json``, and ``tickets.json`` are read.  The inventory is
    re-mined from the config archive exactly as every other load path
    does, so the service resolves links identically to the batch and
    stream analyses of the same campaign.
    """
    validate_tenant_name(name)
    root = Path(profile_dir)

    archive = ConfigArchive()
    config_dir = root / "configs"
    if not config_dir.is_dir():
        raise FileNotFoundError(
            f"tenant {name!r} profile {root} has no configs/ directory"
        )
    for path in sorted(config_dir.glob("*.cfg")):
        archive.add(path.stem, path.read_text(encoding="utf-8"))
    resolver = LinkResolver(mine_configs(archive))

    meta = json.loads((root / "meta.json").read_text(encoding="utf-8"))
    outages = IntervalSet(
        Interval(start, end) for start, end in meta["listener_outages"]
    )

    tickets_path = root / "tickets.json"
    if tickets_path.exists():
        tickets = TicketSystem(
            TroubleTicket(**raw)
            for raw in json.loads(tickets_path.read_text(encoding="utf-8"))
        )
    else:
        tickets = TicketSystem([])

    return TenantContext(
        name=name,
        resolver=resolver,
        analysis_start=meta["analysis_start"],
        horizon_end=meta["horizon_end"],
        listener_outages=outages,
        tickets=tickets,
    )
