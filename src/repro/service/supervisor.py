"""The always-on supervisor: sockets in front, tenant workers behind.

One :class:`Service` owns, per tenant, a TCP listener and a UDP socket
(RFC 3164 datagrams; RFC 6587 framing over TCP), a bounded ingress
buffer, an append-only **journal**, and one worker process running
:func:`repro.service.worker.tenant_worker_main`.  The data path is:

    sockets → frame decode → bounded buffer → journal → worker → engine

The journal is the frontend/worker queue *and* the durability layer:
everything written to it survives any worker death, and the worker's
state is a pure function of its bytes (see :mod:`repro.service.worker`).
The supervisor therefore never re-sends anything — failover is entirely
the worker's replay.

Degradation is explicit at every stage.  Framing damage is ledgered by
the decoder; when a worker lags more than ``high_water`` journal lines,
journalling pauses and the ingress buffer absorbs the flood, shedding
oldest-first into the tenant's frontend ledger with the typed
``backpressure`` reason once it overflows.  Nothing is ever dropped
without a ledger entry — the chaos flood scenario closes the arithmetic
line by line.

Crash/hang detection is heartbeat-based: each worker bumps a sequence
number in an atomically-replaced heartbeat file; the watchdog kills any
worker whose process died or whose sequence stalls past the timeout,
then restarts it with deterministic seeded exponential backoff
(:func:`repro.util.rand.child_rng` keyed by tenant and restart ordinal)
until the restart budget is exhausted, after which the tenant is marked
``failed`` and left down — a supervisor must degrade one tenant, never
the service.
"""

from __future__ import annotations

import multiprocessing
import selectors
import socket
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.faults.ledger import CHANNEL_SERVICE, IngestReport
from repro.service.buffer import REASON_BACKPRESSURE, BoundedLineBuffer
from repro.service.clock import Clock
from repro.service.files import touch_marker
from repro.service.framing import FrameError, TcpFrameDecoder, decode_datagram
from repro.service.profile import validate_tenant_name
from repro.service.worker import (
    DEFAULT_LATENESS,
    HEARTBEAT_FILE,
    REPORT_FILE,
    STOP_FILE,
    read_heartbeat,
    read_report,
    tenant_worker_main,
)
from repro.util.rand import child_rng

#: Tenant lifecycle states the supervisor tracks.
STATE_RUNNING = "running"
STATE_BACKOFF = "backoff"
STATE_FAILED = "failed"
STATE_STOPPED = "stopped"

#: Lines journalled per pump batch (bounds time spent per loop tick).
_PUMP_BATCH = 1000


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's ports, profile, and degradation knobs."""

    name: str
    profile_dir: str
    tcp_port: int = 0  # 0 binds an ephemeral port (tests, bench)
    udp_port: int = 0
    high_water: int = 5000  # journal lag (lines) that pauses journalling
    buffer_capacity: int = 2000  # ingress lines held before shedding
    lateness: float = DEFAULT_LATENESS
    checkpoint_every: int = 2000

    def __post_init__(self) -> None:
        validate_tenant_name(self.name)
        if self.high_water < 1 or self.buffer_capacity < 1:
            raise ValueError("high_water and buffer_capacity must be positive")


@dataclass(frozen=True)
class ServiceConfig:
    """The whole service: tenants plus supervisor policy."""

    tenants: List[TenantConfig]
    state_dir: str
    host: str = "127.0.0.1"
    status_port: Optional[int] = None  # None disables the status server
    seed: int = 2013
    heartbeat_interval: float = 0.2
    poll_interval: float = 0.05
    watchdog_timeout: float = 10.0
    restart_budget: int = 3
    backoff_base: float = 0.25
    backoff_cap: float = 5.0

    def __post_init__(self) -> None:
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "ServiceConfig":
        """Build a config from a JSON document (the CLI's input format)."""
        tenants = [TenantConfig(**raw) for raw in document.get("tenants", [])]
        fields = {
            key: value
            for key, value in document.items()
            if key != "tenants"
        }
        return cls(tenants=tenants, **fields)


@dataclass
class _Connection:
    """One accepted TCP connection and its per-connection decoder."""

    sock: socket.socket
    runtime: "_TenantRuntime"
    decoder: TcpFrameDecoder = field(default_factory=TcpFrameDecoder)


class _TenantRuntime:
    """Supervisor-side state of one tenant."""

    def __init__(self, config: TenantConfig, state_dir: Path) -> None:
        self.config = config
        self.state_dir = state_dir
        self.buffer = BoundedLineBuffer(config.buffer_capacity)
        self.ledger = IngestReport()  # frontend: framing + backpressure
        self.received_lines = 0  # decoded lines that reached the buffer
        self.journal_lines = 0
        self.journal_bytes = 0
        self.journal_handle: Optional[Any] = None
        self.process: Optional[multiprocessing.Process] = None
        self.state = STATE_STOPPED
        self.restarts = 0
        self.next_restart = 0.0
        self.last_seq = -1
        self.last_seq_change = 0.0
        self.chaos_knobs: Dict[str, Any] = {}  # one-shot, first spawn only
        self.tcp_socket: Optional[socket.socket] = None
        self.udp_socket: Optional[socket.socket] = None
        self.tcp_port = config.tcp_port
        self.udp_port = config.udp_port
        self.journal_path = state_dir / "journal.log"
        self.cached_lines_seen = 0  # refreshed on each watchdog tick

    def journal_lag(self, lines_seen: int) -> int:
        return max(0, self.journal_lines - lines_seen)


class Service:
    """The supervised multi-tenant ingestion daemon.

    ``start()`` binds the sockets, spawns the workers, and runs the
    event loop in a background thread; ``stop()`` drains everything and
    returns the per-tenant final documents.  All timing flows through
    the injected :class:`~repro.service.clock.Clock`.
    """

    def __init__(
        self, config: ServiceConfig, *, clock: Optional[Clock] = None
    ) -> None:
        self.config = config
        self.clock = clock if clock is not None else Clock()
        state_root = Path(config.state_dir)
        self.tenants: Dict[str, _TenantRuntime] = {
            tenant.name: _TenantRuntime(tenant, state_root / tenant.name)
            for tenant in config.tenants
        }
        self._selector: Optional[selectors.BaseSelector] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_requested = False
        self._started = False
        self._status_server: Optional[Any] = None
        self.status_port: Optional[int] = None
        # Heartbeats are files; reading them every select tick for every
        # tenant would dominate a small machine.  The watchdog (which
        # also refreshes the cached worker progress the pump uses) runs
        # on its own, coarser cadence.
        self._watchdog_interval = min(0.25, self.config.watchdog_timeout / 4)
        self._last_watchdog = -self._watchdog_interval

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._selector = selectors.DefaultSelector()
        for runtime in self.tenants.values():
            self._start_tenant(runtime)
        if self.config.status_port is not None:
            from repro.service.status import start_status_server

            self._status_server, self.status_port = start_status_server(
                self, self.config.host, self.config.status_port
            )
        self._thread = threading.Thread(
            target=self._loop, name="repro-service-loop", daemon=True
        )
        self._thread.start()

    def _start_tenant(self, runtime: _TenantRuntime) -> None:
        runtime.state_dir.mkdir(parents=True, exist_ok=True)
        # A previous run's control files would instantly stop or confuse
        # the new worker; the journal and checkpoint stay — they are the
        # durable state this run resumes from.
        for leftover in (STOP_FILE, HEARTBEAT_FILE, REPORT_FILE):
            path = runtime.state_dir / leftover
            if path.exists():
                path.unlink()
        if runtime.journal_path.exists():
            existing = runtime.journal_path.read_bytes()
            runtime.journal_bytes = len(existing)
            runtime.journal_lines = existing.count(b"\n")
        runtime.journal_handle = open(runtime.journal_path, "ab")

        host = self.config.host
        tcp = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        tcp.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        tcp.bind((host, runtime.config.tcp_port))
        tcp.listen(64)
        tcp.setblocking(False)
        runtime.tcp_socket = tcp
        runtime.tcp_port = tcp.getsockname()[1]
        self._selector.register(tcp, selectors.EVENT_READ, ("accept", runtime))

        udp = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        udp.bind((host, runtime.config.udp_port))
        udp.setblocking(False)
        runtime.udp_socket = udp
        runtime.udp_port = udp.getsockname()[1]
        self._selector.register(udp, selectors.EVENT_READ, ("udp", runtime))

        self._spawn_worker(runtime)

    def _worker_config(self, runtime: _TenantRuntime) -> Dict[str, Any]:
        config = {
            "tenant": runtime.config.name,
            "profile_dir": runtime.config.profile_dir,
            "state_dir": str(runtime.state_dir),
            "lateness": runtime.config.lateness,
            "checkpoint_every": runtime.config.checkpoint_every,
            "heartbeat_interval": self.config.heartbeat_interval,
            "poll_interval": self.config.poll_interval,
        }
        config.update(runtime.chaos_knobs)
        runtime.chaos_knobs = {}  # knobs fire once; restarts run clean
        return config

    def _spawn_worker(self, runtime: _TenantRuntime) -> None:
        process = multiprocessing.Process(  # reprolint: dispatch
            target=tenant_worker_main,
            args=(self._worker_config(runtime),),
            daemon=True,
        )
        process.start()
        runtime.process = process
        runtime.state = STATE_RUNNING
        runtime.last_seq = -1
        runtime.last_seq_change = self.clock.now()

    # ------------------------------------------------------------ main loop
    def _loop(self) -> None:
        while not self._stop_requested:
            events = self._selector.select(timeout=self.config.poll_interval)
            for key, _ in events:
                kind, payload = key.data
                if kind == "accept":
                    self._accept(payload)
                elif kind == "udp":
                    self._read_udp(payload)
                else:
                    self._read_conn(key.fileobj, payload)
            self._pump()
            self._watchdog()

    def _accept(self, runtime: _TenantRuntime) -> None:
        try:
            conn, _addr = runtime.tcp_socket.accept()
        except OSError:
            return
        conn.setblocking(False)
        connection = _Connection(sock=conn, runtime=runtime)
        self._selector.register(
            conn, selectors.EVENT_READ, ("conn", connection)
        )

    def _read_udp(self, runtime: _TenantRuntime) -> None:
        while True:
            try:
                data, _addr = runtime.udp_socket.recvfrom(65536)
            except BlockingIOError:
                return
            except OSError:
                return
            self._ingest(runtime, decode_datagram(data))

    def _read_conn(self, sock: socket.socket, connection: _Connection) -> None:
        try:
            data = sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            data = b""
        if data:
            items = connection.decoder.feed(data)
        else:
            items = connection.decoder.close()
            self._selector.unregister(sock)
            sock.close()
        for item in items:
            if isinstance(item, FrameError):
                connection.runtime.ledger.record(
                    CHANNEL_SERVICE, item.reason, sample=item.sample
                )
            else:
                self._ingest(connection.runtime, item)

    def _ingest(self, runtime: _TenantRuntime, line: str) -> None:
        if not line:
            return
        runtime.received_lines += 1
        for evicted in runtime.buffer.push(line):
            runtime.ledger.record(
                CHANNEL_SERVICE, REASON_BACKPRESSURE, sample=evicted
            )

    def _pump(self) -> None:
        for runtime in self.tenants.values():
            if not len(runtime.buffer):
                continue
            lag = runtime.journal_lag(runtime.cached_lines_seen)
            room = runtime.config.high_water - lag
            if room <= 0:
                continue  # worker is drowning; let the buffer absorb/shed
            self._journal(runtime, runtime.buffer.drain(min(room, _PUMP_BATCH)))

    def _journal(self, runtime: _TenantRuntime, lines: List[str]) -> None:
        if not lines:
            return
        payload = b"".join(
            line.encode("utf-8", errors="replace") + b"\n" for line in lines
        )
        runtime.journal_handle.write(payload)
        runtime.journal_handle.flush()
        runtime.journal_lines += len(lines)
        runtime.journal_bytes += len(payload)

    # ------------------------------------------------------------- watchdog
    def _watchdog(self) -> None:
        now = self.clock.now()
        if now - self._last_watchdog < self._watchdog_interval:
            return
        self._last_watchdog = now
        for runtime in self.tenants.values():
            if runtime.state == STATE_BACKOFF:
                if now >= runtime.next_restart:
                    self._spawn_worker(runtime)
                continue
            if runtime.state != STATE_RUNNING:
                continue
            heartbeat = read_heartbeat(runtime.state_dir)
            if heartbeat is not None:
                runtime.cached_lines_seen = int(heartbeat.get("lines_seen", 0))
            process = runtime.process
            if process is not None and process.exitcode is not None:
                self._schedule_restart(runtime, f"exited {process.exitcode}")
                continue
            if heartbeat is not None and heartbeat["seq"] != runtime.last_seq:
                runtime.last_seq = heartbeat["seq"]
                runtime.last_seq_change = now
            elif now - runtime.last_seq_change > self.config.watchdog_timeout:
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(timeout=5.0)
                self._schedule_restart(runtime, "heartbeat stalled")

    def _schedule_restart(self, runtime: _TenantRuntime, cause: str) -> None:
        runtime.restarts += 1
        if runtime.restarts > self.config.restart_budget:
            runtime.state = STATE_FAILED
            runtime.ledger.record(
                CHANNEL_SERVICE,
                "restart-budget-exhausted",
                sample=f"{cause}; {runtime.restarts - 1} restarts used",
            )
            return
        runtime.state = STATE_BACKOFF
        runtime.next_restart = self.clock.now() + restart_backoff(
            self.config.seed,
            runtime.config.name,
            runtime.restarts,
            base=self.config.backoff_base,
            cap=self.config.backoff_cap,
        )

    # --------------------------------------------------------------- status
    def status(self) -> Dict[str, Any]:
        """Per-tenant health, assembled from live supervisor state and
        each worker's last heartbeat (the status endpoint's document)."""
        tenants: Dict[str, Any] = {}
        for name, runtime in sorted(self.tenants.items()):
            heartbeat = read_heartbeat(runtime.state_dir) or {}
            lines_seen = int(heartbeat.get("lines_seen", 0))
            tenants[name] = {
                "state": runtime.state,
                "tcp_port": runtime.tcp_port,
                "udp_port": runtime.udp_port,
                "received": runtime.received_lines,
                "journal_lines": runtime.journal_lines,
                "journal_bytes": runtime.journal_bytes,
                "queue_depth": len(runtime.buffer)
                + runtime.journal_lag(lines_seen),
                "lag_lines": runtime.journal_lag(lines_seen),
                "buffered": len(runtime.buffer),
                "shed": runtime.buffer.shed,
                "restarts": runtime.restarts,
                "frontend_dropped": runtime.ledger.dropped(),
                "worker": {
                    "lines_seen": lines_seen,
                    "events_consumed": heartbeat.get("events_consumed", 0),
                    "watermark": heartbeat.get("watermark"),
                    "dropped": heartbeat.get("dropped", 0),
                    "replaying": heartbeat.get("replaying", False),
                    "draining": heartbeat.get("draining", False),
                },
            }
        return {"tenants": tenants}

    # ----------------------------------------------------------------- stop
    def stop(self, *, drain_timeout: float = 60.0) -> Dict[str, Any]:
        """Drain and shut down; returns the per-tenant final documents.

        The sequence mirrors what correctness needs: stop accepting,
        flush every buffered line to the journal (backpressure no longer
        applies — the journal is durable and the flood is over), ask
        each worker to drain via its stop marker, and collect the final
        report each worker writes after finishing its engine.
        """
        if not self._started:
            raise RuntimeError("service never started")
        self._stop_requested = True
        if self._thread is not None:
            self._thread.join(timeout=drain_timeout)

        # Close transport: listening sockets, then every open connection
        # (torn in-flight frames are attributed by the decoder's close).
        for key in list(self._selector.get_map().values()):
            kind, payload = key.data
            if kind == "conn":
                for item in payload.decoder.close():
                    if isinstance(item, FrameError):
                        payload.runtime.ledger.record(
                            CHANNEL_SERVICE, item.reason, sample=item.sample
                        )
                    else:
                        self._ingest(payload.runtime, item)
            self._selector.unregister(key.fileobj)
            key.fileobj.close()
        self._selector.close()

        results: Dict[str, Any] = {}
        deadline = self.clock.now() + drain_timeout
        for name, runtime in sorted(self.tenants.items()):
            self._journal(runtime, runtime.buffer.drain(len(runtime.buffer)))
            runtime.journal_handle.close()
            touch_marker(runtime.state_dir / STOP_FILE)
            # A tenant waiting out a backoff still owns journal bytes no
            # worker will otherwise consume — give it one drain worker.
            if runtime.state == STATE_BACKOFF:
                self._spawn_worker(runtime)
            process = runtime.process
            if process is not None and runtime.state == STATE_RUNNING:
                process.join(timeout=max(0.1, deadline - self.clock.now()))
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5.0)
                    runtime.state = STATE_FAILED
                else:
                    runtime.state = STATE_STOPPED
            results[name] = {
                "state": runtime.state,
                "restarts": runtime.restarts,
                "received": runtime.received_lines,
                "journal_lines": runtime.journal_lines,
                "shed": runtime.buffer.shed,
                "frontend_ledger": runtime.ledger.to_json(),
                "frontend_dropped": runtime.ledger.dropped(),
                "report": read_report(runtime.state_dir),
            }
        if self._status_server is not None:
            self._status_server.shutdown()
            self._status_server.server_close()
        return results


def restart_backoff(
    seed: int, tenant: str, attempt: int, *, base: float, cap: float
) -> float:
    """Deterministic seeded exponential backoff for restart ``attempt``.

    Doubling per attempt, capped, with ±25% seeded jitter so a fleet of
    tenants felled by one cause does not restart in lockstep — yet every
    delay is a pure function of ``(seed, tenant, attempt)``, so a chaos
    run replays its exact restart schedule.

    >>> a = restart_backoff(7, "acme", 1, base=0.25, cap=5.0)
    >>> a == restart_backoff(7, "acme", 1, base=0.25, cap=5.0)
    True
    >>> restart_backoff(7, "acme", 9, base=0.25, cap=5.0) <= 5.0 * 1.25
    True
    """
    if attempt < 1:
        raise ValueError("restart attempts are 1-based")
    rng = child_rng(seed, f"service:{tenant}:restart:{attempt}")
    delay = min(cap, base * (2.0 ** (attempt - 1)))
    return delay * (0.75 + 0.5 * rng.random())
