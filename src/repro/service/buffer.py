"""The bounded ingress buffer between the sockets and a tenant's journal.

Received lines queue here until the journal pump writes them out.  Under
normal load the buffer drains immediately; when a tenant's worker lags
past its high-water mark the pump pauses journalling for that tenant and
lines accumulate here instead — and once the buffer itself is full, the
**oldest** queued lines are shed (§ graceful degradation).  Oldest-first
is deliberate: under sustained overload the paper's collector loses the
oldest unprocessed messages to its finite socket buffers, and shedding
old lines keeps the tenant's view fresh rather than ever further behind.

Shedding never happens silently: :meth:`BoundedLineBuffer.push` returns
the lines it evicted so the caller records each one in the tenant's
:class:`~repro.faults.ledger.IngestReport` with the typed
``backpressure`` reason.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

#: Ledger reason for lines shed at the ingress buffer.
REASON_BACKPRESSURE = "backpressure"


class BoundedLineBuffer:
    """A FIFO of received lines with a hard capacity and oldest-first shed."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be at least 1")
        self.capacity = capacity
        self._lines: Deque[str] = deque()
        self.pushed = 0
        self.shed = 0

    def __len__(self) -> int:
        return len(self._lines)

    def push(self, line: str) -> List[str]:
        """Queue one line; returns the (oldest) lines shed to make room."""
        self._lines.append(line)
        self.pushed += 1
        evicted: List[str] = []
        while len(self._lines) > self.capacity:
            evicted.append(self._lines.popleft())
            self.shed += 1
        return evicted

    def drain(self, limit: int) -> List[str]:
        """Pop up to ``limit`` oldest lines for journalling, in order."""
        if limit < 0:
            raise ValueError("drain limit must be non-negative")
        count = min(limit, len(self._lines))
        return [self._lines.popleft() for _ in range(count)]
