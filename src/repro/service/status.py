"""The service's health surface: an HTTP status endpoint and its client.

`GET /status` returns the supervisor's :meth:`Service.status` document
as JSON — per-tenant lifecycle state, queue depth, worker lag, restart
and shed counters, and the worker's own last heartbeat.  Everything is
stdlib (:mod:`http.server` in a daemon thread); the endpoint serves
monitoring dashboards, ``repro serve --status``, and the load bench.

The server binds the supervisor's host; the document is assembled fresh
per request from supervisor memory and heartbeat files, so it is always
as current as the last watchdog tick.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Tuple

from repro.core.report import render_table


def start_status_server(
    service: "Service", host: str, port: int  # noqa: F821
) -> Tuple[ThreadingHTTPServer, int]:
    """Serve ``service.status()`` at ``/status``; returns (server, port)."""

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 (http.server's contract)
            if self.path in ("/", "/status", "/status/"):
                body = json.dumps(service.status()).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self.send_error(404)

        def log_message(self, format: str, *args: Any) -> None:
            pass  # health polls are not log-worthy

    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-status", daemon=True
    )
    thread.start()
    return server, server.server_address[1]


def fetch_status(url: str, *, timeout: float = 5.0) -> Dict[str, Any]:
    """Fetch and decode a status document from a running service."""
    if not url.endswith("/status"):
        url = url.rstrip("/") + "/status"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def render_status(document: Dict[str, Any]) -> str:
    """One table row per tenant, for ``repro serve --status``."""
    rows = []
    for name, tenant in sorted(document.get("tenants", {}).items()):
        worker = tenant.get("worker", {})
        rows.append(
            [
                name,
                tenant.get("state", "?"),
                str(tenant.get("received", 0)),
                str(tenant.get("queue_depth", 0)),
                str(worker.get("events_consumed", 0)),
                str(tenant.get("restarts", 0)),
                str(tenant.get("shed", 0)),
                str(
                    int(tenant.get("frontend_dropped", 0))
                    + int(worker.get("dropped", 0))
                ),
            ]
        )
    return render_table(
        [
            "Tenant",
            "State",
            "Received",
            "Queue",
            "Events",
            "Restarts",
            "Shed",
            "Dropped",
        ],
        rows,
        title="Service status",
    )
