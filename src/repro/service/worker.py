"""The per-tenant worker: journal lines in, analysis state out.

One worker process serves one tenant.  Its input is the tenant's
append-only **journal** — the raw syslog lines the frontend delivered,
in arrival order — which it tails with
:class:`~repro.stream.sources.LogTailer`.  Each complete line runs
through the :class:`TenantPipeline`:

1. lenient parse (:func:`~repro.syslog.message.try_parse_syslog_line`,
   RFC 3164 with RFC 5424 fallback) — malformed lines land in the drop
   ledger, never crash the tenant;
2. classification against the tenant's mined inventory
   (:func:`~repro.core.extract_syslog.classify_entry`);
3. event-time re-ordering through a
   :class:`~repro.stream.sources.ReorderBuffer` bounded by the
   transport's maximum delay — arrivals later than the bound are
   ledgered (``late-arrival``), not delivered out of order;
4. delivery into a :class:`~repro.stream.engine.StreamEngine`.

**Failover is replay.**  The journal is the single source of truth: the
pipeline's entire derived state is a deterministic function of the
journal bytes, because the reorder buffer's release sequence is
prefix-stable and the engine consumes released events in order.  A
restarted worker therefore restores the engine from its last checkpoint,
re-tails the journal from byte zero, and skips the first
``events_consumed`` *released* events — the exact kill-anywhere resume
arithmetic the stream engine's checkpoint tests prove — and finishes
byte-identical to a never-killed run.  The ledger and year-resolution
context are rebuilt in full by the same replay, so nothing about a
restart is visible in the final report.

The module-level :func:`tenant_worker_main` is the process entry point
the supervisor spawns; :func:`replay_lines` is the in-process clean-run
comparator the chaos scenarios and tests check identity against.
"""

from __future__ import annotations

import os
import signal
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.extract_syslog import classify_entry
from repro.faults.ledger import (
    CHANNEL_CHECKPOINT,
    CHANNEL_SERVICE,
    CHANNEL_SYSLOG,
    IngestReport,
)
from repro.service.clock import Clock
from repro.service.files import read_json, write_json_atomic
from repro.service.profile import TenantContext, load_tenant_context
from repro.stream.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.engine import StreamEngine, StreamOptions, StreamResult
from repro.stream.sources import (
    SYSLOG_CHANNEL,
    LogTailer,
    ReorderBuffer,
    StreamEvent,
)
from repro.syslog.cisco import parse_cisco_body
from repro.syslog.collector import CollectedEntry
from repro.syslog.message import try_parse_syslog_line

#: Default event-time disorder bound (seconds).  The simulated transport
#: delays a datagram by at most ~9.5 s (spurious retransmit + queueing),
#: so 10 s re-orders every delivery the scenarios produce.
DEFAULT_LATENESS = 10.0

#: Ledger reason for arrivals later than the reorder bound.
REASON_LATE_ARRIVAL = "late-arrival"
#: Ledger reason for a journal whose final line has no newline — the
#: frontend writer died mid-append and the fragment is genuinely torn.
REASON_TORN_JOURNAL = "torn-journal-line"
#: Ledger reason for a checkpoint the worker could not restore from.
REASON_BAD_CHECKPOINT = "corrupt-checkpoint"

#: File names inside a tenant's state directory.
JOURNAL_FILE = "journal.log"
CHECKPOINT_FILE = "checkpoint.json"
HEARTBEAT_FILE = "heartbeat.json"
REPORT_FILE = "report.json"
STOP_FILE = "stop"


class TenantPipeline:
    """Raw journal lines to analysis engine, deterministically.

    The pipeline is pure in the journal content: feeding the same lines
    in the same order always produces the same engine state, ledger, and
    final result.  ``engine`` may be a checkpoint-restored engine, in
    which case the pipeline skips the first ``engine.events_consumed``
    released events during replay — the caller re-feeds the journal from
    byte zero and the prefix-stable release order guarantees the skipped
    prefix is exactly what the engine already consumed.
    """

    def __init__(
        self,
        context: TenantContext,
        *,
        options: Optional[StreamOptions] = None,
        lateness: float = DEFAULT_LATENESS,
        report: Optional[IngestReport] = None,
        engine: Optional[StreamEngine] = None,
    ) -> None:
        self.context = context
        self.report = report if report is not None else IngestReport()
        if engine is None:
            engine = StreamEngine(
                context.resolver,
                context.analysis_start,
                context.horizon_end,
                context.listener_outages,
                context.tickets,
                options,
            )
        self.engine = engine
        self.reorder = ReorderBuffer(lateness)
        self.lines_seen = 0
        self.latest = 0.0
        self._skip = engine.events_consumed

    @property
    def replaying(self) -> bool:
        """Still fast-forwarding through already-consumed events?"""
        return self._skip > 0

    def feed_line(self, line: str) -> None:
        """Consume one complete journal line."""
        self.lines_seen += 1
        if not line.strip():
            return
        message, reason = try_parse_syslog_line(line, after=self.latest)
        if message is None:
            self.report.record(
                CHANNEL_SYSLOG,
                reason or "malformed-line",
                index=self.lines_seen,
                sample=line,
            )
            return
        self.latest = max(self.latest, message.timestamp)
        entry = CollectedEntry(
            generated_time=message.timestamp,
            hostname=message.hostname,
            raw_body=message.body,
            entry=parse_cisco_body(message.hostname, message.body),
        )
        kind, link_message = classify_entry(entry, self.context.resolver)
        time = (
            link_message.time
            if link_message is not None
            else entry.generated_time
        )
        event = StreamEvent(time, SYSLOG_CHANNEL, kind, link_message)
        try:
            released = self.reorder.push(event)
        except ValueError:
            # The transport bound was violated; delivering the event
            # would break event-time order, so it is shed — attributed,
            # exactly like any other loss.
            self.report.record(
                CHANNEL_SERVICE,
                REASON_LATE_ARRIVAL,
                index=self.lines_seen,
                sample=line,
            )
            return
        for item in released:
            self._deliver(item)

    def _deliver(self, event: StreamEvent) -> None:
        if self._skip > 0:
            self._skip -= 1
            return
        self.engine.process(event)

    def finish(self) -> StreamResult:
        """Flush the reorder buffer and finalise the engine."""
        for event in self.reorder.flush():
            self._deliver(event)
        return self.engine.finish()


def replay_lines(
    context: TenantContext,
    lines: List[str],
    *,
    options: Optional[StreamOptions] = None,
    lateness: float = DEFAULT_LATENESS,
) -> Tuple[StreamResult, IngestReport]:
    """One-shot clean run: the lines straight through a fresh pipeline.

    This is the comparator every service identity check measures against:
    a live tenant — restarted, flooded, or fed torn frames — must end
    with exactly this result for the lines its journal actually holds.
    """
    pipeline = TenantPipeline(context, options=options, lateness=lateness)
    for line in lines:
        pipeline.feed_line(line)
    return pipeline.finish(), pipeline.report


def _ledger_document(report: IngestReport) -> Dict[str, Any]:
    return report.to_json()


def _heartbeat_document(
    *,
    seq: int,
    pipeline: TenantPipeline,
    tailer: LogTailer,
    draining: bool,
) -> Dict[str, Any]:
    engine = pipeline.engine
    return {
        "pid": os.getpid(),
        "seq": seq,
        "journal_offset": tailer.offset,
        "pending_bytes": tailer.pending_bytes,
        "lines_seen": pipeline.lines_seen,
        "events_consumed": engine.events_consumed,
        "watermark": None
        if engine.watermark == float("-inf")
        else engine.watermark,
        "replaying": pipeline.replaying,
        "draining": draining,
        "dropped": pipeline.report.dropped(),
        "ledger": _ledger_document(pipeline.report),
    }


def run_worker(config: Dict[str, Any], *, clock: Optional[Clock] = None) -> int:
    """The worker loop (separated from the entry point for testing).

    ``config`` is a plain JSON-able dict (it crosses a process spawn):

    ``tenant``, ``profile_dir``, ``state_dir`` — identity and paths;
    ``lateness``, ``checkpoint_every``, ``heartbeat_interval``,
    ``poll_interval`` — knobs; ``crash_after_lines`` /
    ``hang_after_lines`` — chaos hooks (see below), absent in normal
    operation.

    Returns a process exit code: 0 after a clean drain, 1 when the
    profile cannot be loaded.
    """
    clock = clock if clock is not None else Clock()
    tenant = config["tenant"]
    state_dir = Path(config["state_dir"])
    checkpoint_path = state_dir / CHECKPOINT_FILE
    stop_path = state_dir / STOP_FILE
    checkpoint_every = int(config.get("checkpoint_every", 2000))
    heartbeat_interval = float(config.get("heartbeat_interval", 0.2))
    poll_interval = float(config.get("poll_interval", 0.05))
    crash_after = config.get("crash_after_lines")
    hang_after = config.get("hang_after_lines")

    try:
        context = load_tenant_context(tenant, config["profile_dir"])
    except (OSError, ValueError, KeyError) as error:
        write_json_atomic(
            state_dir / REPORT_FILE,
            {"tenant": tenant, "error": f"profile unusable: {error}"},
        )
        return 1

    report = IngestReport()
    engine: Optional[StreamEngine] = None
    if checkpoint_path.exists():
        try:
            state = load_checkpoint(str(checkpoint_path))
            engine = StreamEngine.restore(
                state,
                context.resolver,
                context.listener_outages,
                context.tickets,
            )
        except CheckpointError as error:
            # A corrupt checkpoint is recoverable damage, not death: the
            # journal replays from byte zero into a fresh engine.  The
            # fallback is recorded so the degradation is visible.
            report.record(
                CHANNEL_CHECKPOINT, REASON_BAD_CHECKPOINT, sample=str(error)
            )
            engine = None

    pipeline = TenantPipeline(
        context,
        lateness=float(config.get("lateness", DEFAULT_LATENESS)),
        report=report,
        engine=engine,
    )
    tailer = LogTailer(state_dir / JOURNAL_FILE)
    seq = 0
    last_beat = -heartbeat_interval  # beat immediately on entry
    last_checkpoint_events = pipeline.engine.events_consumed

    while True:
        lines = tailer.poll()
        for line in lines:
            pipeline.feed_line(line)
            if crash_after is not None and pipeline.lines_seen >= crash_after:
                # Chaos hook: simulate an abrupt worker death (no flush,
                # no checkpoint, no heartbeat) at an arbitrary point.
                os._exit(13)
            if hang_after is not None and pipeline.lines_seen >= hang_after:
                # Chaos hook: simulate a wedged worker — alive but
                # silent, which only the heartbeat watchdog can catch.
                while True:
                    clock.sleep(3600.0)
            if (
                not pipeline.replaying
                and pipeline.engine.events_consumed - last_checkpoint_events
                >= checkpoint_every
            ):
                save_checkpoint(str(checkpoint_path), pipeline.engine)
                last_checkpoint_events = pipeline.engine.events_consumed

        now = clock.now()
        if now - last_beat >= heartbeat_interval:
            seq += 1
            write_json_atomic(
                state_dir / HEARTBEAT_FILE,
                _heartbeat_document(
                    seq=seq, pipeline=pipeline, tailer=tailer, draining=False
                ),
            )
            last_beat = now

        if stop_path.exists() and not lines:
            break
        if not lines:
            clock.sleep(poll_interval)

    # Drain: the frontend has stopped writing.  One final poll closes
    # the race between the stop marker and the last journal append, then
    # a torn final line (frontend died mid-write) is attributed.
    for line in tailer.poll():
        pipeline.feed_line(line)
    fragment = tailer.close_partial()
    if fragment is not None:
        report.record(CHANNEL_SERVICE, REASON_TORN_JOURNAL, sample=fragment)

    result = pipeline.finish()
    from repro.faults.chaos import stream_signature

    write_json_atomic(
        state_dir / REPORT_FILE,
        {
            "tenant": tenant,
            "signature": stream_signature(result),
            "events": result.counters["events"],
            "lines_seen": pipeline.lines_seen,
            "journal_offset": tailer.offset,
            "syslog_failures": len(result.syslog_failures),
            "flap_episodes": len(result.flap_episodes),
            "dropped": report.dropped(),
            "ledger": _ledger_document(report),
        },
    )
    seq += 1
    write_json_atomic(
        state_dir / HEARTBEAT_FILE,
        _heartbeat_document(
            seq=seq, pipeline=pipeline, tailer=tailer, draining=True
        ),
    )
    return 0


def tenant_worker_main(config: Dict[str, Any]) -> None:
    """Process entry point for one tenant worker (picklable, top level)."""
    # A terminal Ctrl-C signals the whole foreground process group; the
    # worker must not die mid-line on it.  Graceful shutdown is the
    # supervisor's job (the stop file), so the worker ignores SIGINT
    # and drains exactly as it would under `service.stop()`.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    sys.exit(run_worker(config))


def read_heartbeat(state_dir: "str | Path") -> Optional[Dict[str, Any]]:
    """The tenant's last heartbeat document, or ``None``."""
    return read_json(Path(state_dir) / HEARTBEAT_FILE)


def read_report(state_dir: "str | Path") -> Optional[Dict[str, Any]]:
    """The tenant's final drain report document, or ``None``."""
    return read_json(Path(state_dir) / REPORT_FILE)
