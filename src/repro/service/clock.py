"""Wall-clock access for the always-on service, in one place.

Everything under :mod:`repro.service` that needs real time — heartbeat
ages, watchdog timeouts, backoff sleeps, bench latency stamps — goes
through a :class:`Clock` so (a) deterministic tests can substitute a
:class:`FakeClock` and drive timeouts without sleeping, and (b) the
reprolint determinism rules (D001/D002) stay meaningful over the rest of
the service: wall-clock reads are *liveness* inputs only, never inputs
to analysis results, and confining them here makes that auditable.  The
two suppressions below are the service's entire wall-clock surface.
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic time plus sleep; the service's only liveness clock."""

    def now(self) -> float:
        """Seconds on a monotonic axis (not wall-calendar time)."""
        return time.monotonic()  # reprolint: disable=D001 -- service liveness (heartbeat ages, timeouts); never feeds analysis results

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)  # reprolint: disable=D001 -- service pacing (watchdog poll, backoff); never feeds analysis results


class FakeClock(Clock):
    """A manually advanced clock for deterministic service tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clocks only move forward")
        self._now += seconds
