"""The always-on multi-tenant ingestion service (``repro serve``).

The paper's collector is not a batch job: routers stream RFC 3164
syslog at a central box that must stay up through worker crashes, load
floods, and damaged transport.  This package is that operational layer
over the existing analysis — live UDP/TCP ingestion (RFC 6587 framing),
per-tenant journals feeding supervised
:class:`~repro.stream.engine.StreamEngine` workers, checkpoint-backed
failover with byte-identical resume, and ledger-attributed graceful
degradation.  See ``docs/service.md``.
"""

from repro.service.buffer import REASON_BACKPRESSURE, BoundedLineBuffer
from repro.service.clock import Clock, FakeClock
from repro.service.framing import (
    FRAME_REASONS,
    MAX_FRAME_BYTES,
    FrameError,
    TcpFrameDecoder,
    decode_datagram,
    encode_lf_delimited,
    encode_octet_counted,
)
from repro.service.profile import (
    TenantContext,
    load_tenant_context,
    validate_tenant_name,
)
from repro.service.status import fetch_status, render_status
from repro.service.supervisor import (
    Service,
    ServiceConfig,
    TenantConfig,
    restart_backoff,
)
from repro.service.worker import (
    DEFAULT_LATENESS,
    REASON_LATE_ARRIVAL,
    TenantPipeline,
    replay_lines,
    run_worker,
    tenant_worker_main,
)

__all__ = [
    "BoundedLineBuffer",
    "Clock",
    "DEFAULT_LATENESS",
    "FRAME_REASONS",
    "FakeClock",
    "FrameError",
    "MAX_FRAME_BYTES",
    "REASON_BACKPRESSURE",
    "REASON_LATE_ARRIVAL",
    "Service",
    "ServiceConfig",
    "TcpFrameDecoder",
    "TenantConfig",
    "TenantContext",
    "TenantPipeline",
    "decode_datagram",
    "encode_lf_delimited",
    "encode_octet_counted",
    "fetch_status",
    "load_tenant_context",
    "render_status",
    "replay_lines",
    "restart_backoff",
    "run_worker",
    "tenant_worker_main",
    "validate_tenant_name",
]
