"""Simulated routers: protocol state, syslog emission, LSP flooding.

A :class:`SimulatedRouter` owns one router's IS-IS view: which links toward
each neighbor are currently up (an *IS reachability entry exists while at
least one parallel link is up* — the multi-link collapse of §3.4) and which
connected /31 prefixes are advertised.  Injected events mutate that state;
the router responds like IOS does:

* state changes mark the LSP dirty and schedule a regeneration, subject to
  an **LSP generation interval** — changes arriving faster than the
  interval coalesce into one flood, so a sub-interval down/up round trip can
  produce an LSP identical to the previous one (a flap the IS-IS channel
  never sees);
* every flood carries a fresh sequence number, so the listener's LSDB
  accepts it even when the content is unchanged.

Syslog emission is driven by the effects layer, not the router, because the
message mix depends on failure cause and per-end detection mode.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set, Tuple

from repro.isis.lsp import LinkStatePacket, LspId
from repro.isis.tlv import (
    AreaAddressesTlv,
    DynamicHostnameTlv,
    ExtendedIpReachabilityTlv,
    ExtendedIsReachabilityTlv,
    IpPrefix,
    IsNeighbor,
    ProtocolsSupportedTlv,
    Tlv,
)
from repro.simulation.engine import EventQueue
from repro.syslog.cisco import CiscoFlavor
from repro.topology.model import Network, Router

#: Entries per TLV instance keeping the value under 255 octets.
_IS_ENTRIES_PER_TLV = 23  # 11 octets each
_IP_ENTRIES_PER_TLV = 28  # at most 9 octets each

FloodCallback = Callable[[float, "SimulatedRouter", LinkStatePacket], None]


def _chunk(seq: list, size: int) -> List[list]:
    return [seq[i : i + size] for i in range(0, len(seq), size)]


class SimulatedRouter:
    """One router's IS-IS advertisement state and flooding behaviour."""

    def __init__(
        self,
        router: Router,
        network: Network,
        engine: EventQueue,
        flood_callback: FloodCallback,
        lsp_generation_interval: float = 5.0,
        initial_flood_delay: float = 0.05,
    ) -> None:
        self.router = router
        self.name = router.name
        self.system_id = router.system_id
        self.flavor = CiscoFlavor.IOS_XR if router.is_core else CiscoFlavor.IOS
        self._engine = engine
        self._flood_callback = flood_callback
        self.lsp_generation_interval = lsp_generation_interval
        self.initial_flood_delay = initial_flood_delay

        # Static per-link facts.
        self._link_neighbor: Dict[str, str] = {}  # link_id -> neighbor system id
        self._link_metric: Dict[str, int] = {}
        self._link_prefix: Dict[str, Tuple[int, int]] = {}
        for link in network.links_of(router.name):
            neighbor = network.routers[link.other_end(router.name)]
            self._link_neighbor[link.link_id] = neighbor.system_id
            self._link_metric[link.link_id] = link.metric
            self._link_prefix[link.link_id] = (link.subnet, 31)

        # Dynamic advertisement state: initially everything is up.
        self._up_links_by_neighbor: Dict[str, Set[str]] = {}
        for link_id, neighbor_id in self._link_neighbor.items():
            self._up_links_by_neighbor.setdefault(neighbor_id, set()).add(link_id)
        self._advertised_prefixes: Set[Tuple[int, int]] = set(
            self._link_prefix.values()
        )

        self._sequence_number = 0
        self._last_flood_time = float("-inf")
        self._flood_pending = False
        self.flood_count = 0

    # ------------------------------------------------------------- queries
    def neighbor_of(self, link_id: str) -> str:
        return self._link_neighbor[link_id]

    def prefix_of(self, link_id: str) -> Tuple[int, int]:
        return self._link_prefix[link_id]

    def advertises_neighbor(self, neighbor_system_id: str) -> bool:
        return bool(self._up_links_by_neighbor.get(neighbor_system_id))

    def advertises_prefix(self, prefix: Tuple[int, int]) -> bool:
        return prefix in self._advertised_prefixes

    # ---------------------------------------------------- injected events
    def adjacency_down(self, time: float, link_id: str) -> None:
        """The adjacency over ``link_id`` was lost at this end."""
        neighbor_id = self._link_neighbor[link_id]
        up_links = self._up_links_by_neighbor.get(neighbor_id, set())
        if link_id in up_links:
            up_links.discard(link_id)
            # Only the last parallel link's loss changes IS reachability,
            # but the LSP must be regenerated regardless of which: IOS
            # refloods on any adjacency database change.
            self._mark_dirty(time)

    def adjacency_up(self, time: float, link_id: str) -> None:
        """The adjacency over ``link_id`` (re-)reached UP at this end."""
        neighbor_id = self._link_neighbor[link_id]
        up_links = self._up_links_by_neighbor.setdefault(neighbor_id, set())
        if link_id not in up_links:
            up_links.add(link_id)
            self._mark_dirty(time)

    def prefix_down(self, time: float, link_id: str) -> None:
        """The connected /31 of ``link_id`` left the routing table."""
        prefix = self._link_prefix[link_id]
        if prefix in self._advertised_prefixes:
            self._advertised_prefixes.discard(prefix)
            self._mark_dirty(time)

    def prefix_up(self, time: float, link_id: str) -> None:
        """The connected /31 of ``link_id`` returned to the routing table."""
        prefix = self._link_prefix[link_id]
        if prefix not in self._advertised_prefixes:
            self._advertised_prefixes.add(prefix)
            self._mark_dirty(time)

    # ------------------------------------------------------------ flooding
    def _mark_dirty(self, time: float) -> None:
        if self._flood_pending:
            return  # the already-scheduled flood will pick this change up
        flood_time = max(
            time + self.initial_flood_delay,
            self._last_flood_time + self.lsp_generation_interval,
        )
        self._flood_pending = True
        self._engine.schedule(flood_time, self._flood_now)

    def _flood_now(self) -> None:
        self._flood_pending = False
        self.flood(self._engine.now)

    def flood(self, time: float) -> LinkStatePacket:
        """Build and flood the current LSP unconditionally (fresh seqno)."""
        self._sequence_number += 1
        self._last_flood_time = time
        lsp = self.build_lsp()
        self.flood_count += 1
        self._flood_callback(time, self, lsp)
        return lsp

    def build_lsp(self) -> LinkStatePacket:
        """The LSP describing this router's current advertisement state."""
        neighbors: List[IsNeighbor] = []
        for neighbor_id in sorted(self._up_links_by_neighbor):
            up_links = self._up_links_by_neighbor[neighbor_id]
            if not up_links:
                continue
            metric = min(self._link_metric[link_id] for link_id in up_links)
            neighbors.append(IsNeighbor(system_id=neighbor_id, metric=metric))
        prefixes = [
            IpPrefix(prefix=prefix, prefix_length=length, metric=10)
            for prefix, length in sorted(self._advertised_prefixes)
        ]

        tlvs: List[Tlv] = [
            AreaAddressesTlv(areas=(bytes.fromhex("490001"),)),
            ProtocolsSupportedTlv(nlpids=(0xCC,)),
            DynamicHostnameTlv(hostname=self.name),
        ]
        for chunk in _chunk(neighbors, _IS_ENTRIES_PER_TLV):
            tlvs.append(ExtendedIsReachabilityTlv(neighbors=tuple(chunk)))
        for chunk in _chunk(prefixes, _IP_ENTRIES_PER_TLV):
            tlvs.append(ExtendedIpReachabilityTlv(prefixes=tuple(chunk)))

        return LinkStatePacket(
            lsp_id=LspId(self.system_id),
            sequence_number=self._sequence_number,
            remaining_lifetime=1199,
            tlvs=tuple(tlvs),
        )
