"""End-to-end scenario orchestration.

:func:`run_scenario` wires every substrate together and produces a
:class:`~repro.simulation.dataset.Dataset`:

1. generate the CENIC-like topology, render its config archive, and mine the
   archive back into the link inventory;
2. draw each link's ground-truth failure and media-flap history;
3. stand up a :class:`~repro.simulation.router.SimulatedRouter` per router,
   the lossy syslog channel, the flooding model, and the listener host;
4. schedule all observable effects on the event engine and run it over the
   thirteen-month horizon — routers emit syslog datagrams (which the channel
   loses, delays, and duplicates) and flood LSPs (which reach the listener
   unless it is in an outage window, with a post-restart resync after each);
5. derive the NOC ticket archive from ground truth;
6. bundle everything into the dataset.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.simulation.dataset import Dataset, DatasetSummary
from repro.simulation.effects import schedule_failure, schedule_media_flap
from repro.simulation.engine import EventQueue
from repro.simulation.failures import LinkWorkload, generate_link_workload
from repro.simulation.listenerhost import ListenerHost, OutageParameters
from repro.simulation.router import SimulatedRouter
from repro.simulation.workload import WorkloadParameters, cenic_default_workload
from repro.intervals import Interval, IntervalSet
from repro.isis.flooding import FloodingModel
from repro.isis.lsp import LinkStatePacket
from repro.syslog.cisco import CiscoLogEntry
from repro.syslog.collector import SyslogCollector
from repro.syslog.transport import LossyUdpChannel, TransportParameters
from repro.ticketing import TicketParameters, TicketSystem
from repro.topology.cenic import CenicParameters, build_cenic_like_network
from repro.topology.configgen import render_all_configs
from repro.topology.connectivity import unreachable_intervals
from repro.topology.configmine import ConfigArchive, mine_configs
from repro.topology.model import LinkClass
from repro.util.rand import child_rng
from repro.util.timefmt import SECONDS_PER_DAY


@dataclass(frozen=True)
class ScenarioConfig:
    """All knobs of one measurement campaign; the seed fixes everything."""

    seed: int = 2013
    #: Oct 20, 2010 – Nov 11, 2011 is 387 days.
    duration_days: float = 387.0
    #: Failures start only after this warm-up so the listener has seeded its
    #: view of every origin from the initial floods.
    warmup: float = 3600.0
    topology: CenicParameters = field(default_factory=CenicParameters)
    workload: WorkloadParameters = field(default_factory=cenic_default_workload)
    transport: TransportParameters = field(default_factory=TransportParameters)
    outages: OutageParameters = field(default_factory=OutageParameters)
    tickets: TicketParameters = field(default_factory=TicketParameters)
    lsp_generation_interval: float = 5.0
    #: Router the listener peers with; defaults to the first hub.
    listener_attachment: Optional[str] = None
    #: Syslog travels in-band over the measured network: a datagram emitted
    #: while its sender cannot reach the collector is lost with this
    #: probability (occasionally reconvergence races the datagram out).
    inband_drop_probability: float = 0.4
    #: Router the syslog collector sits behind; defaults to the first hub.
    collector_attachment: Optional[str] = None

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValueError("duration must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.warmup >= self.duration_days * SECONDS_PER_DAY:
            raise ValueError("warmup exceeds the horizon")

    @property
    def horizon_end(self) -> float:
        return self.duration_days * SECONDS_PER_DAY


class ScenarioRunner:
    """Builds and runs one scenario; see the module docstring.

    ``run`` draws the stochastic workload; ``run(workloads=...)`` replays a
    caller-supplied failure schedule instead (see
    :mod:`repro.simulation.traces` for trace-driven campaigns).  The
    network a runner will use is available up front via :meth:`network`,
    so workloads can be built against its link IDs.
    """

    def __init__(self, config: ScenarioConfig = ScenarioConfig()) -> None:
        self.config = config
        self._network = None

    def network(self):
        """The (deterministic) network this runner simulates."""
        if self._network is None:
            # Topology follows the scenario seed unless the caller pinned one.
            topology_params = self.config.topology
            if topology_params == CenicParameters():
                topology_params = dataclasses.replace(
                    topology_params, seed=self.config.seed
                )
            self._network = build_cenic_like_network(topology_params)
        return self._network

    def run(self, workloads: Optional[List[LinkWorkload]] = None) -> Dataset:
        config = self.config
        seed = config.seed
        horizon_end = config.horizon_end

        network = self.network()
        configs = render_all_configs(network)
        archive = ConfigArchive()
        for hostname, text in configs.items():
            archive.add(hostname, text)
        inventory = mine_configs(archive)

        engine = EventQueue()

        # --- observation channels -----------------------------------------
        attachment = config.listener_attachment or sorted(
            router.name for router in network.core_routers()
        )[0]
        flooding = FloodingModel(network, attachment, seed=seed)
        listener_host = ListenerHost(
            child_rng(seed, "listener-outages"), 0.0, horizon_end, config.outages
        )
        lsp_records: List[Tuple[float, bytes]] = []

        def on_flood(time: float, router: SimulatedRouter, lsp: LinkStatePacket) -> None:
            raw = lsp.pack()
            arrival = time + flooding.delivery_delay(router.name)

            def deliver() -> None:
                if listener_host.is_online(engine.now):
                    lsp_records.append((engine.now, raw))

            engine.schedule(arrival, deliver)

        # --- workload --------------------------------------------------------
        if workloads is None:
            workloads = []
            for link_id in sorted(network.links):
                link = network.links[link_id]
                profile = (
                    config.workload.core
                    if link.link_class is LinkClass.CORE
                    else config.workload.cpe
                )
                workloads.append(
                    generate_link_workload(
                        link_id,
                        (link.router_a, link.router_b),
                        profile,
                        seed,
                        config.warmup,
                        horizon_end,
                    )
                )
        else:
            for workload in workloads:
                if workload.link_id not in network.links:
                    raise ValueError(
                        f"workload references unknown link {workload.link_id!r}"
                    )

        # --- in-band syslog reachability --------------------------------------
        # Syslog shares fate with the network: while a router cannot reach
        # the collector, its datagrams (usually) never arrive.  Ground-truth
        # failures determine true reachability.
        collector_root = config.collector_attachment or sorted(
            router.name for router in network.core_routers()
        )[0]
        down_by_link_id: Dict[str, IntervalSet] = {}
        for workload in workloads:
            spans = [Interval(f.start, min(f.end, horizon_end)) for f in workload.failures]
            if spans:
                down_by_link_id[workload.link_id] = IntervalSet(spans)
        unreachable = unreachable_intervals(
            network, down_by_link_id, 0.0, horizon_end, root=collector_root
        )

        channel = LossyUdpChannel(child_rng(seed, "syslog-transport"), config.transport)
        inband_rng = child_rng(seed, "syslog-inband")
        syslog_generated = 0
        syslog_inband_lost = 0

        def emit_syslog(time: float, entry: CiscoLogEntry) -> None:
            nonlocal syslog_generated, syslog_inband_lost
            syslog_generated += 1
            if unreachable[entry.router].contains(time) and (
                inband_rng.random() < config.inband_drop_probability
            ):
                syslog_inband_lost += 1
                return
            channel.send(entry.to_syslog(time))

        # --- routers --------------------------------------------------------
        routers: Dict[str, SimulatedRouter] = {
            name: SimulatedRouter(
                router,
                network,
                engine,
                on_flood,
                lsp_generation_interval=config.lsp_generation_interval,
            )
            for name, router in network.routers.items()
        }

        initial_rng = child_rng(seed, "initial-floods")
        for name in sorted(routers):
            flood_time = initial_rng.uniform(1.0, 60.0)
            engine.schedule(
                flood_time, lambda r=routers[name]: r.flood(engine.now)
            )

        # --- observable effects -----------------------------------------------
        for workload in workloads:
            link = network.links[workload.link_id]
            effects_rng = child_rng(seed, f"effects:{workload.link_id}")
            for failure in workload.failures:
                schedule_failure(
                    failure, link, routers, engine, emit_syslog, effects_rng
                )
            for flap in workload.media_flaps:
                schedule_media_flap(
                    flap, link, routers, engine, emit_syslog, effects_rng
                )

        # --- listener resyncs -------------------------------------------------
        for resync_time in listener_host.resync_times():
            for index, name in enumerate(sorted(routers)):
                engine.schedule(
                    resync_time + 0.01 * index,
                    lambda r=routers[name]: r.flood(engine.now),
                )

        # --- run ---------------------------------------------------------------
        engine.run(until=horizon_end)

        # --- assemble the dataset ----------------------------------------------
        collector = SyslogCollector()
        delivered = channel.delivered()
        collector.receive_all(delivered)

        failures = sorted(
            (f for w in workloads for f in w.failures), key=lambda f: (f.start, f.link_id)
        )
        media_flaps = sorted(
            (m for w in workloads for m in w.media_flaps),
            key=lambda m: (m.start, m.link_id),
        )
        # Tickets are keyed by the canonical link name — the name a NOC (and
        # the analysis pipeline) uses, not the simulator's internal link id.
        tickets = TicketSystem.from_ground_truth(
            (
                (network.links[f.link_id].canonical_name, f.start, f.end)
                for f in failures
            ),
            child_rng(seed, "tickets"),
            config.tickets,
        )

        summary = DatasetSummary(
            router_count_core=len(network.core_routers()),
            router_count_cpe=len(network.cpe_routers()),
            link_count_core=len(network.core_links()),
            link_count_cpe=len(network.cpe_links()),
            config_file_count=len(configs),
            syslog_generated=syslog_generated,
            syslog_delivered=len(delivered),
            syslog_lost=channel.loss_count(),
            syslog_inband_lost=syslog_inband_lost,
            syslog_spurious=sum(1 for r in delivered if r.spurious),
            lsp_record_count=len(lsp_records),
            ground_truth_failure_count=len(failures),
            listener_outage_count=len(listener_host.outages),
            ticket_count=len(tickets),
        )

        return Dataset(
            network=network,
            configs=configs,
            inventory=inventory,
            syslog_text=collector.render_log(),
            lsp_records=lsp_records,
            ground_truth_failures=failures,
            media_flaps=media_flaps,
            listener_outages=listener_host.outages,
            tickets=tickets,
            horizon_start=0.0,
            horizon_end=horizon_end,
            analysis_start=config.warmup,
            summary=summary,
        )


def run_scenario(config: ScenarioConfig = ScenarioConfig()) -> Dataset:
    """Convenience wrapper: build a runner and run it."""
    return ScenarioRunner(config).run()
