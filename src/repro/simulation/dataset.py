"""The dataset bundle a scenario produces and an analysis consumes.

A :class:`Dataset` is the analogue of everything the paper's authors had on
disk: the router configuration archive, the central syslog file, the
listener's LSP capture, the listener's own outage log, and the NOC ticket
system — plus, because this is a simulation, the generative ground truth
that lets EXPERIMENTS.md check both observation channels against reality.

Datasets round-trip to a directory (configs/, syslog.log, isis.dump,
ground_truth.json, tickets.json, meta.json) so expensive scenarios can be
generated once and re-analysed many times.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.faults.ledger import IngestReport
from repro.intervals import Interval, IntervalSet
from repro.isis.mrt import MrtDumpReader, MrtDumpWriter
from repro.simulation.failures import (
    FailureCause,
    GroundTruthFailure,
    MediaFlapEvent,
)
from repro.ticketing import TicketSystem, TroubleTicket
from repro.topology.configmine import ConfigArchive, MinedInventory, mine_configs
from repro.topology.model import Network


@dataclass(frozen=True)
class DatasetSummary:
    """Aggregate counters for Table 1 style reporting."""

    router_count_core: int
    router_count_cpe: int
    link_count_core: int
    link_count_cpe: int
    config_file_count: int
    syslog_generated: int
    syslog_delivered: int
    syslog_lost: int
    syslog_inband_lost: int
    syslog_spurious: int
    lsp_record_count: int
    ground_truth_failure_count: int
    listener_outage_count: int
    ticket_count: int


@dataclass
class Dataset:
    """Everything one simulated measurement campaign produced."""

    network: Network
    configs: Dict[str, str]
    inventory: MinedInventory
    syslog_text: str
    lsp_records: List[Tuple[float, bytes]]
    ground_truth_failures: List[GroundTruthFailure]
    media_flaps: List[MediaFlapEvent]
    listener_outages: IntervalSet
    tickets: TicketSystem
    horizon_start: float
    horizon_end: float
    analysis_start: float
    summary: Optional[DatasetSummary] = None  # filled by the scenario runner

    # ------------------------------------------------------------- stream
    def iter_syslog_entries(
        self,
        *,
        strict: bool = True,
        report: Optional[IngestReport] = None,
    ) -> Iterator["CollectedEntry"]:
        """Parsed central-log entries in arrival order (streaming feed).

        Arrival order is what the collector's file preserves; generation
        timestamps inside the entries may be mildly out of order because of
        delivery delays — streaming consumers re-order them in event time
        (see :mod:`repro.stream.sources`).  ``strict=False`` quarantines
        malformed lines into ``report`` instead of raising.
        """
        from repro.syslog.collector import SyslogCollector

        return iter(
            SyslogCollector.parse_log(
                self.syslog_text, strict=strict, report=report
            )
        )

    def iter_lsp_records(self) -> Iterator[Tuple[float, bytes]]:
        """Timestamped raw LSPs in capture order (streaming feed)."""
        return iter(self.lsp_records)

    # ------------------------------------------------------------ persist
    def save(self, directory: Union[str, Path]) -> None:
        """Write the dataset to a directory (created if needed)."""
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)

        config_dir = root / "configs"
        config_dir.mkdir(exist_ok=True)
        for hostname, text in self.configs.items():
            (config_dir / f"{hostname}.cfg").write_text(text, encoding="utf-8")

        (root / "syslog.log").write_text(self.syslog_text, encoding="utf-8")

        with MrtDumpWriter.open(root / "isis.dump") as writer:
            for time, payload in self.lsp_records:
                writer.write(time, payload)

        ground_truth = {
            "failures": [
                {**asdict(f), "cause": f.cause.value}
                for f in self.ground_truth_failures
            ],
            "media_flaps": [asdict(m) for m in self.media_flaps],
        }
        (root / "ground_truth.json").write_text(
            json.dumps(ground_truth), encoding="utf-8"
        )

        tickets = [asdict(ticket) for ticket in self.tickets.all_tickets()]
        (root / "tickets.json").write_text(json.dumps(tickets), encoding="utf-8")

        meta = {
            "horizon_start": self.horizon_start,
            "horizon_end": self.horizon_end,
            "analysis_start": self.analysis_start,
            "listener_outages": [
                [iv.start, iv.end] for iv in self.listener_outages
            ],
            "summary": asdict(self.summary) if self.summary else None,
        }
        (root / "meta.json").write_text(json.dumps(meta), encoding="utf-8")

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        network: Network,
        *,
        strict: bool = True,
        report: Optional[IngestReport] = None,
    ) -> "Dataset":
        """Load a saved dataset.

        The :class:`Network` object is not serialised (it is fully
        determined by the scenario's topology parameters); pass the
        regenerated network.  The mined inventory is re-derived from the
        saved config archive, exactly as a fresh analysis would.

        ``strict=False`` is the hardened load for artifacts a crashed
        collector or listener left behind: broken UTF-8 in the syslog
        file decodes with replacement characters (the affected lines
        surface later as parse drops), and a truncated or corrupt LSP
        archive is salvaged — the valid prefix is kept and the cut is
        recorded in ``report``.  On clean artifacts both modes load
        identical datasets.
        """
        root = Path(directory)

        configs: Dict[str, str] = {}
        archive = ConfigArchive()
        for path in sorted((root / "configs").glob("*.cfg")):
            text = path.read_text(encoding="utf-8")
            configs[path.stem] = text
            archive.add(path.stem, text)
        inventory = mine_configs(archive)

        syslog_raw = (root / "syslog.log").read_bytes()
        syslog_text = syslog_raw.decode(
            "utf-8", errors="strict" if strict else "replace"
        )

        with MrtDumpReader.open(
            root / "isis.dump", strict=strict, report=report
        ) as reader:
            lsp_records = reader.read_all()

        ground_truth = json.loads(
            (root / "ground_truth.json").read_text(encoding="utf-8")
        )
        failures = [
            GroundTruthFailure(
                **{**raw, "cause": FailureCause(raw["cause"])}
            )
            for raw in ground_truth["failures"]
        ]
        media_flaps = [MediaFlapEvent(**raw) for raw in ground_truth["media_flaps"]]

        tickets = TicketSystem(
            TroubleTicket(**raw)
            for raw in json.loads((root / "tickets.json").read_text(encoding="utf-8"))
        )

        meta = json.loads((root / "meta.json").read_text(encoding="utf-8"))
        summary = (
            DatasetSummary(**meta["summary"]) if meta.get("summary") else None
        )
        return cls(
            network=network,
            configs=configs,
            inventory=inventory,
            syslog_text=syslog_text,
            lsp_records=lsp_records,
            ground_truth_failures=failures,
            media_flaps=media_flaps,
            listener_outages=IntervalSet(
                Interval(start, end) for start, end in meta["listener_outages"]
            ),
            tickets=tickets,
            horizon_start=meta["horizon_start"],
            horizon_end=meta["horizon_end"],
            analysis_start=meta["analysis_start"],
            summary=summary,
        )
