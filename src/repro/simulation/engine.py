"""A minimal discrete-event simulation engine.

The scenario runner schedules closures at absolute times; the engine pops
them in time order.  Ties break by insertion order (a monotonically
increasing sequence number), which keeps runs fully deterministic — Python's
heapq would otherwise try to compare the closures themselves.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

Action = Callable[[], None]


class EventQueue:
    """Time-ordered queue of zero-argument callbacks."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Action]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """The time of the most recently executed event."""
        return self._now

    def schedule(self, time: float, action: Action) -> None:
        """Schedule ``action`` at ``time``.

        Scheduling in the past (relative to the engine's current time while
        running) is an error — it would silently reorder causality.
        """
        if self._running and time < self._now:
            raise ValueError(
                f"cannot schedule at {time} (earlier than current time {self._now})"
            )
        heapq.heappush(self._heap, (time, next(self._counter), action))

    def __len__(self) -> int:
        return len(self._heap)

    def run(self, until: Optional[float] = None) -> int:
        """Execute events in order; returns the number executed.

        With ``until`` set, events at strictly later times stay queued.
        """
        executed = 0
        self._running = True
        try:
            while self._heap:
                time, _, action = self._heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                self._now = time
                action()
                executed += 1
        finally:
            self._running = False
        return executed
