"""Ground-truth failure generation.

For every link the generator draws a failure history over the measurement
horizon: Poisson episode arrivals at a per-link lognormal rate, each episode
either an isolated failure or a flapping run, each failure annotated with
every random choice the observable-effects layer needs (which end detected
first, detection skew, recovery handshake time, abort/reset blips).  Making
all choices here keeps :mod:`repro.simulation.effects` a pure translation,
and the whole history a deterministic function of ``(seed, link_id)``.

Ground truth semantics: a failure spans ``[start, end)`` where ``start`` is
the moment traffic is first affected and ``end`` is the moment the IS-IS
adjacency is fully re-established.  This is the reference the paper treats
IS-IS as approximating; the simulated IS-IS *observation* of it carries
detection and flooding skew on top.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.simulation.workload import LinkClassProfile
from repro.util.rand import child_rng

#: Guaranteed quiet time between episodes so the ten-minute flap rule of
#: §4.1 never merges two generated episodes into one.
MIN_EPISODE_GAP = 900.0


class FailureCause(enum.Enum):
    """What broke: the media (physical) or only the routing protocol."""

    PHYSICAL = "physical"
    PROTOCOL = "protocol"


class PseudoEventKind(enum.Enum):
    """Syslog-only blips around recovery (§4.3's short false positives)."""

    HANDSHAKE_ABORT = "handshake_abort"
    ADJACENCY_RESET = "adjacency_reset"


@dataclass(frozen=True)
class GroundTruthFailure:
    """One link failure with all observation-shaping random choices fixed."""

    link_id: str
    start: float
    end: float
    cause: FailureCause
    episode_id: int
    flap_member: bool
    #: Router name that detects the failure first (carrier loss or first
    #: hold-timer expiry); the opposite end detects ``second_skew`` later.
    first_detector: str
    second_skew: float
    #: Physical failures only: True when the second end keeps carrier and
    #: detects purely by hold-timer expiry (no media messages there).
    delayed_second: bool
    #: When the underlying fault is repaired; the adjacency handshake then
    #: takes ``end - repair_time`` to complete.
    repair_time: float
    #: Correlated syslog suppression: the collector path is congested by
    #: the very reconvergence the messages describe, so a whole phase's
    #: messages (both ends) can vanish together.  A suppressed down phase
    #: with a delivered up produces the double-up / lost-down ambiguity of
    #: §4.3 and makes syslog miss the failure's downtime entirely.
    suppress_down_syslog: bool = False
    suppress_up_syslog: bool = False
    #: Spurious state reminders (§4.3's "spurious retransmission"): a
    #: repeated Down logged mid-failure (offset from ``start``) and/or a
    #: repeated Up logged after recovery (offset from ``end``).
    reminder_down_offset: Optional[float] = None
    reminder_up_offset: Optional[float] = None
    #: Recovery blips (syslog-visible, LSP-invisible).
    abort: bool = False
    abort_delay: float = 0.0  # seconds after repair the aborted Up is logged
    abort_duration: float = 0.0  # Up-to-Down gap of the abort blip
    reset: bool = False
    reset_delay: float = 0.0  # seconds after adjacency-up the reset starts
    reset_duration: float = 0.0

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError("failure must have positive duration")
        if not self.start <= self.repair_time <= self.end:
            raise ValueError("repair time must fall inside the failure")
        if self.second_skew < 0:
            raise ValueError("second-end detection skew must be non-negative")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class MediaFlapEvent:
    """A brief carrier event: IP reachability and media syslog, no adjacency
    change (the event is shorter than the IS-IS holding time).

    Carrier events behind optical transport frequently surface only in the
    transport layer's own management system; ``silent_down``/``silent_up``
    mark edges that produce no router syslog at all.
    """

    link_id: str
    start: float
    end: float
    episode_id: int
    silent_down: bool = False
    silent_up: bool = False

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError("media flap must have positive duration")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class LinkWorkload:
    """Everything generated for one link."""

    link_id: str
    episode_rate: float  # episodes per year actually drawn for this link
    failures: List[GroundTruthFailure] = field(default_factory=list)
    media_flaps: List[MediaFlapEvent] = field(default_factory=list)


def _sample_geometric_extra(rng: random.Random, mean: float, cap: int) -> int:
    """Extra-event count with the given mean, geometrically distributed."""
    if mean <= 0:
        return 0
    continue_probability = mean / (1.0 + mean)
    count = 0
    while count < cap and rng.random() < continue_probability:
        count += 1
    return count


def _build_failure(
    rng: random.Random,
    link_id: str,
    endpoints: Tuple[str, str],
    profile: LinkClassProfile,
    start: float,
    duration: float,
    episode_id: int,
    flap_member: bool,
) -> GroundTruthFailure:
    cause = (
        FailureCause.PHYSICAL
        if rng.random() < profile.physical_probability
        else FailureCause.PROTOCOL
    )
    first_detector = endpoints[rng.randrange(2)]
    if cause is FailureCause.PHYSICAL:
        delayed_second = rng.random() < profile.delayed_end_probability
        if delayed_second:
            second_skew = rng.uniform(*profile.hold_skew_range)
        else:
            second_skew = rng.uniform(0.0, 1.5)
    else:
        delayed_second = False
        second_skew = rng.uniform(*profile.protocol_skew_range)
    if flap_member:
        # Flap members are interface-driven rapid transitions; both ends see
        # them nearly simultaneously (large skews would interleave with the
        # next member and fabricate phantom failures in both channels).
        delayed_second = False
        second_skew = min(second_skew, rng.uniform(0.0, 1.0))

    abort = rng.random() < profile.handshake_abort_probability
    abort_delay = rng.uniform(0.5, 1.5) if abort else 0.0
    abort_duration = rng.uniform(0.2, 0.9) if abort else 0.0
    handshake = rng.uniform(0.5, 2.0) + (abort_delay + abort_duration if abort else 0.0)
    # Very short injected durations still need room for the handshake.
    total = max(duration, handshake + 0.5)
    repair_time = start + total - handshake

    reset = rng.random() < profile.adjacency_reset_probability
    # Correlated syslog suppression.  Whole-failure suppression (both
    # phases silenced) models events that take the syslog path down with
    # the link: reconvergence churn inside flapping episodes, and the
    # facility/power incidents behind long outages.  Per-phase extras model
    # one-sided congestion; the up-phase extra is flap-only because outside
    # a flap the next message on the link may be weeks away, and a silently
    # missing Up would wedge the reconstructed state down for that long —
    # a pattern the real channel does not exhibit at quiet times.
    if flap_member:
        p_whole = profile.suppress_whole_flap
    elif total > profile.suppress_long_threshold:
        p_whole = profile.suppress_whole_long
    else:
        p_whole = profile.suppress_whole_base
    whole = rng.random() < p_whole
    extra_down = (
        profile.suppress_down_extra_flap
        if flap_member
        else profile.suppress_down_extra_base
    )
    suppress_down = whole or rng.random() < extra_down
    suppress_up = whole or (
        flap_member and rng.random() < profile.suppress_up_extra_flap
    )

    # Spurious reminders need a failure long enough that the repeat still
    # lands inside it, well past any transition-merge window.
    reminder_down_offset = None
    if (
        total > 120.0
        and not suppress_down
        and rng.random() < profile.reminder_down_probability
    ):
        reminder_down_offset = rng.uniform(60.0, min(total - 10.0, 21600.0))
    reminder_up_offset = None
    # Up reminders only outside flaps: the quiet period after an isolated
    # recovery guarantees the repeat lands while the link is up.
    if (
        not flap_member
        and not suppress_up
        and rng.random() < profile.reminder_up_probability
    ):
        reminder_up_offset = rng.uniform(60.0, 300.0)
    return GroundTruthFailure(
        link_id=link_id,
        start=start,
        end=start + total,
        cause=cause,
        episode_id=episode_id,
        flap_member=flap_member,
        first_detector=first_detector,
        second_skew=second_skew,
        delayed_second=delayed_second,
        repair_time=repair_time,
        suppress_down_syslog=suppress_down,
        suppress_up_syslog=suppress_up,
        reminder_down_offset=reminder_down_offset,
        reminder_up_offset=reminder_up_offset,
        abort=abort,
        abort_delay=abort_delay,
        abort_duration=abort_duration,
        reset=reset,
        reset_delay=rng.uniform(0.5, 2.0) if reset else 0.0,
        reset_duration=rng.uniform(0.2, 0.9) if reset else 0.0,
    )


def generate_link_workload(
    link_id: str,
    endpoints: Tuple[str, str],
    profile: LinkClassProfile,
    seed: int,
    horizon_start: float,
    horizon_end: float,
) -> LinkWorkload:
    """Draw the full failure and media-flap history for one link.

    Failures never overlap on a link and consecutive episodes are separated
    by at least :data:`MIN_EPISODE_GAP`.  A failure may extend past the
    horizon end (right-censored downtime); events beyond the horizon are
    simply never observed.
    """
    if horizon_end <= horizon_start:
        raise ValueError("empty horizon")
    rng = child_rng(seed, f"failures:{link_id}")
    workload = LinkWorkload(
        link_id=link_id, episode_rate=profile.sample_link_rate(rng)
    )

    seconds_per_year = 365.0 * 86400.0
    rate_per_second = workload.episode_rate / seconds_per_year
    episode_id = 0
    t = horizon_start + rng.expovariate(rate_per_second)
    while t < horizon_end:
        episode_id += 1
        is_flap = rng.random() < profile.flap_probability
        if is_flap:
            member_count = 2 + _sample_geometric_extra(
                rng, profile.flap_extra_failures_mean, profile.flap_max_failures - 2
            )
            cursor = t
            for _ in range(member_count):
                if cursor >= horizon_end:
                    break
                duration = profile.flap_duration.sample(rng)
                failure = _build_failure(
                    rng,
                    link_id,
                    endpoints,
                    profile,
                    cursor,
                    duration,
                    episode_id,
                    flap_member=True,
                )
                workload.failures.append(failure)
                gap = min(rng.expovariate(1.0 / profile.flap_gap_mean), profile.flap_gap_max)
                cursor = failure.end + max(gap, 1.0)
            episode_end = workload.failures[-1].end if workload.failures else t
        else:
            duration = profile.isolated_duration.sample(rng)
            failure = _build_failure(
                rng, link_id, endpoints, profile, t, duration, episode_id, flap_member=False
            )
            workload.failures.append(failure)
            episode_end = failure.end
        t = episode_end + MIN_EPISODE_GAP + rng.expovariate(rate_per_second)

    _generate_media_flaps(rng, workload, profile, horizon_start, horizon_end)
    return workload


def _generate_media_flaps(
    rng: random.Random,
    workload: LinkWorkload,
    profile: LinkClassProfile,
    horizon_start: float,
    horizon_end: float,
) -> None:
    if profile.media_flap_rate <= 0:
        return
    seconds_per_year = 365.0 * 86400.0
    rate_per_second = profile.media_flap_rate / seconds_per_year
    episode_id = 0
    candidates: List[MediaFlapEvent] = []
    t = horizon_start + rng.expovariate(rate_per_second)
    while t < horizon_end:
        episode_id += 1
        event_count = 1 + _sample_geometric_extra(
            rng, profile.media_flap_extra_mean, profile.media_flap_max_events - 1
        )
        cursor = t
        for _ in range(event_count):
            if cursor >= horizon_end:
                break
            duration = rng.uniform(*profile.media_flap_duration_range)
            candidates.append(
                MediaFlapEvent(
                    link_id=workload.link_id,
                    start=cursor,
                    end=cursor + duration,
                    episode_id=episode_id,
                    silent_down=rng.random() < profile.media_silent_probability,
                    silent_up=rng.random() < profile.media_silent_probability,
                )
            )
            gap = rng.expovariate(1.0 / profile.media_flap_gap_mean)
            cursor += duration + max(gap, 1.0)
        t = cursor + MIN_EPISODE_GAP + rng.expovariate(rate_per_second)

    # A media flap inside (or adjacent to) a real failure is meaningless —
    # the interface is already down — so such candidates are discarded.
    guard = 60.0
    spans = [(f.start - guard, f.end + guard) for f in workload.failures]
    for candidate in candidates:
        if any(candidate.start < hi and lo < candidate.end for lo, hi in spans):
            continue
        workload.media_flaps.append(candidate)
