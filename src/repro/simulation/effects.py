"""Translate ground-truth events into observable router behaviour.

For each :class:`~repro.simulation.failures.GroundTruthFailure` this module
schedules, on the discrete-event engine, everything the outside world can
see of it:

Failure start
    The first detector logs the cause-appropriate syslog messages and
    updates its LSP state; the second end follows after its detection skew
    (sub-second for mutual carrier loss, hold-timer-scale for delayed
    detection and protocol failures — the skew that turns Table 3's "Both"
    into "One").

    Physical failures additionally log ``%LINK``/``%LINEPROTO`` and withdraw
    the connected /31 at every end that lost carrier; protocol failures
    touch neither media messages nor IP reachability (Table 2's contrast).

Recovery
    Carrier returns (media Up + prefix re-advertisement at affected ends),
    then the adjacency handshake completes and both ends log ADJCHANGE Up.
    Two syslog-only blips may decorate recovery, per §4.3: a **handshake
    abort** (Up then Down before the real Up, no LSP ever generated) and an
    **adjacency reset** (Down/Up moments after the real Up, again without an
    LSP).

Media flaps
    Both ends log media messages and bounce the /31; adjacencies are
    untouched.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from repro.simulation.engine import EventQueue
from repro.simulation.failures import FailureCause, GroundTruthFailure, MediaFlapEvent
from repro.simulation.router import SimulatedRouter
from repro.syslog.cisco import (
    AdjacencyChangeMessage,
    CiscoLogEntry,
    LineProtoUpDownMessage,
    LinkUpDownMessage,
)
from repro.topology.model import Link

SyslogEmit = Callable[[float, CiscoLogEntry], None]

#: Cisco cause phrases, keyed by (direction, context).
REASON_NEW_ADJACENCY = "new adjacency"
REASON_HOLD_EXPIRED = "hold time expired"
REASON_INTERFACE_DOWN = "interface state down"
REASON_ADJACENCY_RESET = "adjacency reset"
REASON_HANDSHAKE_FAILED = "3-way handshake failed"


def _adjchange(
    router: SimulatedRouter, link: Link, direction: str, reason: str
) -> AdjacencyChangeMessage:
    neighbor = link.other_end(router.name)
    return AdjacencyChangeMessage(
        router=router.name,
        interface=link.port_on(router.name),
        neighbor_hostname=neighbor,
        direction=direction,
        reason=reason,
        flavor=router.flavor,
    )


def _media_messages(
    router: SimulatedRouter, link: Link, direction: str
) -> list:
    port = link.port_on(router.name)
    return [
        LinkUpDownMessage(router=router.name, interface=port, direction=direction),
        LineProtoUpDownMessage(router=router.name, interface=port, direction=direction),
    ]


def schedule_failure(
    failure: GroundTruthFailure,
    link: Link,
    routers: Dict[str, SimulatedRouter],
    engine: EventQueue,
    emit_syslog: SyslogEmit,
    rng: random.Random,
) -> None:
    """Schedule every observable consequence of one failure."""
    first = routers[failure.first_detector]
    second = routers[link.other_end(failure.first_detector)]
    physical = failure.cause is FailureCause.PHYSICAL

    # ----------------------------------------------------------- going down
    t_first = failure.start
    t_second = failure.start + failure.second_skew
    t_up = failure.end
    # An end whose detection (carrier loss propagation or hold-timer
    # expiry) would land after the adjacency is already re-established
    # never notices the failure at all: its hold timer is refreshed by the
    # resumed hellos and nothing is logged or withdrawn there.  Short
    # failures are therefore often witnessed by a single end — one driver
    # of Table 3's One-matched rows.
    second_noticed = t_second < t_up

    def down_at(router: SimulatedRouter, when: float, lost_carrier: bool) -> None:
        def action() -> None:
            if lost_carrier:
                if not failure.suppress_down_syslog:
                    for message in _media_messages(router, link, "down"):
                        emit_syslog(engine.now, message)
                router.prefix_down(engine.now, link.link_id)
                reason = REASON_INTERFACE_DOWN
            else:
                reason = REASON_HOLD_EXPIRED
            if not failure.suppress_down_syslog:
                emit_syslog(engine.now, _adjchange(router, link, "down", reason))
            router.adjacency_down(engine.now, link.link_id)

        engine.schedule(when, action)

    if physical:
        down_at(first, t_first, lost_carrier=True)
        if second_noticed:
            down_at(second, t_second, lost_carrier=not failure.delayed_second)
    else:
        down_at(first, t_first, lost_carrier=False)
        if second_noticed:
            down_at(second, t_second, lost_carrier=False)

    # ------------------------------------------------------------- recovery
    t_repair = failure.repair_time
    if physical:
        carrier_ends = [first]
        if not failure.delayed_second and second_noticed:
            carrier_ends.append(second)

        def carrier_return(router: SimulatedRouter) -> Callable[[], None]:
            def action() -> None:
                if not failure.suppress_up_syslog:
                    for message in _media_messages(router, link, "up"):
                        emit_syslog(engine.now, message)
                router.prefix_up(engine.now, link.link_id)

            return action

        for router in carrier_ends:
            engine.schedule(t_repair + rng.uniform(0.0, 0.3), carrier_return(router))

    if failure.abort and not failure.suppress_up_syslog:
        # The first handshake attempt reaches UP at one end, then collapses.
        # No LSP results (the change is inside the generation holddown), so
        # only syslog witnesses it.
        t_abort_up = t_repair + failure.abort_delay
        t_abort_down = t_abort_up + failure.abort_duration

        def abort_up() -> None:
            emit_syslog(
                engine.now, _adjchange(first, link, "up", REASON_NEW_ADJACENCY)
            )

        def abort_down() -> None:
            emit_syslog(
                engine.now, _adjchange(first, link, "down", REASON_HANDSHAKE_FAILED)
            )

        engine.schedule(t_abort_up, abort_up)
        engine.schedule(t_abort_down, abort_down)

    # The two ends reach UP a hello-cycle apart: within a second inside
    # flaps (fast hellos already running), but up to ~15 s for a cold
    # re-establishment — one driver of Table 3's One-matched UP rows.
    if failure.flap_member:
        second_up_jitter = rng.uniform(0.0, 1.0)
    else:
        second_up_jitter = rng.uniform(0.0, 20.0)

    def up_at(router: SimulatedRouter, when: float) -> None:
        def action() -> None:
            if not failure.suppress_up_syslog:
                emit_syslog(
                    engine.now, _adjchange(router, link, "up", REASON_NEW_ADJACENCY)
                )
            router.adjacency_up(engine.now, link.link_id)

        engine.schedule(when, action)

    up_at(first, t_up)
    if second_noticed:
        up_at(second, t_up + second_up_jitter)

    if failure.reminder_down_offset is not None:
        # A persistent-condition reminder: the first detector re-logs the
        # Down mid-failure.  No state change, no LSP — just the repeated
        # message whose handling §4.3 studies.
        def reminder_down() -> None:
            reason = (
                REASON_INTERFACE_DOWN if physical else REASON_HOLD_EXPIRED
            )
            emit_syslog(engine.now, _adjchange(first, link, "down", reason))

        engine.schedule(t_first + failure.reminder_down_offset, reminder_down)

    if failure.reminder_up_offset is not None:
        def reminder_up() -> None:
            emit_syslog(
                engine.now, _adjchange(first, link, "up", REASON_NEW_ADJACENCY)
            )

        engine.schedule(t_up + failure.reminder_up_offset, reminder_up)

    if failure.reset and not failure.suppress_up_syslog:
        # Moments after recovery the adjacency resets and re-forms without a
        # new LSP; the paper distinguishes these from real failures by the
        # cause phrase (§4.3).
        t_reset_down = t_up + failure.reset_delay
        t_reset_up = t_reset_down + failure.reset_duration

        def reset_down() -> None:
            emit_syslog(
                engine.now, _adjchange(first, link, "down", REASON_ADJACENCY_RESET)
            )

        def reset_up() -> None:
            emit_syslog(
                engine.now, _adjchange(first, link, "up", REASON_NEW_ADJACENCY)
            )

        engine.schedule(t_reset_down, reset_down)
        engine.schedule(t_reset_up, reset_up)


def schedule_media_flap(
    flap: MediaFlapEvent,
    link: Link,
    routers: Dict[str, SimulatedRouter],
    engine: EventQueue,
    emit_syslog: SyslogEmit,
    rng: random.Random,
) -> None:
    """Schedule a carrier blip: media syslog + IP bounce, adjacency intact.

    Most carrier events behind optical transport are unidirectional — only
    one end sees loss of light, logs media messages, and withdraws its /31;
    the remainder hit both ends.
    """
    if rng.random() < 0.6:
        chosen = rng.choice((link.router_a, link.router_b))
        ends = [routers[chosen]]
    else:
        ends = [routers[link.router_a], routers[link.router_b]]

    def edge(direction: str, when: float, silent: bool) -> None:
        for router in ends:
            def action(router: SimulatedRouter = router) -> None:
                if not silent:
                    for message in _media_messages(router, link, direction):
                        emit_syslog(engine.now, message)
                if direction == "down":
                    router.prefix_down(engine.now, link.link_id)
                else:
                    router.prefix_up(engine.now, link.link_id)

            engine.schedule(when + rng.uniform(0.0, 0.2), action)

    edge("down", flap.start, flap.silent_down)
    edge("up", flap.end, flap.silent_up)
