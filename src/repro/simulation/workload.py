"""Failure workload profiles, calibrated to the paper's Table 5.

The paper reports per-link annualised failure counts, duration statistics,
and downtime separately for Core and CPE links; this module captures those
empirical shapes as generator parameters:

* per-link failure *rates* are lognormal across links (median ≪ mean —
  a few bad links dominate; compare Table 5's median 6.6 vs mean 16.1 for
  Core, 12.3 vs 45.5 for CPE);
* failure *durations* are a mixture of bounded Pareto components: most
  failures last seconds, a heavy tail lasts hours, and a rare component
  lasts days (the >24 h failures that §4.2 verifies against tickets);
* a fraction of failure episodes are **flapping** episodes — runs of short
  failures separated by gaps under the ten-minute flap rule of §4.1;
* failures split by **cause**: physical failures touch media and IP
  reachability; protocol failures touch only the adjacency (§3.4/Table 2);
* **media flaps** — brief carrier events that toggle IP reachability and
  log physical-media messages without dropping the adjacency — provide the
  IP-reachability noise that makes IS reachability the better state signal
  (Table 2's 25 % column).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Tuple

from repro.util.rand import pareto_bounded, weighted_choice


@dataclass(frozen=True)
class DurationMixture:
    """A weighted mixture of bounded-Pareto duration components.

    Components are ``(weight, shape, minimum, maximum)``; weights need not
    sum to one (they are normalised by sampling).
    """

    components: Tuple[Tuple[float, float, float, float], ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("duration mixture needs at least one component")
        for weight, shape, minimum, maximum in self.components:
            if weight < 0:
                raise ValueError("component weights must be non-negative")
            if not (0 < minimum < maximum and shape > 0):
                raise ValueError("component bounds must satisfy 0 < min < max")

    def sample(self, rng: random.Random) -> float:
        options = [
            ((shape, minimum, maximum), weight)
            for weight, shape, minimum, maximum in self.components
        ]
        shape, minimum, maximum = weighted_choice(rng, options)
        return pareto_bounded(rng, shape, minimum, maximum)


@dataclass(frozen=True)
class LinkClassProfile:
    """Failure behaviour of one link class (Core or CPE)."""

    #: Median failure episodes per link-year; actual per-link rates are
    #: lognormal around this median with ``episode_rate_sigma``.
    episode_rate_median: float
    episode_rate_sigma: float

    #: Probability an episode is a flapping episode rather than one failure.
    flap_probability: float
    #: Flap episodes contain 2 + Geometric(p) member failures, capped.
    flap_extra_failures_mean: float
    flap_max_failures: int
    #: Mean gap between flap members (exponential, truncated under the
    #: ten-minute flap rule so the episode stays one episode).
    flap_gap_mean: float
    flap_gap_max: float
    #: Durations of flap-member failures.
    flap_duration: DurationMixture

    #: Durations of isolated (non-flap) failures.
    isolated_duration: DurationMixture

    #: Probability a failure is physical (media + IP effects) vs protocol.
    physical_probability: float
    #: Given physical, probability one end keeps carrier and detects the
    #: failure only by hold-timer expiry.
    delayed_end_probability: float
    #: Remaining hold time at a delayed end, uniform bounds (seconds).
    hold_skew_range: Tuple[float, float]
    #: Detection skew of the second end for protocol failures (uniform).
    protocol_skew_range: Tuple[float, float]

    #: Correlated syslog suppression.  ``whole``-suppression silences every
    #: message of a failure (both phases, both ends): the events that break
    #: a link often disturb the syslog path too — reconvergence churn
    #: during flapping, and the power/facility incidents behind long
    #: outages.  The per-phase extras silence just one phase, producing the
    #: double-up / double-down ambiguities of §4.3.
    suppress_whole_flap: float
    suppress_whole_long: float
    suppress_whole_base: float
    suppress_long_threshold: float
    suppress_down_extra_flap: float
    suppress_down_extra_base: float
    suppress_up_extra_flap: float

    #: Spurious state reminders: some platforms re-log a persistent
    #: adjacency failure minutes into it, and occasionally restate an Up
    #: after recovery.  These repeats arrive outside any plausible
    #: transition-merge window and are the paper's "spurious
    #: retransmission" double messages (Table 6).
    reminder_down_probability: float
    reminder_up_probability: float

    #: Probability a recovery's first handshake aborts (syslog-only blip).
    handshake_abort_probability: float
    #: Probability of an adjacency-reset blip right after recovery.
    adjacency_reset_probability: float

    #: Media-flap episodes per link-year (carrier noise, no adjacency drop).
    media_flap_rate: float
    #: Media-flap episode size: 1 + Geometric(p) events, capped.
    media_flap_extra_mean: float
    media_flap_max_events: int
    media_flap_gap_mean: float
    #: Duration bounds of one media flap event (uniform, seconds) — must
    #: stay under the IS-IS holding time or the adjacency would drop.
    media_flap_duration_range: Tuple[float, float]
    #: Probability a media-flap edge produces no router syslog at all
    #: (the event surfaces only in the optical transport's own NMS).
    media_silent_probability: float = 0.45

    def __post_init__(self) -> None:
        for name in (
            "flap_probability",
            "physical_probability",
            "delayed_end_probability",
            "suppress_whole_flap",
            "suppress_whole_long",
            "suppress_whole_base",
            "suppress_down_extra_flap",
            "suppress_down_extra_base",
            "suppress_up_extra_flap",
            "reminder_down_probability",
            "reminder_up_probability",
            "handshake_abort_probability",
            "adjacency_reset_probability",
            "media_silent_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")
        if self.episode_rate_median <= 0 or self.episode_rate_sigma < 0:
            raise ValueError("episode rate parameters out of range")

    def sample_link_rate(self, rng: random.Random) -> float:
        """Per-link episode rate (per year), lognormal around the median."""
        return self.episode_rate_median * math.exp(
            rng.gauss(0.0, self.episode_rate_sigma)
        )


def _core_profile() -> LinkClassProfile:
    # Calibration targets (paper Table 5, Core/IS-IS column): median 6.6 and
    # mean 16.1 failures per link-year; median duration 42 s, mean ~1500 s;
    # median downtime 0.8 h/yr, mean 7 h/yr.  With ~1.45 failures per
    # episode, the episode rate median is 6.6/1.45 and the lognormal sigma
    # is solved from the mean/median ratio.
    return LinkClassProfile(
        episode_rate_median=5.0,
        episode_rate_sigma=1.20,
        flap_probability=0.15,
        flap_extra_failures_mean=2.0,
        flap_max_failures=25,
        flap_gap_mean=75.0,
        flap_gap_max=550.0,
        flap_duration=DurationMixture(
            components=(
                (0.70, 1.1, 2.0, 60.0),
                (0.30, 1.2, 10.0, 300.0),
            )
        ),
        isolated_duration=DurationMixture(
            components=(
                # seconds-scale blips, minute-scale, hour-scale, day-scale;
                # the last two components carry most of the downtime, as the
                # gap between Table 5's p95 (6,683 s) and mean (1,527 s)
                # requires.
                (0.320, 1.0, 5.0, 60.0),
                (0.340, 1.0, 20.0, 1200.0),
                (0.280, 1.0, 60.0, 7200.0),
                (0.045, 1.0, 3600.0, 86400.0),
                (0.004, 1.0, 86400.0, 5.0 * 86400.0),
            )
        ),
        physical_probability=0.35,
        delayed_end_probability=0.25,
        hold_skew_range=(3.0, 25.0),
        protocol_skew_range=(0.0, 14.0),
        suppress_whole_flap=0.26,
        suppress_whole_long=0.15,
        suppress_whole_base=0.035,
        suppress_long_threshold=3600.0,
        suppress_down_extra_flap=0.02,
        suppress_down_extra_base=0.005,
        suppress_up_extra_flap=0.06,
        reminder_down_probability=0.35,
        reminder_up_probability=0.015,
        handshake_abort_probability=0.13,
        adjacency_reset_probability=0.10,
        media_flap_rate=5.5,
        media_flap_extra_mean=2.0,
        media_flap_max_events=8,
        media_flap_gap_mean=45.0,
        media_flap_duration_range=(2.0, 18.0),
    )


def _cpe_profile() -> LinkClassProfile:
    # Calibration targets (paper Table 5, CPE/IS-IS column): median 12.3 and
    # mean 45.5 failures per link-year; median duration 12 s, mean ~1100 s;
    # median downtime 2.4 h/yr, mean 14 h/yr.
    return LinkClassProfile(
        episode_rate_median=9.5,
        episode_rate_sigma=1.54,
        flap_probability=0.15,
        flap_extra_failures_mean=2.0,
        flap_max_failures=30,
        flap_gap_mean=60.0,
        flap_gap_max=550.0,
        flap_duration=DurationMixture(
            components=(
                (0.85, 1.3, 2.0, 30.0),
                (0.15, 1.2, 10.0, 240.0),
            )
        ),
        isolated_duration=DurationMixture(
            components=(
                (0.440, 1.0, 3.0, 30.0),
                (0.300, 1.0, 10.0, 600.0),
                (0.158, 1.0, 60.0, 3600.0),
                (0.098, 1.0, 3600.0, 86400.0),
                (0.004, 1.0, 86400.0, 5.0 * 86400.0),
            )
        ),
        physical_probability=0.35,
        delayed_end_probability=0.25,
        hold_skew_range=(3.0, 25.0),
        protocol_skew_range=(0.0, 14.0),
        suppress_whole_flap=0.26,
        suppress_whole_long=0.15,
        suppress_whole_base=0.035,
        suppress_long_threshold=3600.0,
        suppress_down_extra_flap=0.02,
        suppress_down_extra_base=0.005,
        suppress_up_extra_flap=0.06,
        reminder_down_probability=0.35,
        reminder_up_probability=0.015,
        handshake_abort_probability=0.15,
        adjacency_reset_probability=0.12,
        media_flap_rate=9.0,
        media_flap_extra_mean=2.5,
        media_flap_max_events=10,
        media_flap_gap_mean=40.0,
        media_flap_duration_range=(2.0, 18.0),
    )


@dataclass(frozen=True)
class WorkloadParameters:
    """The full workload: one profile per link class."""

    core: LinkClassProfile = field(default_factory=_core_profile)
    cpe: LinkClassProfile = field(default_factory=_cpe_profile)


def cenic_default_workload() -> WorkloadParameters:
    """The CENIC-calibrated default workload (see module docstring)."""
    return WorkloadParameters()
