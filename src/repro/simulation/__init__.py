"""Failure-injection simulation of the CENIC measurement environment.

This package generates the data the paper collected but we cannot obtain:
thirteen months of contemporaneous syslog and IS-IS observations of the same
underlying failure process.  The pieces:

* :mod:`repro.simulation.engine` — a minimal discrete-event engine;
* :mod:`repro.simulation.workload` — per-link-class failure profiles
  (rates, duration mixtures, flapping, causes) with CENIC-calibrated
  defaults;
* :mod:`repro.simulation.failures` — the ground-truth generator: seeded,
  non-overlapping failure histories plus media-flap noise per link;
* :mod:`repro.simulation.router` — routers that react to injected events by
  emitting syslog messages and regenerating/flooding LSPs (with coalescing);
* :mod:`repro.simulation.listenerhost` — the listener's own availability
  (outages and post-outage database resync);
* :mod:`repro.simulation.scenario` — end-to-end orchestration producing a
  :class:`~repro.simulation.dataset.Dataset`;
* :mod:`repro.simulation.dataset` — the bundle of everything an analysis
  consumes: config archive, syslog log text, LSP byte records, ground
  truth, listener outages, and trouble tickets.
"""

from repro.simulation.engine import EventQueue
from repro.simulation.workload import (
    DurationMixture,
    LinkClassProfile,
    WorkloadParameters,
    cenic_default_workload,
)
from repro.simulation.failures import (
    FailureCause,
    GroundTruthFailure,
    LinkWorkload,
    MediaFlapEvent,
    PseudoEventKind,
    generate_link_workload,
)
from repro.simulation.router import SimulatedRouter
from repro.simulation.listenerhost import ListenerHost, OutageParameters
from repro.simulation.dataset import Dataset, DatasetSummary
from repro.simulation.scenario import ScenarioConfig, ScenarioRunner, run_scenario

__all__ = [
    "EventQueue",
    "DurationMixture",
    "LinkClassProfile",
    "WorkloadParameters",
    "cenic_default_workload",
    "FailureCause",
    "GroundTruthFailure",
    "LinkWorkload",
    "MediaFlapEvent",
    "PseudoEventKind",
    "generate_link_workload",
    "SimulatedRouter",
    "ListenerHost",
    "OutageParameters",
    "Dataset",
    "DatasetSummary",
    "ScenarioConfig",
    "ScenarioRunner",
    "run_scenario",
]
