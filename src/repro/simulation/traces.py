"""Failure-trace import/export: CSV in, CSV out, trace-driven campaigns.

Two use cases:

* **export** — dump a campaign's ground truth (or a channel's
  reconstruction) as a flat CSV for external tooling;
* **import/replay** — drive the whole measurement simulation from a
  *user-supplied* failure trace instead of the stochastic workload: take
  your own network's outage log, map it onto the simulated topology, and
  see what syslog/IS-IS/SNMP would each have reported of it.

The CSV schema is deliberately minimal — one row per failure:

    link_id,start,end,cause,flap_member

``cause`` is ``physical``/``protocol``; unknown columns are ignored so
traces exported with extra annotations round-trip.  On import, the
observation-shaping choices the generator normally draws (first detector,
skews, suppression, blips) are re-drawn deterministically from a seed, so
a replay is reproducible without requiring those internals in the file.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.simulation.failures import (
    FailureCause,
    GroundTruthFailure,
    LinkWorkload,
    _build_failure,
)
from repro.simulation.workload import LinkClassProfile, cenic_default_workload
from repro.topology.model import LinkClass, Network
from repro.util.rand import child_rng

_HEADER = ["link_id", "start", "end", "cause", "flap_member"]


def export_failures_csv(
    failures: Sequence[GroundTruthFailure],
) -> str:
    """Serialise ground-truth failures to the trace CSV schema."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_HEADER)
    for failure in failures:
        writer.writerow(
            [
                failure.link_id,
                f"{failure.start:.3f}",
                f"{failure.end:.3f}",
                failure.cause.value,
                int(failure.flap_member),
            ]
        )
    return buffer.getvalue()


def write_failures_csv(
    failures: Sequence[GroundTruthFailure], path: Union[str, Path]
) -> None:
    Path(path).write_text(export_failures_csv(failures), encoding="utf-8")


class TraceFormatError(ValueError):
    """Raised when a trace file violates the schema."""


def parse_trace_csv(text: str) -> List[Tuple[str, float, float, FailureCause, bool]]:
    """Parse trace CSV into raw rows (no topology validation yet)."""
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None or not set(_HEADER[:3]) <= set(reader.fieldnames):
        raise TraceFormatError(
            f"trace must have at least columns {_HEADER[:3]}"
        )
    rows = []
    for line_number, row in enumerate(reader, start=2):
        try:
            start = float(row["start"])
            end = float(row["end"])
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(f"line {line_number}: bad times") from exc
        if end <= start:
            raise TraceFormatError(
                f"line {line_number}: end must exceed start"
            )
        cause_text = (row.get("cause") or "protocol").strip().lower()
        try:
            cause = FailureCause(cause_text)
        except ValueError as exc:
            raise TraceFormatError(
                f"line {line_number}: unknown cause {cause_text!r}"
            ) from exc
        flap_text = (row.get("flap_member") or "0").strip().lower()
        flap = flap_text in ("1", "true", "yes")
        rows.append((row["link_id"], start, end, cause, flap))
    return rows


def workloads_from_trace(
    text: str,
    network: Network,
    seed: int,
    profiles: Dict[LinkClass, LinkClassProfile] = None,
) -> List[LinkWorkload]:
    """Turn a trace into per-link workloads ready for the scenario runner.

    Observation-shaping randomness (detector choice, skews, suppression,
    blips) is re-drawn per link from ``seed`` using the class profile's
    probabilities; the trace fixes link, timing, cause, and flap flags.
    Failures on one link must not overlap.  The imported trace replaces
    the stochastic failure schedule; media flaps are not generated (a
    trace records failures, not carrier noise).
    """
    if profiles is None:
        defaults = cenic_default_workload()
        profiles = {LinkClass.CORE: defaults.core, LinkClass.CPE: defaults.cpe}

    rows = parse_trace_csv(text)
    by_link: Dict[str, List[Tuple[float, float, FailureCause, bool]]] = {}
    for link_id, start, end, cause, flap in rows:
        if link_id not in network.links:
            raise TraceFormatError(f"unknown link id {link_id!r}")
        by_link.setdefault(link_id, []).append((start, end, cause, flap))

    workloads: List[LinkWorkload] = []
    for link_id in sorted(by_link):
        link = network.links[link_id]
        profile = profiles[link.link_class]
        rng = child_rng(seed, f"trace:{link_id}")
        ordered = sorted(by_link[link_id])
        for (s1, e1, *_), (s2, *_rest) in zip(ordered, ordered[1:]):
            if s2 < e1:
                raise TraceFormatError(
                    f"overlapping failures on {link_id} at {s2:.1f}"
                )
        workload = LinkWorkload(link_id=link_id, episode_rate=0.0)
        episode = 0
        for start, end, cause, flap in ordered:
            episode += 1
            failure = _build_failure(
                rng,
                link_id,
                (link.router_a, link.router_b),
                profile,
                start,
                end - start,
                episode,
                flap_member=flap,
            )
            # _build_failure re-draws the cause; pin the trace's.
            if failure.cause is not cause:
                failure = _pin_cause(failure, cause, rng, profile)
            workload.failures.append(failure)
        workloads.append(workload)
    return workloads


def _pin_cause(
    failure: GroundTruthFailure,
    cause: FailureCause,
    rng,
    profile: LinkClassProfile,
) -> GroundTruthFailure:
    """Rebuild per-cause detection fields for a trace-pinned cause."""
    import dataclasses

    if cause is FailureCause.PHYSICAL:
        delayed = rng.random() < profile.delayed_end_probability
        skew = (
            rng.uniform(*profile.hold_skew_range)
            if delayed
            else rng.uniform(0.0, 1.5)
        )
    else:
        delayed = False
        skew = rng.uniform(*profile.protocol_skew_range)
    if failure.flap_member:
        delayed = False
        skew = min(skew, rng.uniform(0.0, 1.0))
    return dataclasses.replace(
        failure, cause=cause, delayed_second=delayed, second_skew=skew
    )


def read_trace_file(path: Union[str, Path]) -> str:
    return Path(path).read_text(encoding="utf-8")
