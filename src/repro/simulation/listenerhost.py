"""The listener host's own availability.

The paper's sanitisation step removes failures "that span periods when the
IS-IS listener was offline" (§4.2) — the listener is a server and servers go
down.  :class:`ListenerHost` draws outage windows over the horizon, decides
whether an LSP arriving at a given time is recorded, and marks the resync
moments at which the listener, freshly restarted, re-learns the current
database (via CSNP exchange with its attachment router).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.intervals import Interval, IntervalSet
from repro.util.rand import pareto_bounded


@dataclass(frozen=True)
class OutageParameters:
    """How often and how long the listener itself is down."""

    #: Outages per year (Poisson arrivals).
    rate_per_year: float = 5.0
    #: Bounded-Pareto outage duration (seconds): half an hour to two days.
    duration_shape: float = 0.8
    duration_min: float = 1800.0
    duration_max: float = 2.0 * 86400.0
    #: Delay after restart before the database resync completes.
    resync_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.rate_per_year < 0:
            raise ValueError("outage rate must be non-negative")
        if not 0 < self.duration_min < self.duration_max:
            raise ValueError("outage duration bounds must satisfy 0 < min < max")


class ListenerHost:
    """Outage windows and the recorded/dropped decision for arrivals."""

    def __init__(
        self,
        rng: random.Random,
        horizon_start: float,
        horizon_end: float,
        parameters: OutageParameters = OutageParameters(),
    ) -> None:
        if horizon_end <= horizon_start:
            raise ValueError("empty horizon")
        self.parameters = parameters
        self.horizon_start = horizon_start
        self.horizon_end = horizon_end
        self.outages = self._draw_outages(rng)

    def _draw_outages(self, rng: random.Random) -> IntervalSet:
        p = self.parameters
        if p.rate_per_year == 0:
            return IntervalSet()
        seconds_per_year = 365.0 * 86400.0
        rate_per_second = p.rate_per_year / seconds_per_year
        windows: List[Interval] = []
        t = self.horizon_start + rng.expovariate(rate_per_second)
        while t < self.horizon_end:
            duration = pareto_bounded(
                rng, p.duration_shape, p.duration_min, p.duration_max
            )
            end = min(t + duration, self.horizon_end)
            windows.append(Interval(t, end))
            t = end + rng.expovariate(rate_per_second)
        return IntervalSet(windows)

    def is_online(self, time: float) -> bool:
        """True when the listener records an LSP arriving at ``time``."""
        return not self.outages.contains(time)

    def resync_times(self) -> List[float]:
        """Times at which a post-restart database resync completes."""
        return [
            outage.end + self.parameters.resync_delay
            for outage in self.outages
            if outage.end < self.horizon_end
        ]
