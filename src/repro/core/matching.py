"""Matching transitions and failures across channels (§3.4).

Two failures **match** when they are on the same link with start times
within the matching window and end times within the window; a transition
and a message match when they share link and direction within the window.
The paper chose ten seconds after observing a knee in the
window-size-vs-matched-downtime curve — reproduced by the window-sweep
ablation bench.

Three queries cover the paper's tables:

* :func:`transition_match_fraction` — Table 2's cells: what fraction of a
  reference transition set has at least one matching syslog message of a
  given category;
* :func:`count_matching_reporters` — Table 3: for each IS-IS transition,
  did zero, one, or both of the link's routers send a matching message;
* :func:`match_failures` — Table 4's overlap and §4.3's false positives:
  greedy one-to-one failure matching plus partial-overlap accounting.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import (
    FailureEvent,
    LinkMessage,
    Transition,
    failure_sort_key,
)
from repro.intervals.timeline import LinkStateTimeline


@dataclass(frozen=True)
class MatchConfig:
    """The matching window of §3.4 (seconds, applied to starts and ends)."""

    window: float = 10.0

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError("matching window must be non-negative")


class _MessageIndex:
    """(link, direction) → sorted message times, for windowed lookups."""

    def __init__(self, messages: Sequence[LinkMessage]) -> None:
        self._times: Dict[Tuple[str, str], List[float]] = {}
        self._reporters: Dict[Tuple[str, str], List[Tuple[float, str]]] = {}
        for message in messages:
            key = (message.link, message.direction)
            self._times.setdefault(key, []).append(message.time)
            self._reporters.setdefault(key, []).append((message.time, message.reporter))
        for key in self._times:
            self._times[key].sort()
            self._reporters[key].sort()

    def any_within(self, link: str, direction: str, time: float, window: float) -> bool:
        times = self._times.get((link, direction))
        if not times:
            return False
        index = bisect.bisect_left(times, time - window)
        return index < len(times) and times[index] <= time + window

    def reporters_within(
        self, link: str, direction: str, time: float, window: float
    ) -> frozenset:
        entries = self._reporters.get((link, direction), [])
        index = bisect.bisect_left(entries, (time - window, ""))
        found = set()
        while index < len(entries) and entries[index][0] <= time + window:
            found.add(entries[index][1])
            index += 1
        return frozenset(found)


def transition_match_fraction(
    reference: Sequence[Transition],
    messages: Sequence[LinkMessage],
    config: MatchConfig = MatchConfig(),
) -> Dict[str, float]:
    """Fraction of reference transitions matched by ≥1 message, by direction.

    This is one cell of Table 2: e.g. reference = IP-reachability
    transitions, messages = syslog physical-media messages.
    """
    index = _MessageIndex(messages)
    matched = {"down": 0, "up": 0}
    totals = {"down": 0, "up": 0}
    for transition in reference:
        totals[transition.direction] += 1
        if index.any_within(
            transition.link, transition.direction, transition.time, config.window
        ):
            matched[transition.direction] += 1
    return {
        direction: (matched[direction] / totals[direction]) if totals[direction] else 0.0
        for direction in ("down", "up")
    }


@dataclass
class TransitionCoverage:
    """Table 3: reference transitions by how many distinct routers matched."""

    #: counts[direction][n] where n is 0 ("None"), 1 ("One"), 2 ("Both").
    counts: Dict[str, Dict[int, int]] = field(
        default_factory=lambda: {"down": {0: 0, 1: 0, 2: 0}, "up": {0: 0, 1: 0, 2: 0}}
    )
    #: The transitions that matched no message, for flap attribution (§4.1).
    unmatched: List[Transition] = field(default_factory=list)

    def total(self, direction: str) -> int:
        return sum(self.counts[direction].values())

    def fraction(self, direction: str, bucket: int) -> float:
        total = self.total(direction)
        return self.counts[direction][bucket] / total if total else 0.0


def count_matching_reporters(
    reference: Sequence[Transition],
    messages: Sequence[LinkMessage],
    config: MatchConfig = MatchConfig(),
) -> TransitionCoverage:
    """For each reference transition, how many distinct routers reported it."""
    index = _MessageIndex(messages)
    coverage = TransitionCoverage()
    for transition in reference:
        reporters = index.reporters_within(
            transition.link, transition.direction, transition.time, config.window
        )
        bucket = min(len(reporters), 2)
        coverage.counts[transition.direction][bucket] += 1
        if bucket == 0:
            coverage.unmatched.append(transition)
    return coverage


class _OverlapIndex:
    """O(log n) positive-measure overlap queries over one link's failures.

    Failures are kept sorted by start alongside a running maximum of their
    ends; ``[start, end)`` overlaps some failure exactly when, among the
    failures starting before ``end``, the furthest-reaching one extends
    past ``start``.
    """

    __slots__ = ("_starts", "_max_end")

    def __init__(self, failures: Sequence[FailureEvent]) -> None:
        ordered = sorted(failures, key=lambda f: f.start)
        self._starts = [f.start for f in ordered]
        self._max_end: List[float] = []
        running = float("-inf")
        for failure in ordered:
            running = max(running, failure.end)
            self._max_end.append(running)

    def overlaps(self, start: float, end: float) -> bool:
        """True when some indexed failure overlaps ``[start, end)``."""
        before = bisect.bisect_left(self._starts, end)
        return before > 0 and self._max_end[before - 1] > start


@dataclass
class FailureMatchResult:
    """Greedy one-to-one failure matching between two channels."""

    pairs: List[Tuple[FailureEvent, FailureEvent]] = field(default_factory=list)
    only_a: List[FailureEvent] = field(default_factory=list)
    only_b: List[FailureEvent] = field(default_factory=list)
    #: Unmatched failures that nevertheless overlap something on the other
    #: side — the paper's "partial" matches.
    partial_a: List[FailureEvent] = field(default_factory=list)
    partial_b: List[FailureEvent] = field(default_factory=list)

    @property
    def matched_count(self) -> int:
        return len(self.pairs)


def match_failures(
    failures_a: Sequence[FailureEvent],
    failures_b: Sequence[FailureEvent],
    config: MatchConfig = MatchConfig(),
) -> FailureMatchResult:
    """Match failures across channels per §3.4's definition.

    Matching is greedy in time order and one-to-one: each ``a`` failure
    takes the earliest unconsumed ``b`` failure on the same link whose start
    and end both fall within the window.  Unmatched failures that still
    intersect some failure on the other side are recorded as partial.
    """
    result = FailureMatchResult()
    by_link_b: Dict[str, List[FailureEvent]] = {}
    for failure in failures_b:
        by_link_b.setdefault(failure.link, []).append(failure)
    for link in by_link_b:
        by_link_b[link].sort(key=lambda f: f.start)

    consumed: Dict[str, List[bool]] = {
        link: [False] * len(items) for link, items in by_link_b.items()
    }
    # Per-link advancing lower bound over the scan: everything below it is
    # either consumed or starts more than a window before the current
    # ``a``-failure.  Since ``a``-failures are processed in ascending start
    # order, neither kind can ever match again, so each candidate is passed
    # over at most once — O(n + window occupancy) per link instead of the
    # O(n²) rescan that blows up on a single flapping link (§4.1).
    scan_floor: Dict[str, int] = {}

    for failure in sorted(failures_a, key=failure_sort_key):
        candidates = by_link_b.get(failure.link, [])
        used = consumed.get(failure.link, [])
        floor = scan_floor.get(failure.link, 0)
        while floor < len(candidates) and (
            used[floor]
            or candidates[floor].start < failure.start - config.window
        ):
            floor += 1
        scan_floor[failure.link] = floor
        match_index: Optional[int] = None
        for i in range(floor, len(candidates)):
            candidate = candidates[i]
            if used[i]:
                continue
            if candidate.start > failure.start + config.window:
                break
            if (
                abs(candidate.start - failure.start) <= config.window
                and abs(candidate.end - failure.end) <= config.window
            ):
                match_index = i
                break
        if match_index is None:
            result.only_a.append(failure)
        else:
            used[match_index] = True
            result.pairs.append((failure, candidates[match_index]))

    for link, candidates in sorted(by_link_b.items()):
        for i, candidate in enumerate(candidates):
            if not consumed[link][i]:
                result.only_b.append(candidate)
    result.only_b.sort(key=failure_sort_key)

    # Partial-overlap accounting for the unmatched remainder.  An overlap
    # index answers "does anything on this link overlap [start, end)?" in
    # O(log n) — the linear scan it replaces is the other O(n²) blow-up on
    # a flapping link.
    a_by_link: Dict[str, List[FailureEvent]] = {}
    for failure in failures_a:
        a_by_link.setdefault(failure.link, []).append(failure)
    b_overlap = {link: _OverlapIndex(items) for link, items in by_link_b.items()}
    a_overlap = {link: _OverlapIndex(items) for link, items in a_by_link.items()}
    result.partial_a = [
        failure
        for failure in result.only_a
        if failure.link in b_overlap
        and b_overlap[failure.link].overlaps(failure.start, failure.end)
    ]
    result.partial_b = [
        failure
        for failure in result.only_b
        if failure.link in a_overlap
        and a_overlap[failure.link].overlaps(failure.start, failure.end)
    ]
    return result


def downtime_overlap_seconds(
    timelines_a: Dict[str, LinkStateTimeline],
    timelines_b: Dict[str, LinkStateTimeline],
) -> float:
    """Seconds during which both channels agree a link is down (Table 4)."""
    total = 0.0
    for link, timeline_a in timelines_a.items():
        timeline_b = timelines_b.get(link)
        if timeline_b is None:
            continue
        total += (
            timeline_a.down_intervals.intersection(timeline_b.down_intervals)
        ).total_duration()
    return total
