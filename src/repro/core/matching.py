"""Matching transitions and failures across channels (§3.4).

Two failures **match** when they are on the same link with start times
within the matching window and end times within the window; a transition
and a message match when they share link and direction within the window.
The paper chose ten seconds after observing a knee in the
window-size-vs-matched-downtime curve — reproduced by the window-sweep
ablation bench.

Three queries cover the paper's tables:

* :func:`transition_match_fraction` — Table 2's cells: what fraction of a
  reference transition set has at least one matching syslog message of a
  given category;
* :func:`count_matching_reporters` — Table 3: for each IS-IS transition,
  did zero, one, or both of the link's routers send a matching message;
* :func:`match_failures` — Table 4's overlap and §4.3's false positives:
  greedy one-to-one failure matching plus partial-overlap accounting.

The failure matcher and the Table 3 scorer are the canonical engine
machines (:class:`repro.engine.matching.Matcher`,
:class:`repro.engine.matching.CoverageScorer`); this module hosts their
batch drivers, which feed to exhaustion with infinite frontiers.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.events import (
    FailureEvent,
    LinkMessage,
    Transition,
    failure_sort_key,
    message_sort_key,
)
from repro.engine.matching import (
    CoverageScorer,
    FailureMatchResult,
    Matcher,
    TransitionCoverage,
)
from repro.intervals.timeline import LinkStateTimeline

__all__ = [
    "FailureMatchResult",
    "MatchConfig",
    "TransitionCoverage",
    "count_matching_reporters",
    "downtime_overlap_seconds",
    "match_failures",
    "transition_match_fraction",
]


@dataclass(frozen=True)
class MatchConfig:
    """The matching window of §3.4 (seconds, applied to starts and ends)."""

    window: float = 10.0

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError("matching window must be non-negative")


class _MessageIndex:
    """(link, direction) → sorted message times, for windowed lookups."""

    def __init__(self, messages: Sequence[LinkMessage]) -> None:
        self._times: Dict[Tuple[str, str], List[float]] = {}
        self._reporters: Dict[Tuple[str, str], List[Tuple[float, str]]] = {}
        for message in messages:
            key = (message.link, message.direction)
            self._times.setdefault(key, []).append(message.time)
            self._reporters.setdefault(key, []).append((message.time, message.reporter))
        for key in self._times:
            self._times[key].sort()
            self._reporters[key].sort()

    def any_within(self, link: str, direction: str, time: float, window: float) -> bool:
        times = self._times.get((link, direction))
        if not times:
            return False
        index = bisect.bisect_left(times, time - window)
        return index < len(times) and times[index] <= time + window


def transition_match_fraction(
    reference: Sequence[Transition],
    messages: Sequence[LinkMessage],
    config: MatchConfig = MatchConfig(),
) -> Dict[str, float]:
    """Fraction of reference transitions matched by ≥1 message, by direction.

    This is one cell of Table 2: e.g. reference = IP-reachability
    transitions, messages = syslog physical-media messages.
    """
    index = _MessageIndex(messages)
    matched = {"down": 0, "up": 0}
    totals = {"down": 0, "up": 0}
    for transition in reference:
        totals[transition.direction] += 1
        if index.any_within(
            transition.link, transition.direction, transition.time, config.window
        ):
            matched[transition.direction] += 1
    return {
        direction: (matched[direction] / totals[direction]) if totals[direction] else 0.0
        for direction in ("down", "up")
    }


def count_matching_reporters(
    reference: Sequence[Transition],
    messages: Sequence[LinkMessage],
    config: MatchConfig = MatchConfig(),
) -> TransitionCoverage:
    """For each reference transition, how many distinct routers reported it."""
    scorer = CoverageScorer(config.window)
    for message in sorted(messages, key=message_sort_key):
        scorer.feed(message)
    for transition in reference:
        scorer.feed(transition)
    scorer.flush()
    coverage = TransitionCoverage()
    coverage.counts = {
        direction: dict(buckets) for direction, buckets in scorer.counts.items()
    }
    # Unmatched transitions keep the reference input order (the batch
    # contract); result() would impose the stream's (time, link) order.
    coverage.unmatched = list(scorer.unmatched)
    return coverage


def match_failures(
    failures_a: Sequence[FailureEvent],
    failures_b: Sequence[FailureEvent],
    config: MatchConfig = MatchConfig(),
) -> FailureMatchResult:
    """Match failures across channels per §3.4's definition.

    Matching is greedy in time order and one-to-one: each ``a`` failure
    takes the earliest unconsumed ``b`` failure on the same link whose start
    and end both fall within the window.  Unmatched failures that still
    intersect some failure on the other side are recorded as partial.
    """
    matcher = Matcher(config.window)
    for failure in sorted(failures_a, key=failure_sort_key):
        matcher.feed("a", failure)
    for failure in sorted(failures_b, key=failure_sort_key):
        matcher.feed("b", failure)
    matcher.flush()
    return matcher.result()


def downtime_overlap_seconds(
    timelines_a: Dict[str, LinkStateTimeline],
    timelines_b: Dict[str, LinkStateTimeline],
) -> float:
    """Seconds during which both channels agree a link is down (Table 4)."""
    total = 0.0
    for link, timeline_a in timelines_a.items():
        timeline_b = timelines_b.get(link)
        if timeline_b is None:
            continue
        total += (
            timeline_a.down_intervals.intersection(timeline_b.down_intervals)
        ).total_duration()
    return total
