"""Failure cause attribution from syslog message content.

One thing syslog can do that the IS-IS channel cannot: *explain* itself.
Cisco's cause phrases distinguish an interface that physically died
("interface state down") from an adjacency that timed out over healthy
media ("hold time expired"), and mark the recovery blips ("adjacency
reset", "3-way handshake failed").  The authors' earlier SIGCOMM 2010
study leaned on exactly this to attribute failure causes; this module
reproduces that attribution and — because the simulator knows every
failure's true cause — grades it.

The inherent confusion: a *physical* failure is only logged as
"interface state down" at ends that saw carrier loss; the far end of a
unidirectional fault times out like any protocol failure, so one-sided
evidence misattributes it.  The classifier therefore reports PHYSICAL if
**any** surviving message says so, which is right unless every
carrier-loss message was lost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.events import FailureEvent
from repro.core.matching import MatchConfig
from repro.simulation.dataset import Dataset
from repro.simulation.failures import FailureCause


class AttributedCause(enum.Enum):
    """What the syslog evidence says felled the link."""

    PHYSICAL = "physical"  # carrier loss logged at some end
    PROTOCOL = "protocol"  # only hold-timer expiries seen
    BLIP = "blip"  # reset / aborted-handshake phrases: not a real failure
    UNKNOWN = "unknown"  # no usable cause phrase survived


_PHYSICAL_PHRASES = ("interface state down",)
_PROTOCOL_PHRASES = ("hold time expired",)
_BLIP_PHRASES = ("adjacency reset", "3-way handshake failed")


def attribute_cause(failure: FailureEvent) -> AttributedCause:
    """Classify one syslog failure from its start transition's messages."""
    transition = failure.start_transition
    if transition is None or not transition.messages:
        return AttributedCause.UNKNOWN
    reasons = [m.reason for m in transition.messages if m.reason]
    if not reasons:
        return AttributedCause.UNKNOWN
    if any(any(p in r for p in _BLIP_PHRASES) for r in reasons):
        return AttributedCause.BLIP
    if any(any(p in r for p in _PHYSICAL_PHRASES) for r in reasons):
        return AttributedCause.PHYSICAL
    if any(any(p in r for p in _PROTOCOL_PHRASES) for r in reasons):
        return AttributedCause.PROTOCOL
    return AttributedCause.UNKNOWN


@dataclass
class CauseAttributionReport:
    """Attribution counts and, when truth is supplied, the confusion matrix."""

    counts: Dict[AttributedCause, int] = field(
        default_factory=lambda: {cause: 0 for cause in AttributedCause}
    )
    #: (true cause, attributed cause) -> count, for failures matched to truth.
    confusion: Dict[Tuple[FailureCause, AttributedCause], int] = field(
        default_factory=dict
    )
    graded_count: int = 0

    def accuracy(self) -> float:
        """Fraction of graded failures whose attribution names the true cause.

        Blip/unknown attributions count as wrong — they are failures the
        classifier could not (or refused to) explain.
        """
        if not self.graded_count:
            return 0.0
        correct = sum(
            count
            for (truth, attributed), count in self.confusion.items()
            if attributed.value == truth.value
        )
        return correct / self.graded_count


def attribute_failures(
    failures: Sequence[FailureEvent],
) -> CauseAttributionReport:
    """Attribute causes for a channel's failures (no grading)."""
    report = CauseAttributionReport()
    for failure in failures:
        report.counts[attribute_cause(failure)] += 1
    return report


def grade_attribution(
    failures: Sequence[FailureEvent],
    dataset: Dataset,
    config: MatchConfig = MatchConfig(),
) -> CauseAttributionReport:
    """Attribute causes and grade them against generative truth.

    Each syslog failure is matched (same ±window as everywhere else) to a
    ground-truth failure; matched pairs feed the confusion matrix.
    """
    report = attribute_failures(failures)
    network = dataset.network

    truth_by_link: Dict[str, List] = {}
    for gt in dataset.ground_truth_failures:
        canonical = network.links[gt.link_id].canonical_name
        truth_by_link.setdefault(canonical, []).append(gt)

    for failure in failures:
        attributed = attribute_cause(failure)
        match = None
        for gt in truth_by_link.get(failure.link, []):
            if (
                abs(gt.start - failure.start) <= config.window
                and abs(gt.end - failure.end) <= config.window
            ):
                match = gt
                break
        if match is None:
            continue
        key = (match.cause, attributed)
        report.confusion[key] = report.confusion.get(key, 0) + 1
        report.graded_count += 1
    return report
