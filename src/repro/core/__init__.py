"""The paper's contribution: failure analysis from syslog and IS-IS.

This package implements the methodology of §3.4 and the analyses of §4:

* :mod:`repro.core.events` — the common vocabulary (link-level transitions
  and failures) both observation channels are reduced to;
* :mod:`repro.core.links` — the common naming convention: resolving syslog
  ``(hostname, port)``, IS-IS ``(origin, neighbor)`` adjacencies, and /31
  prefixes onto canonical links via the mined config inventory;
* :mod:`repro.core.extract_syslog` / :mod:`repro.core.extract_isis` — per
  channel: raw records → per-router messages → merged link transitions →
  state timelines → failures;
* :mod:`repro.core.matching` — the ten-second transition and failure
  matching of §3.4, including Table 3's None/One/Both accounting;
* :mod:`repro.core.flapping` — the ten-minute flap rule of §4.1;
* :mod:`repro.core.sanitize` — §4.2's cleaning: listener-outage removal and
  ticket verification of >24 h failures;
* :mod:`repro.core.statistics` — Table 5 statistics, CDFs, and the KS
  consistency tests;
* :mod:`repro.core.false_positives` — §4.3's false-positive taxonomy;
* :mod:`repro.core.ambiguity` — §4.3's double-up/double-down analysis
  (Table 6) and the three correction strategies;
* :mod:`repro.core.isolation` — §4.4's customer isolation analysis;
* :mod:`repro.core.pipeline` — one call from dataset to full results;
* :mod:`repro.core.report` — plain-text table rendering for the benches.
"""

from repro.core.events import FailureEvent, LinkMessage, Transition
from repro.core.links import LinkRecord, LinkResolver
from repro.core.extract_syslog import (
    SyslogExtraction,
    SyslogExtractionConfig,
    extract_syslog,
)
from repro.core.extract_isis import (
    IsisExtraction,
    IsisExtractionConfig,
    extract_isis,
    replay_lsp_records,
)
from repro.core.matching import (
    FailureMatchResult,
    MatchConfig,
    TransitionCoverage,
    count_matching_reporters,
    match_failures,
    transition_match_fraction,
)
from repro.core.flapping import FlapEpisode, detect_flap_episodes, flap_intervals
from repro.core.sanitize import SanitizationConfig, SanitizationReport, sanitize_failures
from repro.core.statistics import (
    ClassStatistics,
    KsResult,
    annualized_downtime_hours,
    annualized_failure_counts,
    class_statistics,
    empirical_cdf,
    failure_durations,
    ks_compare,
    time_between_failures_hours,
)
from repro.core.false_positives import FalsePositiveReport, classify_false_positives
from repro.core.ambiguity import (
    AmbiguityCause,
    AmbiguityReport,
    StrategyEvaluation,
    analyze_ambiguous_transitions,
    evaluate_ambiguity_strategies,
)
from repro.core.isolation import (
    IsolationEvent,
    IsolationSummary,
    compute_isolation,
    isolation_summary,
    match_isolation_events,
)
from repro.core.causes import (
    AttributedCause,
    CauseAttributionReport,
    attribute_cause,
    attribute_failures,
    grade_attribution,
)
from repro.core.figures import figure1_svgs, render_cdf_svg, write_figure1
from repro.core.groundtruth import (
    ChannelGrade,
    grade_both_channels,
    grade_channel,
    ground_truth_failure_events,
)
from repro.core.pipeline import AnalysisOptions, AnalysisResult, run_analysis
from repro.core.report import render_table

__all__ = [
    "FailureEvent",
    "LinkMessage",
    "Transition",
    "LinkRecord",
    "LinkResolver",
    "SyslogExtraction",
    "SyslogExtractionConfig",
    "extract_syslog",
    "IsisExtraction",
    "IsisExtractionConfig",
    "extract_isis",
    "replay_lsp_records",
    "FailureMatchResult",
    "MatchConfig",
    "TransitionCoverage",
    "count_matching_reporters",
    "match_failures",
    "transition_match_fraction",
    "FlapEpisode",
    "detect_flap_episodes",
    "flap_intervals",
    "SanitizationConfig",
    "SanitizationReport",
    "sanitize_failures",
    "ClassStatistics",
    "KsResult",
    "annualized_downtime_hours",
    "annualized_failure_counts",
    "class_statistics",
    "empirical_cdf",
    "failure_durations",
    "ks_compare",
    "time_between_failures_hours",
    "FalsePositiveReport",
    "classify_false_positives",
    "AmbiguityCause",
    "AmbiguityReport",
    "StrategyEvaluation",
    "analyze_ambiguous_transitions",
    "evaluate_ambiguity_strategies",
    "IsolationEvent",
    "IsolationSummary",
    "compute_isolation",
    "isolation_summary",
    "match_isolation_events",
    "AttributedCause",
    "CauseAttributionReport",
    "attribute_cause",
    "attribute_failures",
    "grade_attribution",
    "figure1_svgs",
    "render_cdf_svg",
    "write_figure1",
    "ChannelGrade",
    "grade_both_channels",
    "grade_channel",
    "ground_truth_failure_events",
    "AnalysisOptions",
    "AnalysisResult",
    "run_analysis",
    "render_table",
]
