"""Failure statistics, CDFs, and KS consistency tests (§4.2).

Table 5 reports, per link class (Core/CPE) and channel (syslog/IS-IS):

* **annualised failures per link** — counts normalised to link lifetime
  (here: the analysis horizon, since simulated links live the whole study);
* **failure duration** (seconds, over individual failures);
* **time between failures** (hours, gaps between consecutive failures on
  the same link);
* **annualised link downtime** (hours per link-year).

Each metric is summarised by median / average / 95th percentile, and pairs
of channels are compared for distributional consistency with the two-sample
Kolmogorov–Smirnov test — the paper's finding being that failures-per-link
and downtime pass while failure duration does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.core.events import FailureEvent
from repro.core.links import LinkRecord
from repro.util.timefmt import SECONDS_PER_HOUR, SECONDS_PER_YEAR


@dataclass(frozen=True)
class SummaryStats:
    """Median / average / 95th percentile of a sample."""

    median: float
    average: float
    p95: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "SummaryStats":
        if not values:
            return cls(median=0.0, average=0.0, p95=0.0, count=0)
        array = np.asarray(values, dtype=float)
        return cls(
            median=float(np.median(array)),
            average=float(np.mean(array)),
            p95=float(np.percentile(array, 95)),
            count=len(values),
        )


@dataclass(frozen=True)
class ClassStatistics:
    """Table 5's four metrics for one link class and one channel."""

    failures_per_link_year: SummaryStats
    duration_seconds: SummaryStats
    time_between_failures_hours: SummaryStats
    downtime_hours_per_year: SummaryStats


def _horizon_years(horizon_start: float, horizon_end: float) -> float:
    years = (horizon_end - horizon_start) / SECONDS_PER_YEAR
    if years <= 0:
        raise ValueError("empty horizon")
    return years


def annualized_failure_counts(
    failures: Sequence[FailureEvent],
    links: Sequence[LinkRecord],
    horizon_start: float,
    horizon_end: float,
) -> Dict[str, float]:
    """Failures per link-year for every link (zero-failure links included)."""
    years = _horizon_years(horizon_start, horizon_end)
    counts: Dict[str, float] = {record.name: 0.0 for record in links}
    for failure in failures:
        if failure.link in counts:
            counts[failure.link] += 1.0
    return {link: count / years for link, count in counts.items()}


def failure_durations(failures: Sequence[FailureEvent]) -> List[float]:
    """Individual failure durations in seconds."""
    return [failure.duration for failure in failures]


def time_between_failures_hours(
    failures: Sequence[FailureEvent],
) -> List[float]:
    """Gaps between consecutive failures on the same link, in hours.

    Measured start-to-start minus the failure itself (i.e. the up time
    separating failure k's end from failure k+1's start).
    """
    by_link: Dict[str, List[FailureEvent]] = {}
    for failure in failures:
        by_link.setdefault(failure.link, []).append(failure)
    gaps: List[float] = []
    for _link, link_failures in sorted(by_link.items()):
        ordered = sorted(link_failures, key=lambda f: f.start)
        for previous, current in zip(ordered, ordered[1:]):
            gaps.append(max(0.0, current.start - previous.end) / SECONDS_PER_HOUR)
    return gaps


def annualized_downtime_hours(
    failures: Sequence[FailureEvent],
    links: Sequence[LinkRecord],
    horizon_start: float,
    horizon_end: float,
) -> Dict[str, float]:
    """Downtime hours per link-year for every link."""
    years = _horizon_years(horizon_start, horizon_end)
    downtime: Dict[str, float] = {record.name: 0.0 for record in links}
    for failure in failures:
        if failure.link in downtime:
            downtime[failure.link] += failure.duration
    return {
        link: seconds / SECONDS_PER_HOUR / years for link, seconds in downtime.items()
    }


def class_statistics(
    failures: Sequence[FailureEvent],
    links: Sequence[LinkRecord],
    horizon_start: float,
    horizon_end: float,
) -> ClassStatistics:
    """Table 5's metric block for one (link class, channel) cell.

    ``links`` selects the class: pass only the Core (or CPE) link records,
    and only failures on those links are counted.
    """
    names = {record.name for record in links}
    class_failures = [f for f in failures if f.link in names]
    per_link = annualized_failure_counts(
        class_failures, links, horizon_start, horizon_end
    )
    downtime = annualized_downtime_hours(
        class_failures, links, horizon_start, horizon_end
    )
    return ClassStatistics(
        failures_per_link_year=SummaryStats.from_values(list(per_link.values())),
        duration_seconds=SummaryStats.from_values(failure_durations(class_failures)),
        time_between_failures_hours=SummaryStats.from_values(
            time_between_failures_hours(class_failures)
        ),
        downtime_hours_per_year=SummaryStats.from_values(list(downtime.values())),
    )


@dataclass(frozen=True)
class KsResult:
    """Two-sample Kolmogorov–Smirnov outcome."""

    statistic: float
    pvalue: float
    alpha: float

    @property
    def consistent(self) -> bool:
        """True when the test does not reject distributional equality."""
        return self.pvalue >= self.alpha


def ks_compare(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    alpha: float = 0.05,
) -> KsResult:
    """Two-tailed two-sample KS test, the paper's goodness-of-fit check."""
    if not sample_a or not sample_b:
        raise ValueError("KS comparison needs non-empty samples")
    statistic, pvalue = scipy_stats.ks_2samp(sample_a, sample_b)
    return KsResult(statistic=float(statistic), pvalue=float(pvalue), alpha=alpha)


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted values and cumulative fractions, for Figure 1 style plots."""
    if not values:
        return np.array([]), np.array([])
    xs = np.sort(np.asarray(values, dtype=float))
    ys = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ys


def cdf_at(values: Sequence[float], probe_points: Sequence[float]) -> List[float]:
    """The empirical CDF evaluated at given points (for tabular benches)."""
    if not values:
        return [0.0 for _ in probe_points]
    xs = np.sort(np.asarray(values, dtype=float))
    return [float(np.searchsorted(xs, point, side="right")) / len(xs) for point in probe_points]
