"""Plain-text table rendering for the benchmark harness.

Benches print the same rows the paper's tables report; this helper keeps
the formatting consistent and readable in captured pytest output.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(['a', 'b'], [[1, 'x']], title='T'))
    T
    a  b
    -  -
    1  x
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError("row width disagrees with header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append(format_row(["-" * width for width in widths]))
    lines.extend(format_row(row) for row in materialised)
    return "\n".join(lines)


def format_percent(fraction: float, digits: int = 0) -> str:
    """``0.823 -> '82%'`` (or ``'82.3%'`` with ``digits=1``)."""
    return f"{100.0 * fraction:.{digits}f}%"


def format_hours(hours: float, digits: int = 0) -> str:
    return f"{hours:,.{digits}f}"
