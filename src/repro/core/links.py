"""The common naming convention: resolving observations onto links.

Syslog names links by ``(hostname, port)``; IS-IS LSPs name them by OSI
system IDs and /31 prefixes.  Neither can be compared directly, so the
paper maps both onto a canonical link name
``(host1:port1, host2:port2)`` derived from the mined configuration archive
(§3.4).  :class:`LinkResolver` is that mapping:

* ``resolve_port(router, port)`` — for syslog messages;
* ``resolve_adjacency(origin_sysid, neighbor_sysid)`` — for Extended IS
  Reachability changes; returns nothing for *multi-link* device pairs,
  which IS reachability cannot tell apart and the paper therefore omits;
* ``resolve_prefix(prefix)`` — for Extended IP Reachability changes, which
  identify individual physical links because every link has its own /31.

Link *classification* (Core vs CPE, Table 5's split) uses the hostname
conventions encoded in the configs, as an operator-side analysis would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.topology.configmine import MinedInventory, MinedLink


@dataclass(frozen=True)
class LinkRecord:
    """A canonical link as the analysis knows it."""

    name: str  # "(host1:port1, host2:port2)"
    router_a: str
    port_a: str
    router_b: str
    port_b: str
    subnet: int
    is_core: bool
    multi_link: bool  # True when its device pair has parallel links

    @property
    def device_pair(self) -> FrozenSet[str]:
        return frozenset((self.router_a, self.router_b))


def _hostname_is_core(hostname: str) -> bool:
    """CENIC-style role inference from the hostname.

    Backbone routers carry ``-core-`` or ``-agg-`` name stems; everything
    else is customer-premises equipment.
    """
    return "-core-" in hostname or "-agg-" in hostname


class LinkResolver:
    """Maps channel-native names onto canonical links (see module doc)."""

    def __init__(self, inventory: MinedInventory) -> None:
        pair_counts: Dict[FrozenSet[str], int] = {}
        for mined in inventory.links:
            pair = frozenset((mined.router_a, mined.router_b))
            pair_counts[pair] = pair_counts.get(pair, 0) + 1

        self._links: Dict[str, LinkRecord] = {}
        self._by_port: Dict[Tuple[str, str], LinkRecord] = {}
        self._by_subnet: Dict[int, LinkRecord] = {}
        self._by_pair: Dict[FrozenSet[str], List[LinkRecord]] = {}
        for mined in inventory.links:
            record = self._record_from_mined(mined, pair_counts)
            self._links[record.name] = record
            self._by_port[(record.router_a, record.port_a)] = record
            self._by_port[(record.router_b, record.port_b)] = record
            self._by_subnet[record.subnet] = record
            self._by_pair.setdefault(record.device_pair, []).append(record)

        self._hostname_by_sysid = dict(inventory.system_id_to_hostname)
        self._sysid_by_hostname = dict(inventory.hostname_to_system_id)

    @staticmethod
    def _record_from_mined(
        mined: MinedLink, pair_counts: Dict[FrozenSet[str], int]
    ) -> LinkRecord:
        pair = frozenset((mined.router_a, mined.router_b))
        both_core = _hostname_is_core(mined.router_a) and _hostname_is_core(
            mined.router_b
        )
        return LinkRecord(
            name=mined.canonical_name,
            router_a=mined.router_a,
            port_a=mined.port_a,
            router_b=mined.router_b,
            port_b=mined.port_b,
            subnet=mined.subnet,
            is_core=both_core,
            multi_link=pair_counts[pair] > 1,
        )

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._links)

    def links(self) -> List[LinkRecord]:
        """All canonical links, sorted by name."""
        return [self._links[name] for name in sorted(self._links)]

    def single_links(self) -> List[LinkRecord]:
        """Links whose device pair has no parallel links (IS-resolvable)."""
        return [record for record in self.links() if not record.multi_link]

    def record(self, name: str) -> LinkRecord:
        return self._links[name]

    def hostname_for(self, system_id: str) -> Optional[str]:
        return self._hostname_by_sysid.get(system_id)

    def system_id_for(self, hostname: str) -> Optional[str]:
        return self._sysid_by_hostname.get(hostname)

    # ---------------------------------------------------------- resolution
    def resolve_port(self, router: str, port: str) -> Optional[LinkRecord]:
        """The link behind a syslog message's (router, interface)."""
        return self._by_port.get((router, port))

    def resolve_prefix(self, prefix: int, prefix_length: int) -> Optional[LinkRecord]:
        """The link numbered from a /31; other prefixes are not links."""
        if prefix_length != 31:
            return None
        return self._by_subnet.get(prefix)

    def resolve_adjacency(
        self, origin_system_id: str, neighbor_system_id: str
    ) -> Tuple[Optional[LinkRecord], bool]:
        """The link behind an IS reachability change.

        Returns ``(record, is_multi_link)``.  ``record`` is ``None`` when
        the device pair is unknown **or** joined by parallel links — an IS
        reachability entry covers the whole pair, so no single physical link
        can be charged (§3.4); the flag distinguishes the two cases.
        """
        origin = self._hostname_by_sysid.get(origin_system_id)
        neighbor = self._hostname_by_sysid.get(neighbor_system_id)
        if origin is None or neighbor is None:
            return None, False
        candidates = self._by_pair.get(frozenset((origin, neighbor)), [])
        if not candidates:
            return None, False
        if len(candidates) > 1:
            return None, True
        return candidates[0], False

    def links_between(self, host_a: str, host_b: str) -> List[LinkRecord]:
        return list(self._by_pair.get(frozenset((host_a, host_b)), []))
