"""Batch driver for the canonical flap phase: the ten-minute rule of §4.1.

"Two or more consecutive failures on the same link separated by less than
10 minutes" form a flapping episode.  Flap periods matter because syslog's
reliability collapses inside them: the paper finds most unmatched IS-IS
transitions (67 % of DOWNs, 61 % of UPs) fall in flap periods, and less
than half of syslog's own transitions are matched there.

The rule itself lives in :class:`repro.engine.flaps.FlapDetector`,
shared by every execution mode; this module re-exports
:class:`~repro.engine.flaps.FlapEpisode` for compatibility and hosts the
batch driver plus the flap-interval queries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import FailureEvent, Transition
from repro.engine.flaps import FlapDetector, FlapEpisode
from repro.intervals import Interval, IntervalSet

__all__ = [
    "DEFAULT_FLAP_GAP",
    "FlapEpisode",
    "detect_flap_episodes",
    "flap_intervals",
    "in_flap",
    "transitions_in_flap",
]

#: §4.1's threshold: failures closer than this form one flapping episode.
DEFAULT_FLAP_GAP = 600.0


def detect_flap_episodes(
    failures: Sequence[FailureEvent],
    gap_threshold: float = DEFAULT_FLAP_GAP,
) -> List[FlapEpisode]:
    """Group failures into flap episodes per the ten-minute rule."""
    detector = FlapDetector(gap_threshold)
    by_link: Dict[str, List[FailureEvent]] = {}
    for failure in failures:
        by_link.setdefault(failure.link, []).append(failure)
    for link in sorted(by_link):
        for failure in sorted(by_link[link], key=lambda f: f.start):
            detector.feed(failure)
    detector.flush()
    return detector.result()


def flap_intervals(
    episodes: Sequence[FlapEpisode],
    guard: float = 0.0,
    horizon_start: Optional[float] = None,
) -> Dict[str, IntervalSet]:
    """Per-link interval sets covering flap episodes (± an optional guard).

    Guards are clipped at ``horizon_start`` when given — clamping at an
    absolute 0.0 would silently widen guards to the epoch on datasets
    whose time axis does not start at zero.
    """
    floor = 0.0 if horizon_start is None else horizon_start
    spans: Dict[str, List[Interval]] = {}
    for episode in episodes:
        spans.setdefault(episode.link, []).append(
            Interval(max(floor, episode.start - guard), episode.end + guard)
        )
    return {link: IntervalSet(items) for link, items in spans.items()}


def in_flap(
    intervals: Dict[str, IntervalSet], link: str, time: float
) -> bool:
    """True when ``time`` on ``link`` falls inside a flap episode."""
    interval_set = intervals.get(link)
    return interval_set is not None and interval_set.contains(time)


def transitions_in_flap(
    transitions: Sequence[Transition],
    intervals: Dict[str, IntervalSet],
) -> Tuple[List[Transition], List[Transition]]:
    """Split transitions into (inside flap, outside flap)."""
    inside: List[Transition] = []
    outside: List[Transition] = []
    for transition in transitions:
        if in_flap(intervals, transition.link, transition.time):
            inside.append(transition)
        else:
            outside.append(transition)
    return inside, outside
