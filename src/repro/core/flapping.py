"""Flap detection: the ten-minute rule of §4.1.

"Two or more consecutive failures on the same link separated by less than
10 minutes" form a flapping episode.  Flap periods matter because syslog's
reliability collapses inside them: the paper finds most unmatched IS-IS
transitions (67 % of DOWNs, 61 % of UPs) fall in flap periods, and less
than half of syslog's own transitions are matched there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.events import FailureEvent, Transition, failure_sort_key
from repro.intervals import Interval, IntervalSet

#: §4.1's threshold: failures closer than this form one flapping episode.
DEFAULT_FLAP_GAP = 600.0


@dataclass(frozen=True)
class FlapEpisode:
    """A run of rapid consecutive failures on one link.

    An episode may have zero duration: two or more zero-duration failures
    at the same instant (a sanitised double-down/double-up burst) are
    still a flap under the ten-minute rule.  Only ``end < start`` is an
    error.
    """

    link: str
    start: float
    end: float
    failure_count: int

    def __post_init__(self) -> None:
        if self.failure_count < 2:
            raise ValueError("a flap episode needs at least two failures")
        if self.end < self.start:
            raise ValueError("flap episode end precedes its start")

    @property
    def span(self) -> Interval:
        return Interval(self.start, self.end)


def detect_flap_episodes(
    failures: Sequence[FailureEvent],
    gap_threshold: float = DEFAULT_FLAP_GAP,
) -> List[FlapEpisode]:
    """Group failures into flap episodes per the ten-minute rule."""
    if gap_threshold <= 0:
        raise ValueError("gap threshold must be positive")
    by_link: Dict[str, List[FailureEvent]] = {}
    for failure in failures:
        by_link.setdefault(failure.link, []).append(failure)

    episodes: List[FlapEpisode] = []
    for link in sorted(by_link):
        ordered = sorted(by_link[link], key=lambda f: f.start)
        run: List[FailureEvent] = []
        for failure in ordered:
            if run and failure.start - run[-1].end < gap_threshold:
                run.append(failure)
                continue
            if len(run) >= 2:
                episodes.append(
                    FlapEpisode(link, run[0].start, run[-1].end, len(run))
                )
            run = [failure]
        if len(run) >= 2:
            episodes.append(FlapEpisode(link, run[0].start, run[-1].end, len(run)))
    episodes.sort(key=failure_sort_key)
    return episodes


def flap_intervals(
    episodes: Sequence[FlapEpisode],
    guard: float = 0.0,
) -> Dict[str, IntervalSet]:
    """Per-link interval sets covering flap episodes (± an optional guard)."""
    spans: Dict[str, List[Interval]] = {}
    for episode in episodes:
        spans.setdefault(episode.link, []).append(
            Interval(max(0.0, episode.start - guard), episode.end + guard)
        )
    return {link: IntervalSet(items) for link, items in spans.items()}


def in_flap(
    intervals: Dict[str, IntervalSet], link: str, time: float
) -> bool:
    """True when ``time`` on ``link`` falls inside a flap episode."""
    interval_set = intervals.get(link)
    return interval_set is not None and interval_set.contains(time)


def transitions_in_flap(
    transitions: Sequence[Transition],
    intervals: Dict[str, IntervalSet],
) -> Tuple[List[Transition], List[Transition]]:
    """Split transitions into (inside flap, outside flap)."""
    inside: List[Transition] = []
    outside: List[Transition] = []
    for transition in transitions:
        if in_flap(intervals, transition.link, transition.time):
            inside.append(transition)
        else:
            outside.append(transition)
    return inside, outside
