"""Rendering Figure 1: CDF plots as standalone SVG files.

The environment this library targets is offline and matplotlib-free, so a
small purpose-built SVG renderer handles the one plot family the paper
needs: step CDFs with a log-scaled x axis, two series (syslog vs IS-IS),
axes, ticks, and a legend.  The output is plain SVG 1.1 — viewable in any
browser and diffable in review.

`figure1_svgs` produces the paper's three CPE panels; `write_figure1`
saves them plus the underlying data as CSV for external plotting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.statistics import (
    annualized_downtime_hours,
    failure_durations,
    time_between_failures_hours,
)

_WIDTH, _HEIGHT = 480, 320
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 60, 16, 28, 44
_COLORS = {"Syslog": "#c23b22", "IS-IS": "#1f5fa6"}
_DASHES = {"Syslog": "", "IS-IS": "6,3"}


@dataclass(frozen=True)
class CdfSeries:
    """One empirical CDF: sorted positive values."""

    label: str
    values: Tuple[float, ...]

    def points(self) -> List[Tuple[float, float]]:
        ordered = sorted(v for v in self.values if v > 0)
        n = len(ordered)
        return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def _log_ticks(lo: float, hi: float) -> List[float]:
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0**e for e in range(first, last + 1)]


def _fmt_tick(value: float) -> str:
    if value >= 1:
        return f"{value:g}"
    return f"{value:g}"


def render_cdf_svg(
    series: Sequence[CdfSeries],
    title: str,
    x_label: str,
) -> str:
    """Render step CDFs on a log-x axis as an SVG document."""
    populated = [s for s in series if any(v > 0 for v in s.values)]
    if not populated:
        raise ValueError("nothing to plot")

    lo = min(min(v for v in s.values if v > 0) for s in populated)
    hi = max(max(s.values) for s in populated)
    if hi <= lo:
        hi = lo * 10.0
    log_lo, log_hi = math.log10(lo), math.log10(hi)
    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def x_pos(value: float) -> float:
        frac = (math.log10(value) - log_lo) / (log_hi - log_lo)
        return _MARGIN_L + frac * plot_w

    def y_pos(fraction: float) -> float:
        return _MARGIN_T + (1.0 - fraction) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2:.0f}" y="16" text-anchor="middle" '
        f'font-size="13">{title}</text>',
    ]

    # Axes frame.
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#444"/>'
    )
    # Y ticks at 0, .25, .5, .75, 1.
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = y_pos(frac)
        parts.append(
            f'<line x1="{_MARGIN_L - 4}" y1="{y:.1f}" x2="{_MARGIN_L}" '
            f'y2="{y:.1f}" stroke="#444"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{frac:g}</text>'
        )
        if 0.0 < frac < 1.0:
            parts.append(
                f'<line x1="{_MARGIN_L}" y1="{y:.1f}" '
                f'x2="{_MARGIN_L + plot_w}" y2="{y:.1f}" '
                f'stroke="#ddd" stroke-width="0.6"/>'
            )
    # X ticks at decades.
    for tick in _log_ticks(lo, hi):
        if tick < lo * 0.999 or tick > hi * 1.001:
            continue
        x = x_pos(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{y_pos(0.0):.1f}" x2="{x:.1f}" '
            f'y2="{y_pos(0.0) + 4:.1f}" stroke="#444"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{y_pos(0.0) + 16:.1f}" '
            f'text-anchor="middle">{_fmt_tick(tick)}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2:.0f}" y="{_HEIGHT - 8}" '
        f'text-anchor="middle">{x_label}</text>'
    )
    parts.append(
        f'<text x="14" y="{_MARGIN_T + plot_h / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {_MARGIN_T + plot_h / 2:.0f})">'
        f'cumulative fraction</text>'
    )

    # Step curves.
    for s in populated:
        color = _COLORS.get(s.label, "#333")
        dash = _DASHES.get(s.label, "")
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        coords = []
        previous_y = y_pos(0.0)
        first_x = None
        for value, fraction in s.points():
            x, y = x_pos(value), y_pos(fraction)
            if first_x is None:
                coords.append(f"M{x:.1f},{previous_y:.1f}")
                first_x = x
            coords.append(f"L{x:.1f},{previous_y:.1f}")
            coords.append(f"L{x:.1f},{y:.1f}")
            previous_y = y
        parts.append(
            f'<path d="{" ".join(coords)}" fill="none" stroke="{color}" '
            f'stroke-width="1.6"{dash_attr}/>'
        )

    # Legend.
    legend_x = _MARGIN_L + 12
    legend_y = _MARGIN_T + 14
    for i, s in enumerate(populated):
        color = _COLORS.get(s.label, "#333")
        y = legend_y + 16 * i
        parts.append(
            f'<line x1="{legend_x}" y1="{y - 4}" x2="{legend_x + 22}" '
            f'y2="{y - 4}" stroke="{color}" stroke-width="1.6"/>'
        )
        parts.append(f'<text x="{legend_x + 28}" y="{y}">{s.label}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def figure1_series(analysis) -> Dict[str, Dict[str, CdfSeries]]:
    """The three CPE panels' series from an analysis result."""
    cpe = [l for l in analysis.resolver.single_links() if not l.is_core]
    names = {l.name for l in cpe}
    panels: Dict[str, Dict[str, CdfSeries]] = {
        "duration": {},
        "downtime": {},
        "tbf": {},
    }
    for label, failures in (
        ("Syslog", analysis.syslog_failures),
        ("IS-IS", analysis.isis_failures),
    ):
        cpe_failures = [f for f in failures if f.link in names]
        panels["duration"][label] = CdfSeries(
            label, tuple(failure_durations(cpe_failures))
        )
        panels["downtime"][label] = CdfSeries(
            label,
            tuple(
                annualized_downtime_hours(
                    cpe_failures, cpe, analysis.horizon_start, analysis.horizon_end
                ).values()
            ),
        )
        panels["tbf"][label] = CdfSeries(
            label, tuple(time_between_failures_hours(cpe_failures))
        )
    return panels


_PANEL_META = {
    "duration": ("(a) Failure duration, CPE links", "failure duration (seconds)"),
    "downtime": ("(b) Annualized link downtime, CPE links", "downtime (hours per year)"),
    "tbf": ("(c) Time between failures, CPE links", "time between failures (hours)"),
}


def figure1_svgs(analysis) -> Dict[str, str]:
    """All three Figure 1 panels as SVG documents, keyed by panel name."""
    panels = figure1_series(analysis)
    return {
        name: render_cdf_svg(
            list(series.values()), *(_PANEL_META[name])
        )
        for name, series in panels.items()
    }


def write_figure1(analysis, directory: Union[str, Path]) -> List[Path]:
    """Write figure1a/b/c.svg plus the raw series as CSV; returns paths."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    panels = figure1_series(analysis)
    for suffix, name in (("a", "duration"), ("b", "downtime"), ("c", "tbf")):
        svg_path = root / f"figure1{suffix}.svg"
        svg_path.write_text(
            render_cdf_svg(list(panels[name].values()), *(_PANEL_META[name])),
            encoding="utf-8",
        )
        written.append(svg_path)
        csv_path = root / f"figure1{suffix}.csv"
        lines = ["series,value"]
        # Panels are built in a fixed literal order (Syslog before IS-IS)
        # and the CSV must keep that presentation order, not sort it.
        for label, series in panels[name].items():  # reprolint: disable=D005 -- panel dict is built in fixed literal order; CSV rows keep presentation order
            lines.extend(f"{label},{value:.6f}" for value in sorted(series.values))
        csv_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        written.append(csv_path)
    return written
