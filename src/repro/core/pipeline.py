"""One call from dataset to full analysis results.

:func:`run_analysis` executes the paper's entire methodology in order:

1. parse the central syslog file; mine the config inventory into a
   :class:`~repro.core.links.LinkResolver`;
2. replay the LSP archive through the listener; extract IS and IP
   reachability transitions;
3. reconstruct link state and failures from both channels;
4. sanitise both failure sets (§4.2) — listener-outage removal for both,
   ticket verification of >24 h failures for syslog;
5. match transitions (Tables 2 and 3) and failures (Table 4, §4.3);
6. detect flapping episodes (§4.1).

The returned :class:`AnalysisResult` carries every intermediate product so
the benches and examples can drill into any table without re-running the
expensive steps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.extract_isis import IsisExtraction, IsisExtractionConfig, extract_isis
from repro.core.extract_syslog import (
    SyslogExtraction,
    SyslogExtractionConfig,
    extract_syslog,
)
from repro.core.events import FailureEvent
from repro.core.flapping import FlapEpisode, detect_flap_episodes, flap_intervals
from repro.core.links import LinkResolver
from repro.core.matching import (
    FailureMatchResult,
    MatchConfig,
    TransitionCoverage,
    count_matching_reporters,
    match_failures,
)
from repro.core.sanitize import SanitizationConfig, SanitizationReport, sanitize_failures
from repro.faults.ledger import IngestReport
from repro.intervals import IntervalSet
from repro.simulation.dataset import Dataset
from repro.syslog.collector import SyslogCollector


@dataclass(frozen=True)
class AnalysisOptions:
    """Configuration for a full analysis run (paper defaults throughout)."""

    syslog: SyslogExtractionConfig = field(default_factory=SyslogExtractionConfig)
    isis: IsisExtractionConfig = field(default_factory=IsisExtractionConfig)
    matching: MatchConfig = field(default_factory=MatchConfig)
    sanitization: SanitizationConfig = field(default_factory=SanitizationConfig)
    flap_gap_threshold: float = 600.0


@dataclass
class AnalysisResult:
    """Every product of the §3–§4 methodology for one dataset."""

    resolver: LinkResolver
    syslog: SyslogExtraction
    isis: IsisExtraction
    syslog_sanitized: SanitizationReport
    isis_sanitized: SanitizationReport
    failure_match: FailureMatchResult
    coverage: TransitionCoverage
    flap_episodes: List[FlapEpisode]
    flap_intervals: Dict[str, IntervalSet]
    horizon_start: float
    horizon_end: float
    options: AnalysisOptions
    #: Drop ledger of a lenient (``strict=False``) run; ``None`` when the
    #: caller did not ask for one.  Empty on clean inputs.
    ingest: Optional[IngestReport] = None

    @property
    def syslog_failures(self) -> List[FailureEvent]:
        """Sanitised syslog failures (what every table consumes)."""
        return self.syslog_sanitized.kept

    @property
    def isis_failures(self) -> List[FailureEvent]:
        """Sanitised IS-IS failures."""
        return self.isis_sanitized.kept

    @property
    def horizon_years(self) -> float:
        return (self.horizon_end - self.horizon_start) / (365.0 * 86400.0)


def run_analysis(
    dataset: Dataset,
    options: Optional[AnalysisOptions] = None,
    *,
    strict: bool = True,
    report: Optional[IngestReport] = None,
    jobs: int = 1,
    ingest: str = "scalar",
) -> AnalysisResult:
    """Run the complete methodology against one dataset.

    ``strict=True`` (the default) dies on the first malformed syslog line
    or undecodable LSP record, as the original pipeline did.
    ``strict=False`` is the hardened mode for artifacts left behind by a
    crashed collector or listener: bad records are quarantined into
    ``report`` (an :class:`~repro.faults.ledger.IngestReport`, created on
    demand and attached to the result as ``result.ingest``) and the
    analysis completes on everything salvageable.  On clean inputs both
    modes produce byte-identical results.

    ``jobs`` selects the execution engine: ``1`` (the default) runs this
    sequential code path; ``jobs > 1`` dispatches to
    :func:`repro.parallel.pipeline.run_parallel_analysis`, which shards
    the work across a process pool and merges back results byte-identical
    to the sequential run (the contract ``tests/test_parallel_pipeline.py``
    enforces).  ``jobs=0`` resolves to the host's CPU count.  ``jobs``
    never changes results, only wall-clock.

    ``ingest`` selects the syslog parse engine: ``"scalar"`` is the
    per-line reference parser, ``"columnar"`` the vectorised fast path of
    :mod:`repro.columnar`, contractually identical on every input (and
    silently equivalent to scalar when numpy is unavailable).  Like
    ``jobs``, it never changes results.
    """
    if ingest not in ("scalar", "columnar"):
        raise ValueError(f"unknown ingest engine {ingest!r}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be non-negative")
    if jobs > 1:
        from repro.parallel.pipeline import run_parallel_analysis

        return run_parallel_analysis(
            dataset, options, strict=strict, report=report, jobs=jobs,
            ingest=ingest,
        )
    if options is None:
        options = AnalysisOptions()
    if not strict and report is None:
        report = IngestReport()
    resolver = LinkResolver(dataset.inventory)
    horizon_start = dataset.analysis_start
    horizon_end = dataset.horizon_end

    if ingest == "columnar":
        from repro.columnar import parse_log_columnar

        entries = parse_log_columnar(
            dataset.syslog_text, strict=strict, report=report
        )
    else:
        entries = SyslogCollector.parse_log(
            dataset.syslog_text, strict=strict, report=report
        )
    syslog = extract_syslog(
        entries, resolver, horizon_start, horizon_end, options.syslog
    )
    isis = extract_isis(
        dataset.lsp_records,
        resolver,
        horizon_start,
        horizon_end,
        options.isis,
        strict=strict,
        report=report,
    )

    syslog_sanitized = sanitize_failures(
        syslog.failures,
        dataset.listener_outages,
        dataset.tickets,
        options.sanitization,
    )
    isis_sanitized = sanitize_failures(
        isis.failures,
        dataset.listener_outages,
        tickets=None,
        config=options.sanitization,
    )

    failure_match = match_failures(
        syslog_sanitized.kept, isis_sanitized.kept, options.matching
    )
    coverage = count_matching_reporters(
        isis.is_transitions, syslog.isis_messages, options.matching
    )
    episodes = detect_flap_episodes(
        isis_sanitized.kept, options.flap_gap_threshold
    )

    return AnalysisResult(
        resolver=resolver,
        syslog=syslog,
        isis=isis,
        syslog_sanitized=syslog_sanitized,
        isis_sanitized=isis_sanitized,
        failure_match=failure_match,
        coverage=coverage,
        flap_episodes=episodes,
        flap_intervals=flap_intervals(episodes, horizon_start=horizon_start),
        horizon_start=horizon_start,
        horizon_end=horizon_end,
        options=options,
        ingest=report,
    )
