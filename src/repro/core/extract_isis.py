"""Failure reconstruction from the listener's LSP archive (§3.2, §3.4).

The archive is replayed byte-for-byte through the passive listener, which
diffs each origin's Extended IS Reachability and Extended IP Reachability
advertisements.  The resulting per-origin changes are resolved onto
canonical links:

* **IS reachability** changes name a ``(origin, neighbor)`` device pair.
  Pairs joined by parallel links cannot be charged to a physical link and
  are omitted, exactly as the paper omits its 26 multi-link adjacencies;
* **IP reachability** changes name a /31, which maps to exactly one link
  (non-/31 prefixes — loopbacks, statics — are not links and are skipped).

Link state and failures are derived from **IS reachability** (the paper's
§3.4 conclusion); the IP-side transitions are kept for Table 2.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.ledger import CHANNEL_ISIS, IngestReport

from repro.core.events import (
    SOURCE_ISIS_IP,
    SOURCE_ISIS_IS,
    FailureEvent,
    LinkMessage,
    Transition,
    message_sort_key,
)
from repro.core.links import LinkResolver
from repro.core.reconstruct import (
    merge_messages,
    reconstruct_channel,
)
from repro.intervals.timeline import AmbiguityStrategy, LinkStateTimeline
from repro.isis.listener import IsisListener, ReachabilityChange, ReachabilityKind


@dataclass(frozen=True)
class IsisExtractionConfig:
    """Knobs of the IS-IS reconstruction."""

    #: Withdrawals of the same adjacency by its two origins merge within
    #: this window into one link transition.
    merge_window: float = 30.0
    #: Ambiguity strategy for the (rare) inconsistent IS-IS sequences, e.g.
    #: around listener resyncs.
    strategy: AmbiguityStrategy = AmbiguityStrategy.PREVIOUS_STATE


@dataclass
class IsisExtraction:
    """Everything the IS-IS channel yields for one dataset."""

    is_messages: List[LinkMessage] = field(default_factory=list)
    ip_messages: List[LinkMessage] = field(default_factory=list)
    is_transitions: List[Transition] = field(default_factory=list)
    ip_transitions: List[Transition] = field(default_factory=list)
    timelines: Dict[str, LinkStateTimeline] = field(default_factory=dict)
    failures: List[FailureEvent] = field(default_factory=list)
    #: IS changes on multi-link device pairs (omitted, per §3.4).
    multilink_skipped: int = 0
    #: Changes that could not be resolved to any link.
    unresolved_count: int = 0
    #: LSPs the LSDB rejected as duplicates or stale floods.
    rejected_lsps: int = 0


def replay_lsp_records(
    records: Sequence[Tuple[float, bytes]],
    *,
    strict: bool = True,
    report: Optional[IngestReport] = None,
) -> Tuple[IsisListener, List[ReachabilityChange]]:
    """Feed an archive through a fresh listener; returns it and its changes.

    ``strict=True`` lets decode failures (bit-flipped payloads, checksum
    mismatches) propagate as before.  ``strict=False`` quarantines the
    undecodable record into ``report`` — reason, record index, and a
    sample of the decoder's complaint — and continues with the next one,
    the same behaviour :func:`repro.stream.sources.isis_events` applies
    so batch and stream stay equivalent on damaged archives.
    """
    listener = IsisListener()
    for index, (time, raw) in enumerate(records):
        try:
            listener.observe_bytes(time, raw)
        except (ValueError, struct.error) as error:
            if strict:
                raise
            if report is not None:
                report.record(
                    CHANNEL_ISIS,
                    "lsp-decode",
                    index=index,
                    sample=str(error),
                )
    return listener, list(listener.changes)


#: Classification labels returned by :func:`classify_change`.
CHANGE_IS = "is"
CHANGE_IP = "ip"
CHANGE_MULTILINK = "multilink"
CHANGE_UNRESOLVED = "unresolved"


def classify_change(
    change: ReachabilityChange, resolver: LinkResolver
) -> Tuple[str, Optional[LinkMessage]]:
    """Resolve one reachability change to a link message, or say why not.

    Returns ``(kind, message)`` where ``kind`` is ``CHANGE_IS`` /
    ``CHANGE_IP`` (with the resolved :class:`LinkMessage`),
    ``CHANGE_MULTILINK`` (an IS change on a parallel-link device pair,
    omitted per §3.4), or ``CHANGE_UNRESOLVED``.  This is the single-change
    resolution logic shared by the batch extractor and the streaming
    sources.
    """
    origin_host = resolver.hostname_for(change.origin_system_id)
    if origin_host is None:
        return CHANGE_UNRESOLVED, None
    if change.kind is ReachabilityKind.IS:
        record, multi = resolver.resolve_adjacency(
            change.origin_system_id, str(change.target)
        )
        if record is None:
            return (CHANGE_MULTILINK if multi else CHANGE_UNRESOLVED), None
        return CHANGE_IS, LinkMessage(
            time=change.time,
            link=record.name,
            direction=change.direction,
            reporter=origin_host,
            source=SOURCE_ISIS_IS,
            category="is-reachability",
        )
    prefix, prefix_length = change.target  # type: ignore[misc]
    record = resolver.resolve_prefix(prefix, prefix_length)
    if record is None:
        return CHANGE_UNRESOLVED, None
    return CHANGE_IP, LinkMessage(
        time=change.time,
        link=record.name,
        direction=change.direction,
        reporter=origin_host,
        source=SOURCE_ISIS_IP,
        category="ip-reachability",
    )


def classify_changes(
    changes: Sequence[ReachabilityChange],
    resolver: LinkResolver,
) -> Tuple[List[LinkMessage], List[LinkMessage], int, int]:
    """The classification stage of the extraction, as a separable unit.

    Returns ``(is_messages, ip_messages, multilink_skipped,
    unresolved_count)`` in change order.  Classification is per-change and
    context-free, so the parallel pipeline can fan it over change ranges
    and concatenate the results.
    """
    is_messages: List[LinkMessage] = []
    ip_messages: List[LinkMessage] = []
    multilink = 0
    unresolved = 0
    for change in changes:
        kind, message = classify_change(change, resolver)
        if kind == CHANGE_IS:
            is_messages.append(message)
        elif kind == CHANGE_IP:
            ip_messages.append(message)
        elif kind == CHANGE_MULTILINK:
            multilink += 1
        else:
            unresolved += 1
    return is_messages, ip_messages, multilink, unresolved


def extract_isis_from_changes(
    changes: Sequence[ReachabilityChange],
    rejected_lsps: int,
    resolver: LinkResolver,
    horizon_start: float,
    horizon_end: float,
    config: Optional[IsisExtractionConfig] = None,
) -> IsisExtraction:
    """The analysis half of the extraction, once a replay produced changes.

    :func:`extract_isis` is ``replay_lsp_records`` followed by this; the
    parallel pipeline instead produces the change stream via sharded
    decoding plus a compact replay and joins back here.
    """
    if config is None:
        config = IsisExtractionConfig()
    result = IsisExtraction()
    result.rejected_lsps = rejected_lsps

    (
        result.is_messages,
        result.ip_messages,
        result.multilink_skipped,
        result.unresolved_count,
    ) = classify_changes(changes, resolver)

    result.is_messages.sort(key=message_sort_key)
    result.ip_messages.sort(key=message_sort_key)

    result.is_transitions = merge_messages(
        result.is_messages, config.merge_window, SOURCE_ISIS_IS
    )
    result.ip_transitions = merge_messages(
        result.ip_messages, config.merge_window, SOURCE_ISIS_IP
    )
    result.timelines, result.failures = reconstruct_channel(
        result.is_transitions,
        horizon_start,
        horizon_end,
        strategy=config.strategy,
        links=[record.name for record in resolver.single_links()],
        source=SOURCE_ISIS_IS,
    )
    return result


def extract_isis(
    lsp_records: Sequence[Tuple[float, bytes]],
    resolver: LinkResolver,
    horizon_start: float,
    horizon_end: float,
    config: Optional[IsisExtractionConfig] = None,
    *,
    strict: bool = True,
    report: Optional[IngestReport] = None,
) -> IsisExtraction:
    """Run the full IS-IS reconstruction (see module docstring)."""
    listener, changes = replay_lsp_records(
        lsp_records, strict=strict, report=report
    )
    return extract_isis_from_changes(
        changes,
        listener.rejected_count,
        resolver,
        horizon_start,
        horizon_end,
        config,
    )
