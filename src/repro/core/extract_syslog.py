"""Failure reconstruction from the central syslog file (§3.3–§3.4).

The extractor consumes the collector's parsed entries and produces, per the
shared funnel of :mod:`repro.core.reconstruct`:

* **IS-IS messages** (``%CLNS-5-ADJCHANGE`` / ``%ROUTING-ISIS-4-ADJCHANGE``)
  resolved to canonical links via the mined inventory — these drive link
  state;
* **physical-media messages** (``%LINK-3-UPDOWN``; the echoing
  ``%LINEPROTO-5-UPDOWN`` merges into the same transition) — used by
  Table 2's comparison against IP reachability;
* link-level transitions, state timelines under a configurable ambiguity
  strategy, and failures.

A link transitions state whenever a message says so; repeated
same-direction messages create the ambiguous windows studied in §4.3, which
the timeline resolves per the chosen strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import (
    SOURCE_SYSLOG,
    FailureEvent,
    LinkMessage,
    Transition,
    message_sort_key,
)
from repro.core.links import LinkResolver
from repro.core.reconstruct import (
    merge_messages,
    reconstruct_channel,
)
from repro.intervals.timeline import AmbiguityStrategy, LinkStateTimeline, StateAnomaly
from repro.syslog.cisco import (
    AdjacencyChangeMessage,
    LineProtoUpDownMessage,
    LinkUpDownMessage,
)
from repro.syslog.collector import CollectedEntry


@dataclass(frozen=True)
class SyslogExtractionConfig:
    """Knobs of the syslog reconstruction."""

    #: Same-direction reports within this window are one transition.
    merge_window: float = 30.0
    #: How the ambiguous window between repeated same-direction transitions
    #: is treated; the paper's recommendation is PREVIOUS_STATE (§4.3).
    strategy: AmbiguityStrategy = AmbiguityStrategy.PREVIOUS_STATE


@dataclass
class SyslogExtraction:
    """Everything the syslog channel yields for one dataset."""

    isis_messages: List[LinkMessage] = field(default_factory=list)
    physical_messages: List[LinkMessage] = field(default_factory=list)
    isis_transitions: List[Transition] = field(default_factory=list)
    physical_transitions: List[Transition] = field(default_factory=list)
    timelines: Dict[str, LinkStateTimeline] = field(default_factory=dict)
    failures: List[FailureEvent] = field(default_factory=list)
    #: Messages naming a (router, port) absent from the mined inventory.
    unresolved_count: int = 0
    #: Entries that were not link-related Cisco messages at all.
    unparsed_count: int = 0

    def anomalies(self) -> Dict[str, Tuple[StateAnomaly, ...]]:
        """Per-link repeated same-direction transitions (input to §4.3)."""
        return {
            link: timeline.anomalies
            for link, timeline in self.timelines.items()
            if timeline.anomalies
        }


#: Classification labels returned by :func:`classify_entry`.
ENTRY_ISIS = "isis"
ENTRY_PHYSICAL = "physical"
ENTRY_UNPARSED = "unparsed"
ENTRY_UNRESOLVED = "unresolved"
ENTRY_OTHER = "other"


def classify_entry(
    entry: CollectedEntry, resolver: LinkResolver
) -> Tuple[str, Optional[LinkMessage]]:
    """Resolve one collected entry to a link message, or say why not.

    Returns ``(kind, message)`` where ``kind`` is one of ``ENTRY_ISIS`` /
    ``ENTRY_PHYSICAL`` (with the resolved :class:`LinkMessage`),
    ``ENTRY_UNPARSED`` (not a Cisco message), ``ENTRY_UNRESOLVED`` (names a
    port absent from the mined inventory), or ``ENTRY_OTHER`` (a Cisco
    message that is not link-related).  This is the single-entry transition
    logic shared by the batch extractor and the streaming sources.
    """
    parsed = entry.entry
    if parsed is None:
        return ENTRY_UNPARSED, None
    if isinstance(parsed, AdjacencyChangeMessage):
        record = resolver.resolve_port(parsed.router, parsed.interface)
        if record is None:
            return ENTRY_UNRESOLVED, None
        return ENTRY_ISIS, LinkMessage(
            time=entry.generated_time,
            link=record.name,
            direction=parsed.direction,
            reporter=parsed.router,
            source=SOURCE_SYSLOG,
            category="isis",
            reason=parsed.reason,
        )
    if isinstance(parsed, (LinkUpDownMessage, LineProtoUpDownMessage)):
        record = resolver.resolve_port(parsed.router, parsed.interface)
        if record is None:
            return ENTRY_UNRESOLVED, None
        return ENTRY_PHYSICAL, LinkMessage(
            time=entry.generated_time,
            link=record.name,
            direction=parsed.direction,
            reporter=parsed.router,
            source=SOURCE_SYSLOG,
            category="physical",
            reason="",
        )
    return ENTRY_OTHER, None


def classify_entries(
    entries: Sequence[CollectedEntry],
    resolver: LinkResolver,
) -> Tuple[List[LinkMessage], List[LinkMessage], int, int]:
    """The classification stage of the extraction, as a separable unit.

    Returns ``(isis_messages, physical_messages, unparsed_count,
    unresolved_count)`` in entry order.  Classification is per-entry and
    context-free, which is what lets the parallel pipeline fan it over
    entry ranges and concatenate: the concatenation of classified ranges
    equals the classification of the concatenation.
    """
    isis_messages: List[LinkMessage] = []
    physical_messages: List[LinkMessage] = []
    unparsed = 0
    unresolved = 0
    for entry in entries:
        kind, message = classify_entry(entry, resolver)
        if kind == ENTRY_ISIS:
            isis_messages.append(message)
        elif kind == ENTRY_PHYSICAL:
            physical_messages.append(message)
        elif kind == ENTRY_UNPARSED:
            unparsed += 1
        elif kind == ENTRY_UNRESOLVED:
            unresolved += 1
    return isis_messages, physical_messages, unparsed, unresolved


def extract_syslog(
    entries: Sequence[CollectedEntry],
    resolver: LinkResolver,
    horizon_start: float,
    horizon_end: float,
    config: Optional[SyslogExtractionConfig] = None,
) -> SyslogExtraction:
    """Run the full syslog reconstruction (see module docstring)."""
    if config is None:
        config = SyslogExtractionConfig()
    result = SyslogExtraction()

    (
        result.isis_messages,
        result.physical_messages,
        result.unparsed_count,
        result.unresolved_count,
    ) = classify_entries(entries, resolver)

    result.isis_messages.sort(key=message_sort_key)
    result.physical_messages.sort(key=message_sort_key)

    result.isis_transitions = merge_messages(
        result.isis_messages, config.merge_window, SOURCE_SYSLOG
    )
    result.physical_transitions = merge_messages(
        result.physical_messages, config.merge_window, SOURCE_SYSLOG
    )
    # State reconstruction is restricted to single-link adjacencies: the
    # paper omits multi-link device pairs from the failure analysis because
    # the IS-IS channel cannot resolve them (§3.4), and comparing channels
    # requires the same link universe on both sides.  The raw messages and
    # transitions above still cover every link (Table 2 needs them).
    single = {record.name for record in resolver.single_links()}
    timeline_transitions = [
        t for t in result.isis_transitions if t.link in single
    ]
    result.timelines, result.failures = reconstruct_channel(
        timeline_transitions,
        horizon_start,
        horizon_end,
        strategy=config.strategy,
        links=sorted(single),
        source=SOURCE_SYSLOG,
    )
    return result
