"""Ambiguous state changes: double downs and double ups (§4.3, Table 6).

A failure in syslog is a Down followed by an Up, but the stream also
contains Downs preceded by Downs and Ups preceded by Ups.  The window
between the repeated messages is ambiguous: either the opposite message was
lost (the link really changed state twice) or the repeat is a spurious
retransmission (the link never moved).  With IS-IS as ground truth the two
are distinguishable:

* **lost message** — both syslog messages correspond to real IS-IS state
  changes of the same direction (two IS-IS transitions, so the opposite
  transition between them was missed by syslog);
* **spurious retransmission** — the link was already in the repeated
  message's state when the repeat arrived;
* **unknown** — neither test passes.

The module also evaluates the three correction strategies (assume down,
assume up, keep previous state) by rebuilding the syslog timelines under
each and comparing total downtime against IS-IS — reproducing the paper's
conclusion that *previous state* comes closest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.events import Transition
from repro.core.links import LinkRecord
from repro.core.reconstruct import build_timelines
from repro.intervals.timeline import (
    DOWN,
    AmbiguityStrategy,
    LinkState,
    LinkStateTimeline,
    StateAnomaly,
)
from repro.util.timefmt import SECONDS_PER_HOUR


class AmbiguityCause(enum.Enum):
    LOST_MESSAGE = "lost_message"
    SPURIOUS_RETRANSMISSION = "spurious_retransmission"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ClassifiedAnomaly:
    """One double-down/double-up window with its diagnosed cause."""

    link: str
    anomaly: StateAnomaly
    cause: AmbiguityCause


@dataclass
class AmbiguityReport:
    """Table 6: ambiguous state changes by cause and direction."""

    classified: List[ClassifiedAnomaly] = field(default_factory=list)
    #: Fraction of (links × measurement period) covered by ambiguous windows.
    ambiguous_period_fraction: float = 0.0

    def count(self, direction: str, cause: AmbiguityCause) -> int:
        return sum(
            1
            for item in self.classified
            if item.anomaly.direction == direction and item.cause is cause
        )

    def total(self, direction: str) -> int:
        return sum(1 for item in self.classified if item.anomaly.direction == direction)

    def cause_fraction(self, direction: str, cause: AmbiguityCause) -> float:
        total = self.total(direction)
        return self.count(direction, cause) / total if total else 0.0


def _has_transition_near(
    transitions: Sequence[Transition], time: float, window: float
) -> bool:
    return any(abs(t.time - time) <= window for t in transitions)


def analyze_ambiguous_transitions(
    syslog_timelines: Dict[str, LinkStateTimeline],
    isis_transitions: Sequence[Transition],
    isis_timelines: Dict[str, LinkStateTimeline],
    horizon_start: float,
    horizon_end: float,
    window: float = 10.0,
) -> AmbiguityReport:
    """Classify every syslog double-down/up against IS-IS ground truth."""
    by_link_direction: Dict[Tuple[str, str], List[Transition]] = {}
    for transition in isis_transitions:
        by_link_direction.setdefault(
            (transition.link, transition.direction), []
        ).append(transition)

    report = AmbiguityReport()
    ambiguous_seconds = 0.0
    link_count = 0
    for link, timeline in sorted(syslog_timelines.items()):
        link_count += 1
        isis_timeline = isis_timelines.get(link)
        for anomaly in timeline.anomalies:
            ambiguous_seconds += anomaly.duration
            same_direction = by_link_direction.get((link, anomaly.direction), [])
            first_real = _has_transition_near(
                same_direction, anomaly.window_start, window
            )
            second_real = _has_transition_near(
                same_direction, anomaly.window_end, window
            )
            if first_real and second_real:
                cause = AmbiguityCause.LOST_MESSAGE
            else:
                expected = (
                    LinkState.DOWN if anomaly.direction == DOWN else LinkState.UP
                )
                probe = min(
                    max(anomaly.window_end, horizon_start),
                    horizon_end - 1e-6,
                )
                if (
                    isis_timeline is not None
                    and isis_timeline.state_at(probe) is expected
                ):
                    cause = AmbiguityCause.SPURIOUS_RETRANSMISSION
                else:
                    cause = AmbiguityCause.UNKNOWN
            report.classified.append(ClassifiedAnomaly(link, anomaly, cause))

    total_period = (horizon_end - horizon_start) * max(link_count, 1)
    report.ambiguous_period_fraction = (
        ambiguous_seconds / total_period if total_period else 0.0
    )
    return report


@dataclass(frozen=True)
class StrategyEvaluation:
    """Downtime error of one ambiguity strategy against IS-IS.

    Two error views are kept: the **net** total-downtime difference (where
    a phantom-downtime overshoot on one link can cancel missed downtime on
    another) and the **per-link absolute** error sum, which is the honest
    distance between the two reconstructions — strategies are ranked by
    the latter.
    """

    strategy: AmbiguityStrategy
    syslog_downtime_hours: float
    isis_downtime_hours: float
    per_link_absolute_error_hours: float

    @property
    def error_hours(self) -> float:
        """Net (signed) total-downtime difference."""
        return self.syslog_downtime_hours - self.isis_downtime_hours

    @property
    def absolute_error_hours(self) -> float:
        return abs(self.error_hours)


def evaluate_ambiguity_strategies(
    syslog_transitions: Sequence[Transition],
    isis_timelines: Dict[str, LinkStateTimeline],
    links: Sequence[LinkRecord],
    horizon_start: float,
    horizon_end: float,
    strategies: Sequence[AmbiguityStrategy] = (
        AmbiguityStrategy.ASSUME_DOWN,
        AmbiguityStrategy.ASSUME_UP,
        AmbiguityStrategy.PREVIOUS_STATE,
    ),
) -> List[StrategyEvaluation]:
    """Rebuild syslog state under each strategy; rank by per-link error.

    Only links present in both channels' views are compared, so the
    difference measures the strategy, not coverage.  Ranking uses the
    per-link absolute downtime error (see :class:`StrategyEvaluation`).
    """
    isis_links = set(isis_timelines)
    link_names = [record.name for record in links if record.name in isis_links]
    isis_downtime_by_link = {
        name: isis_timelines[name].downtime() for name in link_names
    }
    isis_downtime = sum(isis_downtime_by_link.values()) / SECONDS_PER_HOUR

    evaluations: List[StrategyEvaluation] = []
    for strategy in strategies:
        timelines = build_timelines(
            syslog_transitions,
            horizon_start,
            horizon_end,
            strategy=strategy,
            links=link_names,
        )
        syslog_downtime = sum(
            timelines[name].downtime() for name in link_names
        ) / SECONDS_PER_HOUR
        per_link_error = sum(
            abs(timelines[name].downtime() - isis_downtime_by_link[name])
            for name in link_names
        ) / SECONDS_PER_HOUR
        evaluations.append(
            StrategyEvaluation(
                strategy=strategy,
                syslog_downtime_hours=syslog_downtime,
                isis_downtime_hours=isis_downtime,
                per_link_absolute_error_hours=per_link_error,
            )
        )
    evaluations.sort(key=lambda e: e.per_link_absolute_error_hours)
    return evaluations
