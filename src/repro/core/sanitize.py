"""Data sanitisation (§4.2).

Before any statistics, the paper cleans both failure sets:

1. failures spanning **listener outage** windows are removed — during such
   windows the IS-IS channel is blind, so no fair comparison exists, and
   the post-restart resync fabricates transition times;
2. syslog failures longer than **24 hours** are "manually verified" against
   NOC trouble tickets; unverified ones are removed as spurious.  In the
   paper this single step removes ~6,000 hours of downtime — nearly twice
   the real total — so it is the highest-leverage filter in the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.events import FailureEvent
from repro.intervals import Interval, IntervalSet
from repro.ticketing import TicketSystem
from repro.util.timefmt import SECONDS_PER_HOUR


@dataclass(frozen=True)
class SanitizationConfig:
    """Thresholds of the §4.2 cleaning pass."""

    #: Failures at least this long need ticket verification (24 hours).
    long_failure_threshold: float = 86400.0
    #: Slack when cross-checking tickets (NOC open/close lag tolerance).
    ticket_slack: float = 7200.0

    def __post_init__(self) -> None:
        if self.long_failure_threshold <= 0:
            raise ValueError("long-failure threshold must be positive")
        if self.ticket_slack < 0:
            raise ValueError("ticket slack must be non-negative")


@dataclass
class SanitizationReport:
    """What the cleaning pass kept and what it threw away, and why."""

    kept: List[FailureEvent] = field(default_factory=list)
    removed_listener_overlap: List[FailureEvent] = field(default_factory=list)
    removed_unverified_long: List[FailureEvent] = field(default_factory=list)
    verified_long: List[FailureEvent] = field(default_factory=list)

    @property
    def long_failures_checked(self) -> int:
        return len(self.verified_long) + len(self.removed_unverified_long)

    @property
    def spurious_downtime_hours(self) -> float:
        """Hours of downtime removed by ticket verification."""
        return (
            sum(f.duration for f in self.removed_unverified_long)
            / SECONDS_PER_HOUR
        )

    @property
    def kept_downtime_hours(self) -> float:
        return sum(f.duration for f in self.kept) / SECONDS_PER_HOUR


#: Dispositions returned by :func:`classify_failure`.
KEEP = "keep"
KEEP_VERIFIED = "keep-verified"
DROP_LISTENER = "drop-listener"
DROP_UNVERIFIED = "drop-unverified"


def classify_failure(
    failure: FailureEvent,
    listener_outages: IntervalSet,
    tickets: Optional[TicketSystem],
    config: SanitizationConfig,
) -> str:
    """Decide one failure's fate under §4.2's cleaning rules.

    Returns ``KEEP``, ``KEEP_VERIFIED`` (a long failure corroborated by a
    ticket), ``DROP_LISTENER`` (spans a listener outage), or
    ``DROP_UNVERIFIED`` (a long failure no ticket corroborates).  This is
    the single-failure decision shared by the batch pass and the streaming
    sanitiser.
    """
    span = Interval(failure.start, failure.end)
    if listener_outages.intersection(IntervalSet([span])):
        return DROP_LISTENER
    if failure.duration >= config.long_failure_threshold and tickets is not None:
        if tickets.confirms(
            failure.link, failure.start, failure.end, slack=config.ticket_slack
        ):
            return KEEP_VERIFIED
        return DROP_UNVERIFIED
    return KEEP


def apply_disposition(
    report: SanitizationReport, failure: FailureEvent, disposition: str
) -> None:
    """Record one classified failure in a report (shared batch/stream)."""
    if disposition == DROP_LISTENER:
        report.removed_listener_overlap.append(failure)
    elif disposition == DROP_UNVERIFIED:
        report.removed_unverified_long.append(failure)
    elif disposition == KEEP_VERIFIED:
        report.verified_long.append(failure)
        report.kept.append(failure)
    elif disposition == KEEP:
        report.kept.append(failure)
    else:
        raise ValueError(f"unknown disposition {disposition!r}")


def sanitize_failures(
    failures: Sequence[FailureEvent],
    listener_outages: IntervalSet,
    tickets: Optional[TicketSystem],
    config: Optional[SanitizationConfig] = None,
) -> SanitizationReport:
    """Apply §4.2's cleaning to one channel's failure list.

    ``tickets`` may be ``None`` for the IS-IS channel (its long failures are
    trusted — the listener heard the withdrawal directly); listener-outage
    removal applies to both channels so the comparison covers the same
    wall-clock.
    """
    if config is None:
        config = SanitizationConfig()
    report = SanitizationReport()
    for failure in failures:
        apply_disposition(
            report, failure, classify_failure(failure, listener_outages, tickets, config)
        )
    return report
