"""Batch driver for the canonical sanitise phase (§4.2).

The cleaning rules themselves — listener-outage masking, ticket
verification of 24 h+ failures — live in :mod:`repro.engine.sanitize`
and are shared by every execution mode.  This module re-exports them for
compatibility and hosts the batch driver: feed the per-link
:class:`~repro.engine.sanitize.Sanitizer` with an infinite watermark so
every decision is immediate and the report comes back in input order.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.events import FailureEvent
from repro.engine.sanitize import (
    DROP_LISTENER,
    DROP_UNVERIFIED,
    KEEP,
    KEEP_VERIFIED,
    SanitizationConfig,
    SanitizationReport,
    Sanitizer,
    apply_disposition,
    classify_failure,
)
from repro.intervals import IntervalSet
from repro.ticketing import TicketSystem

__all__ = [
    "DROP_LISTENER",
    "DROP_UNVERIFIED",
    "KEEP",
    "KEEP_VERIFIED",
    "SanitizationConfig",
    "SanitizationReport",
    "Sanitizer",
    "apply_disposition",
    "classify_failure",
    "sanitize_failures",
]


def sanitize_failures(
    failures: Sequence[FailureEvent],
    listener_outages: IntervalSet,
    tickets: Optional[TicketSystem],
    config: Optional[SanitizationConfig] = None,
) -> SanitizationReport:
    """Apply §4.2's cleaning to one channel's failure list.

    ``tickets`` may be ``None`` for the IS-IS channel (its long failures are
    trusted — the listener heard the withdrawal directly); listener-outage
    removal applies to both channels so the comparison covers the same
    wall-clock.
    """
    if config is None:
        config = SanitizationConfig()
    sanitizer = Sanitizer(listener_outages, tickets, config)
    for failure in failures:
        sanitizer.feed(failure, math.inf)
    sanitizer.flush()
    return sanitizer.report
