"""Customer isolation analysis (§4.4).

CENIC's customers are mostly multi-homed and the backbone is ring-rich, so
a customer is cut off only when *several* links are down simultaneously.
That makes isolation a worst case for reconstruction error: a single wrong
link state on any member of the cut flips the conclusion.

The computation: from the topology, a site is **isolated** over exactly the
instants at which none of its attachment routers can reach the backbone
root in the graph of currently-up links — the per-site isolation set is the
intersection of its attachment routers' unreachability sets, which come
from one sweep of :func:`repro.topology.connectivity.unreachable_intervals`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.intervals import Interval, IntervalSet
from repro.topology.connectivity import unreachable_intervals
from repro.topology.model import Network
from repro.util.timefmt import SECONDS_PER_DAY


@dataclass(frozen=True)
class IsolationEvent:
    """One maximal interval during which a site was isolated."""

    site: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class IsolationSummary:
    """Table 7's row: isolating events, sites impacted, downtime days."""

    events: Tuple[IsolationEvent, ...]
    sites_impacted: int
    downtime_days: float

    @property
    def event_count(self) -> int:
        return len(self.events)


def compute_isolation(
    network: Network,
    down_intervals: Dict[str, IntervalSet],
    horizon_start: float,
    horizon_end: float,
    root: Optional[str] = None,
) -> Dict[str, IntervalSet]:
    """Per-site isolation interval sets from per-link down interval sets.

    ``down_intervals`` is keyed by **canonical link name** (the analysis
    vocabulary); links absent from the mapping are treated as always up.
    ``root`` anchors "the backbone" — any router that is never expected to
    be cut off; defaults to the alphabetically first core router.
    """
    by_canonical = {
        link.canonical_name: link_id for link_id, link in network.links.items()
    }
    down_by_link_id = {
        by_canonical[canonical]: intervals
        for canonical, intervals in down_intervals.items()
        if canonical in by_canonical
    }
    unreachable = unreachable_intervals(
        network, down_by_link_id, horizon_start, horizon_end, root=root
    )
    return {
        site_name: IntervalSet.intersect_all(
            [unreachable[router] for router in site.attachment_routers]
        )
        for site_name, site in network.sites.items()
    }


def isolation_summary(
    per_site: Dict[str, IntervalSet],
) -> IsolationSummary:
    """Collapse per-site isolation sets into Table 7's aggregate row."""
    events: List[IsolationEvent] = []
    impacted = 0
    downtime = 0.0
    for site in sorted(per_site):
        intervals = per_site[site]
        if not intervals:
            continue
        impacted += 1
        for interval in intervals:
            events.append(IsolationEvent(site, interval.start, interval.end))
            downtime += interval.duration
    events.sort(key=lambda e: (e.start, e.site))
    return IsolationSummary(
        events=tuple(events),
        sites_impacted=impacted,
        downtime_days=downtime / SECONDS_PER_DAY,
    )


def intersect_isolation(
    per_site_a: Dict[str, IntervalSet],
    per_site_b: Dict[str, IntervalSet],
) -> Dict[str, IntervalSet]:
    """Per-site intersection — Table 7's "Intersection" row."""
    result: Dict[str, IntervalSet] = {}
    for site in sorted(set(per_site_a) | set(per_site_b)):
        a = per_site_a.get(site, IntervalSet())
        b = per_site_b.get(site, IntervalSet())
        result[site] = a.intersection(b)
    return result


def match_isolation_events(
    events_a: Sequence[IsolationEvent],
    per_site_b: Dict[str, IntervalSet],
) -> Tuple[List[IsolationEvent], List[IsolationEvent]]:
    """Split ``events_a`` into (overlapping-b, disjoint-from-b).

    Used for §4.4's unmatched-event accounting: events one channel reports
    that the other never overlaps at all.
    """
    overlapping: List[IsolationEvent] = []
    disjoint: List[IsolationEvent] = []
    for event in events_a:
        other = per_site_b.get(event.site, IntervalSet())
        probe = IntervalSet([Interval(event.start, event.end)])
        if other.intersection(probe):
            overlapping.append(event)
        else:
            disjoint.append(event)
    return overlapping, disjoint
