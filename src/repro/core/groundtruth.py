"""Grading both observation channels against the simulator's actual truth.

The paper must *assume* IS-IS is ground truth ("traffic shares fate with
the routing protocol"); it has no deeper reference.  The simulation does:
every injected failure is known exactly.  This module grades a channel's
reconstructed failures against that generative truth with the same ±window
matching the paper uses between channels, yielding recall (what fraction
of real failures the channel reconstructed) and precision (what fraction
of reconstructed failures were real).

This is an *extension* of the paper — it quantifies how good the "gold
standard" itself is, validating the assumption the whole study rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.events import FailureEvent
from repro.core.matching import MatchConfig, match_failures
from repro.simulation.dataset import Dataset
from repro.util.timefmt import SECONDS_PER_HOUR


@dataclass(frozen=True)
class ChannelGrade:
    """One channel's fidelity against generative ground truth."""

    channel: str
    truth_count: int
    reconstructed_count: int
    matched_count: int
    truth_downtime_hours: float
    reconstructed_downtime_hours: float

    @property
    def recall(self) -> float:
        """Fraction of real failures the channel reconstructed (±window)."""
        return self.matched_count / self.truth_count if self.truth_count else 0.0

    @property
    def precision(self) -> float:
        """Fraction of reconstructed failures that were real."""
        if not self.reconstructed_count:
            return 0.0
        return self.matched_count / self.reconstructed_count

    @property
    def downtime_error_fraction(self) -> float:
        """Signed relative downtime error vs truth."""
        if not self.truth_downtime_hours:
            return 0.0
        return (
            self.reconstructed_downtime_hours - self.truth_downtime_hours
        ) / self.truth_downtime_hours


def ground_truth_failure_events(
    dataset: Dataset, single_links_only: bool = True
) -> List[FailureEvent]:
    """The injected failures as :class:`FailureEvent` on canonical names.

    With ``single_links_only`` (the default) failures on multi-link
    adjacencies are dropped, matching the universe the paper's analysis
    covers.  Failures running past the horizon are clipped out (censored —
    no channel can reconstruct an end it never saw).
    """
    network = dataset.network
    keep = set(network.single_link_ids()) if single_links_only else set(network.links)
    events = []
    for failure in dataset.ground_truth_failures:
        if failure.link_id not in keep:
            continue
        if failure.end >= dataset.horizon_end:
            continue
        events.append(
            FailureEvent(
                link=network.links[failure.link_id].canonical_name,
                start=failure.start,
                end=failure.end,
                source="ground-truth",
            )
        )
    events.sort(key=lambda f: (f.start, f.link))
    return events


def grade_channel(
    channel: str,
    reconstructed: Sequence[FailureEvent],
    truth: Sequence[FailureEvent],
    config: MatchConfig = MatchConfig(),
) -> ChannelGrade:
    """Match a channel's failures to truth and summarise the fidelity."""
    result = match_failures(list(truth), list(reconstructed), config)
    return ChannelGrade(
        channel=channel,
        truth_count=len(truth),
        reconstructed_count=len(reconstructed),
        matched_count=result.matched_count,
        truth_downtime_hours=sum(f.duration for f in truth) / SECONDS_PER_HOUR,
        reconstructed_downtime_hours=(
            sum(f.duration for f in reconstructed) / SECONDS_PER_HOUR
        ),
    )


def grade_both_channels(
    dataset: Dataset,
    syslog_failures: Sequence[FailureEvent],
    isis_failures: Sequence[FailureEvent],
    config: MatchConfig = MatchConfig(),
) -> Dict[str, ChannelGrade]:
    """Grade syslog and IS-IS against the same generative truth."""
    truth = ground_truth_failure_events(dataset)
    return {
        "syslog": grade_channel("syslog", syslog_failures, truth, config),
        "isis": grade_channel("isis", isis_failures, truth, config),
    }
