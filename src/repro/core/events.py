"""The common event vocabulary both channels are reduced to.

The paper's comparison requires reducing syslog messages and IS-IS LSP
deltas to the same three-level hierarchy (§3.4):

``LinkMessage``
    One channel record attributed to a link: a single router's syslog
    message, or a single origin's reachability withdrawal/advertisement.
``Transition``
    A link-level state change: same-direction messages from the link's two
    ends merged within a small window.  Carries which ends reported — the
    raw material for Table 3's None/One/Both accounting.
``FailureEvent``
    A DOWN transition followed by an UP transition on the same link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.intervals.timeline import DOWN, UP

#: Channel labels used in ``source`` fields.
SOURCE_SYSLOG = "syslog"
SOURCE_ISIS_IS = "isis-is"
SOURCE_ISIS_IP = "isis-ip"


# --------------------------------------------------------- canonical order
# The three canonical sort keys every execution mode must order by.  All
# five engines (batch, stream, parallel, columnar, service) sort the same
# streams with the same keys — drifting tie-breakers are exactly how
# jobs=N or a resumed stream would silently diverge from the reference
# run, so the keys live here once and `engine-spec.json` pins them.
def message_sort_key(message: "LinkMessage") -> Tuple[float, str, str]:
    """``(time, link, reporter)`` — the message-stream order."""
    return (message.time, message.link, message.reporter)


def transition_sort_key(transition: "Transition") -> Tuple[float, str]:
    """``(time, link)`` — the transition-stream order."""
    return (transition.time, transition.link)


def failure_sort_key(event: "FailureEvent") -> Tuple[float, str]:
    """``(start, link)`` — failure and flap-episode order (duck-typed:
    :class:`~repro.core.flapping.FlapEpisode` carries the same fields)."""
    return (event.start, event.link)


@dataclass(frozen=True)
class LinkMessage:
    """One single-reporter record attributed to a canonical link.

    ``reporter`` is the hostname of the router whose syslog message (or
    whose LSP) produced this record; ``category`` distinguishes IS-IS
    protocol messages from physical-media messages (Table 2's rows), and
    ``reason`` carries the Cisco cause phrase where present.
    """

    time: float
    link: str
    direction: str
    reporter: str
    source: str
    category: str = "isis"
    reason: str = ""

    def __post_init__(self) -> None:
        if self.direction not in (UP, DOWN):
            raise ValueError(f"bad direction {self.direction!r}")


@dataclass(frozen=True)
class Transition:
    """A link-level state change merged from one or both ends' reports."""

    time: float
    link: str
    direction: str
    source: str
    reporters: FrozenSet[str]
    messages: Tuple[LinkMessage, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.direction not in (UP, DOWN):
            raise ValueError(f"bad direction {self.direction!r}")
        if not self.reporters:
            raise ValueError("a transition needs at least one reporter")


@dataclass(frozen=True)
class FailureEvent:
    """A reconstructed failure: DOWN at ``start``, UP at ``end``.

    Zero-duration failures (``end == start``) are legal: sanitising a
    double-down/double-up message sequence can collapse a failure to an
    instant, and §4.1's flap detection must still count it.  Only a
    failure that ends before it starts is an error.
    """

    link: str
    start: float
    end: float
    source: str
    start_transition: Optional[Transition] = None
    end_transition: Optional[Transition] = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("failure end precedes its start")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "FailureEvent") -> bool:
        """Positive-measure overlap on the same link."""
        return (
            self.link == other.link
            and self.start < other.end
            and other.start < self.end
        )
