"""Syslog's false positives (§4.3).

A false positive is a syslog-reconstructed failure that the IS-IS listener
never saw — a "failure" that did not impact traffic.  The paper's findings,
which the report fields mirror:

* 21 % of syslog failures are false positives, but they carry little
  downtime (17.5 h);
* short failures (≤ 10 s) are 83 % of false positives by count yet under an
  hour of downtime; the remaining long ones carry 94 % of FP downtime;
* nearly all long false positives fall inside flapping periods;
* the sub-second ones trace to aborted three-way handshakes and adjacency
  resets — identifiable by the Cisco cause phrase on the Down message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.events import FailureEvent
from repro.core.flapping import in_flap
from repro.core.matching import FailureMatchResult
from repro.intervals import IntervalSet
from repro.util.timefmt import SECONDS_PER_HOUR

#: Cause phrases marking recovery blips rather than real failures.
BLIP_REASONS = ("adjacency reset", "3-way handshake failed")


@dataclass
class FalsePositiveReport:
    """§4.3's false-positive accounting."""

    false_positives: List[FailureEvent] = field(default_factory=list)
    total_syslog_failures: int = 0
    short_threshold: float = 10.0

    @property
    def count(self) -> int:
        return len(self.false_positives)

    @property
    def fraction_of_syslog(self) -> float:
        if not self.total_syslog_failures:
            return 0.0
        return self.count / self.total_syslog_failures

    @property
    def downtime_hours(self) -> float:
        return sum(f.duration for f in self.false_positives) / SECONDS_PER_HOUR

    # -------------------------------------------------- short/long split
    def short(self) -> List[FailureEvent]:
        return [f for f in self.false_positives if f.duration <= self.short_threshold]

    def long(self) -> List[FailureEvent]:
        return [f for f in self.false_positives if f.duration > self.short_threshold]

    @property
    def short_fraction(self) -> float:
        return len(self.short()) / self.count if self.count else 0.0

    @property
    def short_downtime_hours(self) -> float:
        return sum(f.duration for f in self.short()) / SECONDS_PER_HOUR

    @property
    def long_downtime_hours(self) -> float:
        return sum(f.duration for f in self.long()) / SECONDS_PER_HOUR

    # ------------------------------------------------------- attribution
    sub_second: List[FailureEvent] = field(default_factory=list)
    blip_reason: List[FailureEvent] = field(default_factory=list)
    long_in_flap: List[FailureEvent] = field(default_factory=list)

    @property
    def long_in_flap_fraction(self) -> float:
        long = self.long()
        return len(self.long_in_flap) / len(long) if long else 0.0

    @property
    def long_in_flap_downtime_hours(self) -> float:
        return sum(f.duration for f in self.long_in_flap) / SECONDS_PER_HOUR


def classify_false_positives(
    match_result: FailureMatchResult,
    total_syslog_failures: int,
    flap_intervals_by_link: Dict[str, IntervalSet],
    short_threshold: float = 10.0,
) -> FalsePositiveReport:
    """Build the §4.3 report from a syslog-vs-IS-IS failure matching.

    ``match_result`` must have syslog as side ``a``; its ``only_a`` are the
    false positives.
    """
    report = FalsePositiveReport(
        false_positives=list(match_result.only_a),
        total_syslog_failures=total_syslog_failures,
        short_threshold=short_threshold,
    )
    for failure in report.false_positives:
        if failure.duration <= 1.0:
            report.sub_second.append(failure)
        reason = ""
        if failure.start_transition is not None and failure.start_transition.messages:
            reason = failure.start_transition.messages[0].reason
        if any(phrase in reason for phrase in BLIP_REASONS):
            report.blip_reason.append(failure)
        if failure.duration > short_threshold and in_flap(
            flap_intervals_by_link, failure.link, failure.start
        ):
            report.long_in_flap.append(failure)
    return report
