"""Shared reconstruction machinery used by both channel extractors.

Both channels go through the same funnel (§3.4):

1. per-reporter :class:`~repro.core.events.LinkMessage` records, sorted by
   generation time;
2. **merging**: consecutive same-direction messages on a link within a
   merge window collapse into one link-level
   :class:`~repro.core.events.Transition` (the two ends of a link report
   the same state change a detection skew apart);
3. **timeline building** under an ambiguity strategy;
4. **failure extraction**: each complete DOWN span becomes a
   :class:`~repro.core.events.FailureEvent`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import (
    FailureEvent,
    LinkMessage,
    Transition,
    failure_sort_key,
    transition_sort_key,
)
from repro.intervals.timeline import (
    AmbiguityStrategy,
    LinkStateTimeline,
)


def merge_messages(
    messages: Sequence[LinkMessage],
    merge_window: float,
    source: str,
) -> List[Transition]:
    """Collapse per-reporter messages into link-level transitions.

    Messages are grouped per link in time order; a run of same-direction
    messages whose times all fall within ``merge_window`` of the run's first
    message forms one transition stamped with the first message's time.  A
    direction change, or a same-direction message outside the window, starts
    a new transition — the latter is exactly the "double down/up" case whose
    handling §4.3 studies.
    """
    if merge_window < 0:
        raise ValueError("merge window must be non-negative")
    by_link: Dict[str, List[LinkMessage]] = {}
    for message in messages:
        by_link.setdefault(message.link, []).append(message)

    transitions: List[Transition] = []
    for link in sorted(by_link):
        run: List[LinkMessage] = []
        for message in sorted(by_link[link], key=lambda m: m.time):
            if (
                run
                and message.direction == run[0].direction
                and message.time - run[0].time <= merge_window
            ):
                run.append(message)
                continue
            if run:
                transitions.append(_transition_from_run(run, source))
            run = [message]
        if run:
            transitions.append(_transition_from_run(run, source))
    transitions.sort(key=transition_sort_key)
    return transitions


def _transition_from_run(run: List[LinkMessage], source: str) -> Transition:
    return Transition(
        time=run[0].time,
        link=run[0].link,
        direction=run[0].direction,
        source=source,
        reporters=frozenset(message.reporter for message in run),
        messages=tuple(run),
    )


def build_timelines(
    transitions: Sequence[Transition],
    horizon_start: float,
    horizon_end: float,
    strategy: AmbiguityStrategy = AmbiguityStrategy.PREVIOUS_STATE,
    links: Optional[Sequence[str]] = None,
) -> Dict[str, LinkStateTimeline]:
    """One timeline per link from its transition stream.

    With ``links`` given, links with no transitions at all still get an
    (all-UP) timeline — they existed and simply never failed, which matters
    for per-link statistics.
    """
    by_link: Dict[str, List[Tuple[float, str]]] = {}
    for transition in transitions:
        by_link.setdefault(transition.link, []).append(
            (transition.time, transition.direction)
        )
    if links is not None:
        for link in links:
            by_link.setdefault(link, [])
    return {
        link: LinkStateTimeline.from_transitions(
            events, horizon_start, horizon_end, strategy=strategy
        )
        for link, events in by_link.items()
    }


def failures_from_timelines(
    timelines: Dict[str, LinkStateTimeline],
    transitions: Sequence[Transition],
    source: str,
) -> List[FailureEvent]:
    """Complete DOWN spans become failures, with their transitions attached.

    Censored spans (downtime running into either horizon edge) are not
    failures — their true start or end was never observed.
    """
    index: Dict[Tuple[str, float, str], Transition] = {
        (t.link, t.time, t.direction): t for t in transitions
    }
    failures: List[FailureEvent] = []
    for link in sorted(timelines):
        for span in timelines[link].down_spans(include_censored=False):
            failures.append(
                FailureEvent(
                    link=link,
                    start=span.start,
                    end=span.end,
                    source=source,
                    start_transition=index.get((link, span.start, "down")),
                    end_transition=index.get((link, span.end, "up")),
                )
            )
    failures.sort(key=failure_sort_key)
    return failures
