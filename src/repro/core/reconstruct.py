"""Batch drivers for the shared reconstruction funnel (§3.4).

Both channels go through the same funnel:

1. per-reporter :class:`~repro.core.events.LinkMessage` records, sorted by
   generation time;
2. **merging**: consecutive same-direction messages on a link within a
   merge window collapse into one link-level
   :class:`~repro.core.events.Transition`
   (:class:`repro.engine.merge.RunMerger` is the canonical machine);
3. **timeline building** under an ambiguity strategy and
4. **failure extraction**: each complete DOWN span becomes a
   :class:`~repro.core.events.FailureEvent`
   (:class:`repro.engine.timeline.TimelineBuilder` is the canonical
   machine for both).

The drivers here feed those per-link machines to exhaustion and close
them with an infinite watermark, so batch results are by construction
the stream results at end-of-stream.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import (
    FailureEvent,
    LinkMessage,
    Transition,
    failure_sort_key,
    transition_sort_key,
)
from repro.engine.merge import RunMerger
from repro.engine.timeline import TimelineBuilder
from repro.intervals.timeline import (
    AmbiguityStrategy,
    LinkStateTimeline,
)


def merge_messages(
    messages: Sequence[LinkMessage],
    merge_window: float,
    source: str,
) -> List[Transition]:
    """Collapse per-reporter messages into link-level transitions.

    Messages are grouped per link in time order; a run of same-direction
    messages whose times all fall within ``merge_window`` of the run's first
    message forms one transition stamped with the first message's time.  A
    direction change, or a same-direction message outside the window, starts
    a new transition — the latter is exactly the "double down/up" case whose
    handling §4.3 studies.
    """
    merger = RunMerger(merge_window, source)
    by_link: Dict[str, List[LinkMessage]] = {}
    for message in messages:
        by_link.setdefault(message.link, []).append(message)

    transitions: List[Transition] = []
    for link in sorted(by_link):
        for message in sorted(by_link[link], key=lambda m: m.time):
            closed = merger.feed(message)
            if closed is not None:
                transitions.append(closed)
    transitions.extend(merger.advance(math.inf))
    transitions.sort(key=transition_sort_key)
    return transitions


def reconstruct_channel(
    transitions: Sequence[Transition],
    horizon_start: float,
    horizon_end: float,
    strategy: AmbiguityStrategy = AmbiguityStrategy.PREVIOUS_STATE,
    links: Optional[Sequence[str]] = None,
    source: str = "",
) -> Tuple[Dict[str, LinkStateTimeline], List[FailureEvent]]:
    """Timelines and complete failures from a channel's transition stream.

    One :class:`~repro.engine.timeline.TimelineBuilder` per link, fed in
    time order and flushed at the horizon: the rendered timelines carry
    censoring flags, and the collected failures are the non-censored DOWN
    spans with their opening/closing transitions attached.  With ``links``
    given, links with no transitions at all still get an (all-UP)
    timeline — they existed and simply never failed, which matters for
    per-link statistics.
    """
    builders: Dict[str, TimelineBuilder] = {}
    by_link: Dict[str, List[Transition]] = {}
    for transition in transitions:
        by_link.setdefault(transition.link, []).append(transition)
    if links is not None:
        for link in links:
            by_link.setdefault(link, [])

    timelines: Dict[str, LinkStateTimeline] = {}
    failures: List[FailureEvent] = []
    for link in sorted(by_link):
        builder = builders[link] = TimelineBuilder(
            link, horizon_start, horizon_end, strategy, source, capture=True
        )
        for transition in sorted(by_link[link], key=transition_sort_key):
            builder.feed(transition)
    for link in sorted(builders):
        builder = builders[link]
        builder.flush()
        failures.extend(builder.collect())
        timelines[link] = builder.timeline()
    failures.sort(key=failure_sort_key)
    return timelines, failures


def build_timelines(
    transitions: Sequence[Transition],
    horizon_start: float,
    horizon_end: float,
    strategy: AmbiguityStrategy = AmbiguityStrategy.PREVIOUS_STATE,
    links: Optional[Sequence[str]] = None,
) -> Dict[str, LinkStateTimeline]:
    """One timeline per link from its transition stream.

    A thin wrapper over :meth:`LinkStateTimeline.from_transitions` (which
    itself replays the engine's :class:`TimelineBuilder`) for callers that
    need timelines without failure extraction — ambiguity sweeps and
    ad-hoc analysis.  The mode pipelines use :func:`reconstruct_channel`.
    """
    by_link: Dict[str, List[Tuple[float, str]]] = {}
    for transition in transitions:
        by_link.setdefault(transition.link, []).append(
            (transition.time, transition.direction)
        )
    if links is not None:
        for link in links:
            by_link.setdefault(link, [])
    return {
        link: LinkStateTimeline.from_transitions(
            events, horizon_start, horizon_end, strategy=strategy
        )
        for link, events in by_link.items()
    }
