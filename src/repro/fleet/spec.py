"""Fleet workload specification and size presets.

A :class:`FleetSpec` fixes everything about a generated corpus — topology
shape, horizon, failure and chatter rates, and the seed — so that the same
spec always regenerates the same bytes, in whole or per pod shard.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.util.timefmt import SECONDS_PER_DAY

#: Chatter randomness is drawn per router per fixed-width window, *not* per
#: sweep slice, so the emitted corpus is invariant to ``slice_seconds``.
CHATTER_WINDOW = 3600.0


@dataclass(frozen=True)
class FleetSpec:
    """All knobs of one fleet corpus; the seed fixes every byte."""

    #: Preset name this spec came from (informational; carried into the
    #: manifest so a reader knows how the corpus was sized).
    preset: str
    seed: int = 7
    #: Pods: one core hub plus ``cpe_per_pod`` customer routers each, hubs
    #: joined in a ring.  Routers = pods * (1 + cpe_per_pod).
    pods: int = 3
    cpe_per_pod: int = 2
    duration_days: float = 1.0
    #: Failures start only after the warm-up (all-up initial floods land
    #: first, as in the scenario runner).
    warmup: float = 3600.0
    #: Per-link failure intensity; inter-failure gaps are exponential.
    failures_per_link_month: float = 3.0
    #: Bounded-Pareto repair durations (heavy tail, capped below the 24 h
    #: ticket-verification threshold so sanitisation needs no NOC archive).
    repair_shape: float = 0.9
    repair_min: float = 30.0
    repair_max: float = 6 * 3600.0
    #: Share of failures that are physical (media messages + /31
    #: withdrawal) rather than protocol-only.
    physical_share: float = 0.6
    #: Background syslog unrelated to ISIS, per router per day.
    chatter_per_router_day: float = 6.0
    #: Periodic LSP refresh per router (phase-staggered).
    lsp_refresh_interval: float = 12 * 3600.0
    #: Syslog transport delay bound; must stay below ``slice_seconds`` so
    #: the sweep's carry buffer spans at most one slice.
    delivery_delay_max: float = 5.0
    #: Sweep granularity.  A pure memory/latency knob: the corpus is
    #: byte-identical for any valid value (multiple of CHATTER_WINDOW).
    slice_seconds: float = 6 * CHATTER_WINDOW

    def __post_init__(self) -> None:
        if self.pods < 1:
            raise ValueError("pods must be positive")
        if self.cpe_per_pod < 1:
            raise ValueError("cpe_per_pod must be positive")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.slice_seconds % CHATTER_WINDOW:
            raise ValueError(
                f"slice_seconds must be a multiple of {CHATTER_WINDOW:g}"
            )
        if self.delivery_delay_max > self.slice_seconds:
            raise ValueError("delivery_delay_max must not exceed slice_seconds")
        if not 0.0 <= self.physical_share <= 1.0:
            raise ValueError("physical_share must be a fraction")

    # ------------------------------------------------------------- derived
    @property
    def router_count(self) -> int:
        return self.pods * (1 + self.cpe_per_pod)

    @property
    def link_count(self) -> int:
        ring = 0 if self.pods < 2 else (1 if self.pods == 2 else self.pods)
        return self.pods * self.cpe_per_pod + ring

    @property
    def horizon_end(self) -> float:
        return self.duration_days * SECONDS_PER_DAY

    def with_overrides(self, **kwargs: object) -> "FleetSpec":
        """A copy with fields replaced (CLI flag plumbing)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: Size presets.  ``tiny`` is the CI smoke corpus (seconds to generate),
#: ``small`` a laptop-friendly dataset-mode corpus, ``fleet`` the 10k-router
#: benchmark workload behind BENCH_fleet.json, ``paper`` the 100k-router
#: months-long configuration the subsystem is sized for.
PRESETS: Dict[str, FleetSpec] = {
    "tiny": FleetSpec(
        preset="tiny", pods=3, cpe_per_pod=2, duration_days=1.0,
        chatter_per_router_day=30.0, lsp_refresh_interval=4 * 3600.0,
        failures_per_link_month=90.0, repair_max=1800.0,
    ),
    "small": FleetSpec(
        preset="small", pods=25, cpe_per_pod=3, duration_days=7.0,
        chatter_per_router_day=12.0, lsp_refresh_interval=6 * 3600.0,
    ),
    "fleet": FleetSpec(
        preset="fleet", pods=2500, cpe_per_pod=3, duration_days=30.0,
    ),
    "paper": FleetSpec(
        preset="paper", pods=25000, cpe_per_pod=3, duration_days=90.0,
    ),
}


def preset(name: str, **overrides: object) -> FleetSpec:
    """Look up a preset by name, optionally overriding fields.

    >>> preset("tiny").router_count
    9
    >>> preset("tiny", seed=11).seed
    11
    """
    try:
        base = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r} (choose from {sorted(PRESETS)})"
        ) from None
    return base.with_overrides(**overrides) if overrides else base
