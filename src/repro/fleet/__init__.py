"""Fleet-scale streaming corpus generation.

The :mod:`repro.simulation` scenario runner materialises an entire campaign
in memory — router objects, an event queue, every syslog datagram — which
tops out around the paper's own network size.  This package generates
corpora for networks two to three orders of magnitude larger (10k–100k
routers, months of simulated time) by streaming: syslog lines and LSP
records are emitted slice by slice straight into (optionally gzipped)
artifacts, and nothing proportional to the corpus ever lives in memory.

Determinism is per-entity, not per-run: every random stream derives from
``child_rng(seed, label)`` where the label names a link, a router, or a
chatter window.  Because no stream depends on emission order, any pod range
(``shard``) regenerates byte-for-byte the lines it would have contributed
to the full corpus — the property ``tests/test_fleet_generator.py`` pins.

See ``docs/scale.md`` for presets and the benchmark protocol.
"""

from repro.fleet.spec import PRESETS, FleetSpec, preset
from repro.fleet.topology import build_network, fleet_links, pod_routers
from repro.fleet.generate import (
    FleetCounters,
    iter_lsp_records,
    iter_syslog_lines,
    write_corpus,
)

__all__ = [
    "PRESETS",
    "FleetSpec",
    "preset",
    "build_network",
    "fleet_links",
    "pod_routers",
    "FleetCounters",
    "iter_lsp_records",
    "iter_syslog_lines",
    "write_corpus",
]
