"""Arithmetic pod topology for fleet corpora.

The scenario generator builds its network through
:class:`~repro.topology.builder.NetworkBuilder`, whose port and subnet
counters are global mutable state — fine for one in-memory network, useless
for shard-independent regeneration.  Here every identifier is *computed*
from ``(spec, pod)``: system IDs, port names, /31 subnets, and link IDs are
closed-form functions, so a worker holding only the spec can reconstruct
exactly the routers and links of its pod range without touching the rest of
the fleet.

Shape: each pod is a star — one core hub (``p0007-core-01``) with
``cpe_per_pod`` customer routers — and hubs are joined in a ring for
backbone connectivity (a single hub–hub link for two pods, nothing for
one).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.fleet.spec import FleetSpec
from repro.topology.addressing import parse_ipv4, system_id_for_index
from repro.topology.model import Link, LinkClass, Network, Router, RouterClass

#: Fleet /31s come from their own block so they can never collide with the
#: CENIC-like scenario's 137.164.0.0 numbering.
_BASE_ADDRESS = parse_ipv4("10.64.0.0")

_HUB_PORT_STEM = "TenGigE0/0/"
_CPE_PORT = "GigabitEthernet0/0"


def hub_name(pod: int) -> str:
    return f"p{pod:04d}-core-01"


def cpe_name(pod: int, cpe: int) -> str:
    return f"p{pod:04d}-cpe-{cpe:02d}"


def _ring_count(spec: FleetSpec) -> int:
    if spec.pods < 2:
        return 0
    return 1 if spec.pods == 2 else spec.pods


def pod_routers(spec: FleetSpec, pod: int) -> List[Router]:
    """The routers of one pod, hub first, with their global system IDs."""
    if not 0 <= pod < spec.pods:
        raise ValueError(f"pod {pod} out of range")
    base_index = pod * (1 + spec.cpe_per_pod) + 1
    routers = [
        Router(
            name=hub_name(pod),
            router_class=RouterClass.CORE,
            system_id=system_id_for_index(base_index),
        )
    ]
    for cpe in range(spec.cpe_per_pod):
        routers.append(
            Router(
                name=cpe_name(pod, cpe),
                router_class=RouterClass.CPE,
                system_id=system_id_for_index(base_index + 1 + cpe),
            )
        )
    return routers


def _access_link(spec: FleetSpec, pod: int, cpe: int) -> Link:
    index = pod * spec.cpe_per_pod + cpe
    # Hub names sort before their pod's CPE names ("core" < "cpe"), so the
    # hub is always the canonical first endpoint.
    return Link(
        link_id=f"fl-a{index:08d}",
        router_a=hub_name(pod),
        port_a=f"{_HUB_PORT_STEM}{cpe}",
        router_b=cpe_name(pod, cpe),
        port_b=_CPE_PORT,
        subnet=_BASE_ADDRESS + 2 * index,
        metric=10,
        link_class=LinkClass.CPE,
    )


def _ring_link(spec: FleetSpec, ring: int) -> Link:
    """Ring link ``ring`` joins hub ``ring`` to hub ``ring + 1 (mod pods)``.

    The lower pod's hub takes ring port ``cpe_per_pod`` ("next"), the
    higher pod's hub ``cpe_per_pod + 1`` ("prev"); only the wrap link needs
    endpoint swapping to satisfy canonical order.
    """
    low, high = ring, (ring + 1) % spec.pods
    port_low = f"{_HUB_PORT_STEM}{spec.cpe_per_pod}"
    port_high = f"{_HUB_PORT_STEM}{spec.cpe_per_pod + 1}"
    if high < low:  # the wrap link (pods-1 -> 0)
        low, high = high, low
        port_low, port_high = port_high, port_low
    subnet = _BASE_ADDRESS + 2 * (spec.pods * spec.cpe_per_pod + ring)
    return Link(
        link_id=f"fl-r{ring:08d}",
        router_a=hub_name(low),
        port_a=port_low,
        router_b=hub_name(high),
        port_b=port_high,
        subnet=subnet,
        metric=10,
        link_class=LinkClass.CORE,
    )


def fleet_links(
    spec: FleetSpec, pods: Optional[Iterable[int]] = None
) -> Iterator[Link]:
    """Every link of the fleet, or only those *incident* to ``pods``.

    Ring links are incident to two pods; restricting to a pod range yields
    each such link once even when both its pods are in the range.
    """
    if pods is None:
        for pod in range(spec.pods):
            for cpe in range(spec.cpe_per_pod):
                yield _access_link(spec, pod, cpe)
        for ring in range(_ring_count(spec)):
            yield _ring_link(spec, ring)
        return

    rings = _ring_count(spec)
    seen_rings = set()
    for pod in sorted(set(pods)):
        if not 0 <= pod < spec.pods:
            raise ValueError(f"pod {pod} out of range")
        for cpe in range(spec.cpe_per_pod):
            yield _access_link(spec, pod, cpe)
        # Incident rings: the pod's own "next" link and its predecessor's.
        for ring in ((pod - 1) % spec.pods, pod):
            if ring < rings and ring not in seen_rings:
                seen_rings.add(ring)
                yield _ring_link(spec, ring)


def build_network(spec: FleetSpec) -> Network:
    """Materialise the whole fleet as a :class:`Network` object.

    Memory is O(routers + links); fine through the ``fleet`` preset, and
    required for dataset-mode output (config rendering, analysis).  The
    streaming generator itself never calls this.
    """
    network = Network()
    for pod in range(spec.pods):
        for router in pod_routers(spec, pod):
            network.add_router(router)
    for link in fleet_links(spec):
        network.add_link(link)
    return network
