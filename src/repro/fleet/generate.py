"""Streaming fleet corpus generation: the slice sweep.

The generator never holds the corpus.  Time is swept in slices of
``spec.slice_seconds``; each slice materialises only the lines generated in
it (plus a carry buffer of at most one slice of in-flight syslog), sorts
them by the global arrival key, and hands them to the writer.  Three
properties make the output reproducible in pieces:

* **Per-entity randomness.**  Every stream is ``child_rng(seed, label)``
  where the label names a link (failure schedule), a router (LSP refresh
  phase), or a router × hour window (chatter).  No draw depends on emission
  order, so any pod range regenerates exactly its own lines.
* **Slice invariance.**  Chatter is drawn per fixed ``CHATTER_WINDOW``, not
  per slice, and slices are multiples of that window, so changing
  ``slice_seconds`` cannot move a single byte.
* **Bounded carry.**  Syslog delivery delay is capped below the slice
  width, so a line generated in slice *s* arrives in *s* or *s + 1*; the
  carry buffer is provably sufficient for a correct global arrival sort.

Failure *schedules* (a handful of episodes per link) are precomputed and
held in memory — they are O(links × failures), independent of the corpus
volume, which is dominated by chatter and LSP refreshes; both of those
stream.  Unlike the scenario runner, LSPs are flooded immediately on each
state change (no 5-second generation batching) so floods stay
slice-invariant.
"""

from __future__ import annotations

import gzip
import json
import math
from bisect import bisect_left
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.fleet.spec import CHATTER_WINDOW, FleetSpec
from repro.fleet.topology import (
    build_network,
    cpe_name,
    fleet_links,
    hub_name,
)
from repro.isis.lsp import LinkStatePacket, LspId
from repro.isis.mrt import MrtDumpWriter
from repro.isis.tlv import (
    AreaAddressesTlv,
    DynamicHostnameTlv,
    ExtendedIpReachabilityTlv,
    ExtendedIsReachabilityTlv,
    IpPrefix,
    IsNeighbor,
    ProtocolsSupportedTlv,
    Tlv,
)
from repro.simulation.effects import (
    REASON_HOLD_EXPIRED,
    REASON_INTERFACE_DOWN,
    REASON_NEW_ADJACENCY,
)
from repro.simulation.failures import FailureCause, GroundTruthFailure
from repro.syslog.cisco import (
    AdjacencyChangeMessage,
    CiscoFlavor,
    LineProtoUpDownMessage,
    LinkUpDownMessage,
)
from repro.syslog.message import Facility, Severity, SyslogMessage
from repro.topology.addressing import system_id_for_index
from repro.topology.configgen import render_all_configs
from repro.topology.model import Link
from repro.util.rand import child_rng, pareto_bounded
from repro.util.timefmt import SECONDS_PER_DAY

#: Entries per TLV instance, mirroring ``SimulatedRouter.build_lsp``.
_IS_ENTRIES_PER_TLV = 23
_IP_ENTRIES_PER_TLV = 28

#: Background (non-ISIS) messages routers emit between failures.  The
#: analysis must ignore all of these; they exist to give the parser a
#: realistic haystack.
_CHATTER: Tuple[Tuple[str, Severity, Facility], ...] = (
    (
        "%SYS-5-CONFIG_I: Configured from console by admin on vty0 (10.0.0.1)",
        Severity.NOTICE,
        Facility.LOCAL7,
    ),
    (
        "%SEC-6-IPACCESSLOGP: list 102 denied tcp 10.1.1.1(1025) -> "
        "10.9.9.9(80), 1 packet",
        Severity.INFORMATIONAL,
        Facility.LOCAL4,
    ),
    (
        "%SSH-5-SSH2_SESSION: SSH2 Session request from 10.0.0.5 (tty = 0) "
        "using crypto cipher 'aes256-ctr' Succeeded",
        Severity.NOTICE,
        Facility.LOCAL7,
    ),
    (
        "%ENVMON-4-FAN_SPEED_CHANGE: Fan tray 0 speed changed to 60 percent",
        Severity.WARNING,
        Facility.LOCAL7,
    ),
    (
        "%BGP-5-ADJCHANGE: neighbor 10.255.0.1 Up",
        Severity.NOTICE,
        Facility.LOCAL7,
    ),
    (
        "%PIM-6-INVALID_RP_JOIN: Received (*, 224.0.1.40) Join from "
        "10.2.2.2 for invalid RP 10.3.3.3",
        Severity.INFORMATIONAL,
        Facility.LOCAL7,
    ),
)


@dataclass
class FleetCounters:
    """What one generation pass emitted (carried into the manifest)."""

    routers: int = 0
    links: int = 0
    failures: int = 0
    syslog_lines: int = 0
    chatter_lines: int = 0
    failure_lines: int = 0
    lsp_records: int = 0


# --------------------------------------------------------------------------
# Per-link failure schedules
# --------------------------------------------------------------------------

#: LSP event kinds, in application order for same-router same-time ties.
_EV_DOWN, _EV_PREFIX_UP, _EV_ADJ_UP, _EV_REFRESH = 0, 1, 2, 3


@dataclass
class _LinkSchedule:
    """Everything one link's failure stream produces."""

    failures: List[GroundTruthFailure] = field(default_factory=list)
    #: ``(generated, arrival, router, line)`` — syslog, unsorted.
    messages: List[Tuple[float, float, str, str]] = field(default_factory=list)
    #: ``(time, router, kind, link_id, physical)`` — LSP state changes.
    lsp_events: List[Tuple[float, str, int, str, bool]] = field(
        default_factory=list
    )


def _flavor(router: str) -> CiscoFlavor:
    return CiscoFlavor.IOS_XR if "-core-" in router else CiscoFlavor.IOS


def _link_serial(spec: FleetSpec, link: Link) -> int:
    """A dense index over all links (episode-ID namespacing)."""
    index = int(link.link_id[4:])
    if link.link_id.startswith("fl-r"):
        return spec.pods * spec.cpe_per_pod + index
    return index


def _link_schedule(spec: FleetSpec, link: Link) -> _LinkSchedule:
    """All failures on one link, with their syslog and LSP consequences.

    One ``child_rng`` stream per link with a fixed draw order makes the
    schedule independent of which shard computes it: both pods touching a
    ring link derive the identical schedule and each emits only its own
    routers' messages.
    """
    rng = child_rng(spec.seed, f"fleet:failures:{link.link_id}")
    rate = spec.failures_per_link_month / (30.0 * SECONDS_PER_DAY)
    out = _LinkSchedule()
    iface = {link.router_a: link.port_a, link.router_b: link.port_b}
    serial = _link_serial(spec, link)

    def say(router: str, gen: float, body_msg: object) -> None:
        delay = rng.uniform(0.0, spec.delivery_delay_max)
        line = body_msg.to_syslog(gen).render()  # type: ignore[attr-defined]
        out.messages.append((gen, gen + delay, router, line))

    def adj(router: str, gen: float, direction: str, reason: str) -> None:
        other = link.other_end(router)
        say(
            router,
            gen,
            AdjacencyChangeMessage(
                router=router,
                interface=iface[router],
                neighbor_hostname=other,
                direction=direction,
                reason=reason,
                flavor=_flavor(router),
            ),
        )

    def media(router: str, gen: float, direction: str) -> None:
        say(router, gen, LinkUpDownMessage(router, iface[router], direction))
        say(
            router, gen, LineProtoUpDownMessage(router, iface[router], direction)
        )

    t = spec.warmup
    episode = 0
    while True:
        t += rng.expovariate(rate)
        duration = pareto_bounded(
            rng, spec.repair_shape, spec.repair_min, spec.repair_max
        )
        physical = rng.random() < spec.physical_share
        first = rng.choice([link.router_a, link.router_b])
        skew = rng.uniform(0.05, 40.0)
        handshake = rng.uniform(0.5, 3.0)
        up_jitter = (rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0))
        carrier_jitter = (rng.uniform(0.0, 0.3), rng.uniform(0.0, 0.3))
        end = t + duration
        if end > spec.horizon_end:
            break
        second = link.other_end(first)
        noticed = t + skew < end
        repair = max(t, end - handshake)
        out.failures.append(
            GroundTruthFailure(
                link_id=link.link_id,
                start=t,
                end=end,
                cause=FailureCause.PHYSICAL if physical else FailureCause.PROTOCOL,
                episode_id=serial * 100_000 + episode,
                flap_member=False,
                first_detector=first,
                second_skew=skew,
                delayed_second=False,
                repair_time=repair,
            )
        )

        detections = [(first, t, 0)]
        if noticed:
            detections.append((second, t + skew, 1))
        for router, when, side in detections:
            if physical:
                media(router, when, "down")
                adj(router, when, "down", REASON_INTERFACE_DOWN)
            else:
                adj(router, when, "down", REASON_HOLD_EXPIRED)
            out.lsp_events.append(
                (when, router, _EV_DOWN, link.link_id, physical)
            )
        for router, _, side in detections:
            if physical:
                media(router, repair + carrier_jitter[side], "up")
                out.lsp_events.append(
                    (repair, router, _EV_PREFIX_UP, link.link_id, physical)
                )
            adj(router, end + up_jitter[side], "up", REASON_NEW_ADJACENCY)
            out.lsp_events.append(
                (end, router, _EV_ADJ_UP, link.link_id, physical)
            )

        t = end
        episode += 1
    return out


# --------------------------------------------------------------------------
# Syslog sweep
# --------------------------------------------------------------------------


def _pod_list(spec: FleetSpec, pods: Optional[Iterable[int]]) -> List[int]:
    if pods is None:
        return list(range(spec.pods))
    out = sorted(set(pods))
    for pod in out:
        if not 0 <= pod < spec.pods:
            raise ValueError(f"pod {pod} out of range")
    return out


def _router_names(spec: FleetSpec, pod_list: List[int]) -> List[str]:
    names: List[str] = []
    for pod in pod_list:
        names.append(hub_name(pod))
        names.extend(cpe_name(pod, c) for c in range(spec.cpe_per_pod))
    return names


def iter_syslog_lines(
    spec: FleetSpec,
    pods: Optional[Iterable[int]] = None,
    *,
    counters: Optional[FleetCounters] = None,
) -> Iterator[Tuple[float, str]]:
    """Yield ``(arrival_time, line)`` in listener arrival order.

    ``pods`` restricts output to lines *emitted by* routers of those pods;
    concatenating a partition's shards and re-sorting by ``(arrival, line)``
    reproduces the unsharded corpus exactly.
    """
    pod_list = _pod_list(spec, pods)
    routers = _router_names(spec, pod_list)
    allowed: Optional[Set[str]] = set(routers) if pods is not None else None

    # Failure traffic, bucketed by *generation* slice.
    msgs_by_slice: Dict[int, List[Tuple[float, str]]] = {}
    for link in fleet_links(spec, None if pods is None else pod_list):
        sched = _link_schedule(spec, link)
        if counters is not None:
            counters.failures += len(sched.failures)
        for gen, arrival, router, line in sched.messages:
            if allowed is not None and router not in allowed:
                continue
            if gen >= spec.horizon_end:
                # Up-side jitter can land just past the horizon; clip it
                # (like chatter) so emission never depends on whether the
                # last slice happens to overshoot horizon_end.
                continue
            s = int(gen // spec.slice_seconds)
            msgs_by_slice.setdefault(s, []).append((arrival, line))
            if counters is not None:
                counters.failure_lines += 1

    lam = spec.chatter_per_router_day * CHATTER_WINDOW / SECONDS_PER_DAY
    windows_per_slice = int(spec.slice_seconds // CHATTER_WINDOW)
    n_slices = max(1, math.ceil(spec.horizon_end / spec.slice_seconds))

    carry: List[Tuple[float, str]] = []
    for s in range(n_slices):
        hi = (s + 1) * spec.slice_seconds
        pool = carry
        pool.extend(msgs_by_slice.pop(s, ()))

        for w in range(s * windows_per_slice, (s + 1) * windows_per_slice):
            wstart = w * CHATTER_WINDOW
            if wstart >= spec.horizon_end:
                break
            for router in routers:
                rng = child_rng(spec.seed, f"fleet:chatter:{router}:{w}")
                count = int(lam)
                if rng.random() < lam - count:
                    count += 1
                for _ in range(count):
                    gen = wstart + rng.uniform(0.0, CHATTER_WINDOW)
                    body, severity, facility = rng.choice(_CHATTER)
                    delay = rng.uniform(0.0, spec.delivery_delay_max)
                    if gen >= spec.horizon_end:
                        continue  # draws stay window-complete
                    line = SyslogMessage(
                        timestamp=gen,
                        hostname=router,
                        body=body,
                        severity=severity,
                        facility=facility,
                    ).render()
                    pool.append((gen + delay, line))
                    if counters is not None:
                        counters.chatter_lines += 1

        pool.sort()
        split = bisect_left(pool, (hi,))
        for item in pool[:split]:
            if counters is not None:
                counters.syslog_lines += 1
            yield item
        carry = pool[split:]

    carry.sort()
    for item in carry:
        if counters is not None:
            counters.syslog_lines += 1
        yield item


# --------------------------------------------------------------------------
# LSP sweep
# --------------------------------------------------------------------------


class _RouterLspState:
    """One router's advertisement state, mirroring ``SimulatedRouter``."""

    __slots__ = (
        "name",
        "system_id",
        "seq",
        "neighbor_by_link",
        "metric_by_link",
        "prefix_by_link",
        "up_links_by_neighbor",
        "adv_prefixes",
    )

    def __init__(self, name: str, system_id: str) -> None:
        self.name = name
        self.system_id = system_id
        self.seq = 0
        self.neighbor_by_link: Dict[str, str] = {}
        self.metric_by_link: Dict[str, int] = {}
        self.prefix_by_link: Dict[str, Tuple[int, int]] = {}
        self.up_links_by_neighbor: Dict[str, Set[str]] = {}
        self.adv_prefixes: Set[Tuple[int, int]] = set()

    def attach(self, link_id: str, neighbor_id: str, metric: int,
               prefix: Tuple[int, int]) -> None:
        self.neighbor_by_link[link_id] = neighbor_id
        self.metric_by_link[link_id] = metric
        self.prefix_by_link[link_id] = prefix
        self.up_links_by_neighbor.setdefault(neighbor_id, set()).add(link_id)
        self.adv_prefixes.add(prefix)

    def apply(self, kind: int, link_id: str, physical: bool) -> bool:
        """Apply one event; return whether the advertisement changed."""
        neighbor = self.neighbor_by_link[link_id]
        up = self.up_links_by_neighbor[neighbor]
        prefix = self.prefix_by_link[link_id]
        changed = False
        if kind == _EV_DOWN:
            if link_id in up:
                up.discard(link_id)
                changed = True
            if physical and prefix in self.adv_prefixes:
                self.adv_prefixes.discard(prefix)
                changed = True
        elif kind == _EV_PREFIX_UP:
            if prefix not in self.adv_prefixes:
                self.adv_prefixes.add(prefix)
                changed = True
        elif kind == _EV_ADJ_UP:
            if link_id not in up:
                up.add(link_id)
                changed = True
        return changed

    def build(self) -> LinkStatePacket:
        neighbors: List[IsNeighbor] = []
        for neighbor_id in sorted(self.up_links_by_neighbor):
            up_links = self.up_links_by_neighbor[neighbor_id]
            if not up_links:
                continue
            metric = min(self.metric_by_link[link_id] for link_id in up_links)
            neighbors.append(IsNeighbor(system_id=neighbor_id, metric=metric))
        prefixes = [
            IpPrefix(prefix=prefix, prefix_length=length, metric=10)
            for prefix, length in sorted(self.adv_prefixes)
        ]
        tlvs: List[Tlv] = [
            AreaAddressesTlv(areas=(bytes.fromhex("490001"),)),
            ProtocolsSupportedTlv(nlpids=(0xCC,)),
            DynamicHostnameTlv(hostname=self.name),
        ]
        for i in range(0, len(neighbors), _IS_ENTRIES_PER_TLV):
            tlvs.append(
                ExtendedIsReachabilityTlv(
                    neighbors=tuple(neighbors[i : i + _IS_ENTRIES_PER_TLV])
                )
            )
        for i in range(0, len(prefixes), _IP_ENTRIES_PER_TLV):
            tlvs.append(
                ExtendedIpReachabilityTlv(
                    prefixes=tuple(prefixes[i : i + _IP_ENTRIES_PER_TLV])
                )
            )
        self.seq += 1
        return LinkStatePacket(
            lsp_id=LspId(self.system_id),
            sequence_number=self.seq,
            remaining_lifetime=1199,
            tlvs=tuple(tlvs),
        )


def _system_id_of(spec: FleetSpec, name: str) -> str:
    # Pod and CPE fields are zero-padded to a *minimum* width, so parse by
    # the '-' delimiters, not by position: "p10000-cpe-123" is legal.
    pod = int(name[1 : name.index("-")])
    base = pod * (1 + spec.cpe_per_pod) + 1
    if "-core-" in name:
        return system_id_for_index(base)
    return system_id_for_index(base + 1 + int(name.rsplit("-", 1)[1]))


def iter_lsp_records(
    spec: FleetSpec,
    pods: Optional[Iterable[int]] = None,
    *,
    counters: Optional[FleetCounters] = None,
) -> Iterator[Tuple[float, bytes]]:
    """Yield ``(capture_time, packed_lsp)`` in capture order.

    Floods come from phase-staggered periodic refreshes plus immediate
    refloods on adjacency/prefix state changes, per-router sequence numbers
    advancing in global time order so shards agree with the full sweep.
    """
    pod_list = _pod_list(spec, pods)
    states: Dict[str, _RouterLspState] = {}
    for name in _router_names(spec, pod_list):
        states[name] = _RouterLspState(name, _system_id_of(spec, name))

    events_by_slice: Dict[int, List[Tuple[float, str, int, str, bool]]] = {}
    for link in fleet_links(spec, None if pods is None else pod_list):
        prefix = (link.subnet, 31)
        for me, other in (
            (link.router_a, link.router_b),
            (link.router_b, link.router_a),
        ):
            if me in states:
                states[me].attach(
                    link.link_id, _system_id_of(spec, other), link.metric, prefix
                )
        for event in _link_schedule(spec, link).lsp_events:
            if event[1] not in states:
                continue
            if event[0] >= spec.horizon_end:
                continue  # an episode ending exactly at the horizon
            s = int(event[0] // spec.slice_seconds)
            events_by_slice.setdefault(s, []).append(event)

    # Refresh phase: the first (all-up) flood lands inside the warm-up so
    # the listener seeds every origin before failures begin.
    phase_bound = min(spec.warmup, spec.lsp_refresh_interval) or spec.lsp_refresh_interval
    phases = [
        (name, child_rng(spec.seed, f"fleet:lsp0:{name}").uniform(0.0, phase_bound))
        for name in sorted(states)
    ]

    n_slices = max(1, math.ceil(spec.horizon_end / spec.slice_seconds))
    interval = spec.lsp_refresh_interval
    for s in range(n_slices):
        lo, hi = s * spec.slice_seconds, (s + 1) * spec.slice_seconds
        slice_events = events_by_slice.pop(s, [])
        for name, phase in phases:
            k = max(0, math.ceil((lo - phase) / interval))
            tick = phase + k * interval
            while tick < hi and tick < spec.horizon_end:
                slice_events.append((tick, name, _EV_REFRESH, "", False))
                tick += interval
        slice_events.sort(key=lambda e: (e[0], e[1], e[2]))
        for when, router, kind, link_id, physical in slice_events:
            state = states[router]
            if kind != _EV_REFRESH and not state.apply(kind, link_id, physical):
                continue
            if counters is not None:
                counters.lsp_records += 1
            yield when, state.build().pack()


# --------------------------------------------------------------------------
# Artifact writer
# --------------------------------------------------------------------------


def write_corpus(
    spec: FleetSpec,
    out_dir: Union[str, Path],
    *,
    gzip_artifacts: bool = False,
    dataset: bool = False,
    pods: Optional[Iterable[int]] = None,
) -> FleetCounters:
    """Stream a corpus to ``out_dir`` and return what was written.

    Always writes ``syslog.log[.gz]``, ``isis.dump[.gz]``, and a
    ``manifest.json`` carrying the spec (enough to rebuild the network and
    regenerate any byte).  With ``dataset=True`` the directory additionally
    becomes a full :class:`~repro.simulation.dataset.Dataset` layout —
    configs, ground truth, tickets, metadata — loadable by the analysis
    pipeline; this mode requires the whole fleet uncompressed.
    """
    if dataset and gzip_artifacts:
        raise ValueError("dataset mode requires uncompressed artifacts")
    if dataset and pods is not None:
        raise ValueError("dataset mode requires the full fleet (pods=None)")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    pod_list = _pod_list(spec, pods)
    counters = FleetCounters(
        routers=len(pod_list) * (1 + spec.cpe_per_pod),
        links=sum(1 for _ in fleet_links(spec, None if pods is None else pod_list)),
    )

    syslog_name = "syslog.log.gz" if gzip_artifacts else "syslog.log"
    dump_name = "isis.dump.gz" if gzip_artifacts else "isis.dump"

    syslog_path = out / syslog_name
    if gzip_artifacts:
        stream = gzip.open(syslog_path, "wt", encoding="utf-8", newline="")
    else:
        stream = open(syslog_path, "w", encoding="utf-8", newline="")
    with stream:
        for _, line in iter_syslog_lines(spec, pods, counters=counters):
            stream.write(line)
            stream.write("\n")

    dump_path = out / dump_name
    raw = gzip.open(dump_path, "wb") if gzip_artifacts else open(dump_path, "wb")
    with MrtDumpWriter(raw) as writer:
        for when, payload in iter_lsp_records(spec, pods, counters=counters):
            writer.write(when, payload)

    if dataset:
        network = build_network(spec)
        config_dir = out / "configs"
        config_dir.mkdir(exist_ok=True)
        for hostname, text in render_all_configs(network).items():
            (config_dir / f"{hostname}.cfg").write_text(text, encoding="utf-8")
        failures: List[GroundTruthFailure] = []
        for link in fleet_links(spec):
            failures.extend(_link_schedule(spec, link).failures)
        failures.sort(key=lambda f: (f.start, f.link_id))
        ground_truth = {
            "failures": [
                {**asdict(f), "cause": f.cause.value} for f in failures
            ],
            "media_flaps": [],
        }
        (out / "ground_truth.json").write_text(
            json.dumps(ground_truth), encoding="utf-8"
        )
        (out / "tickets.json").write_text("[]", encoding="utf-8")
        meta = {
            "horizon_start": 0.0,
            "horizon_end": spec.horizon_end,
            "analysis_start": 0.0,
            "listener_outages": [],
            "summary": None,
        }
        (out / "meta.json").write_text(json.dumps(meta), encoding="utf-8")

    manifest = {
        "format": "fleet-corpus-v1",
        "spec": asdict(spec),
        "pods": pod_list if pods is not None else None,
        "dataset": dataset,
        "gzip": gzip_artifacts,
        "artifacts": {"syslog": syslog_name, "isis": dump_name},
        "counters": asdict(counters),
    }
    (out / "manifest.json").write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    return counters
