"""The SNMP poller: periodic ifOperStatus walks with realistic loss.

The poller consumes the dataset's ground truth (the simulator stands in
for the real interfaces' oper status) and emits
:class:`InterfaceSample` records exactly as a management station's poll
archive would contain them: one row per (poll time, router, interface)
that actually answered.

Oper status semantics: an interface reports **down** while its link is in
a ground-truth failure (the media or protocol fault holds it down) and
during media flaps at the affected end(s); otherwise **up**.  A router
that is unreachable from the management station (in-band SNMP) yields no
rows at all for that poll — the same fate-sharing that afflicts syslog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.intervals import Interval, IntervalSet
from repro.simulation.dataset import Dataset
from repro.topology.connectivity import unreachable_intervals
from repro.util.rand import child_rng


@dataclass(frozen=True)
class PollParameters:
    """Management-station configuration."""

    #: Seconds between poll sweeps (SNMP's classic 5 minutes).
    period: float = 300.0
    #: Probability a single agent fails to answer one sweep (timeout).
    poll_loss_probability: float = 0.01
    #: Whether unreachable routers are unpollable (in-band management).
    in_band: bool = True

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("poll period must be positive")
        if not 0.0 <= self.poll_loss_probability <= 1.0:
            raise ValueError("poll loss must be a probability")


@dataclass(frozen=True)
class InterfaceSample:
    """One answered poll row: the interface's oper status at an instant."""

    time: float
    router: str
    interface: str
    link: str  # canonical link name
    oper_up: bool


class SnmpPoller:
    """Generates the poll archive for one dataset."""

    def __init__(
        self,
        dataset: Dataset,
        parameters: PollParameters = PollParameters(),
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.parameters = parameters
        self._rng = child_rng(seed, "snmp-poller")
        self._down_by_link = self._build_down_intervals()
        self._unreachable = self._build_unreachable()

    # ------------------------------------------------------------ building
    def _build_down_intervals(self) -> Dict[str, IntervalSet]:
        """Per-link intervals during which ifOperStatus reads down."""
        spans: Dict[str, List[Interval]] = {}
        horizon_end = self.dataset.horizon_end
        for failure in self.dataset.ground_truth_failures:
            spans.setdefault(failure.link_id, []).append(
                Interval(failure.start, min(failure.end, horizon_end))
            )
        for flap in self.dataset.media_flaps:
            spans.setdefault(flap.link_id, []).append(
                Interval(flap.start, min(flap.end, horizon_end))
            )
        return {
            link_id: IntervalSet(items) for link_id, items in spans.items()
        }

    def _build_unreachable(self) -> Dict[str, IntervalSet]:
        if not self.parameters.in_band:
            return {}
        failure_spans: Dict[str, List[Interval]] = {}
        horizon_end = self.dataset.horizon_end
        for failure in self.dataset.ground_truth_failures:
            failure_spans.setdefault(failure.link_id, []).append(
                Interval(failure.start, min(failure.end, horizon_end))
            )
        down = {
            link_id: IntervalSet(items)
            for link_id, items in failure_spans.items()
        }
        return unreachable_intervals(
            self.dataset.network, down, 0.0, horizon_end
        )

    # ------------------------------------------------------------- polling
    def poll_times(self) -> List[float]:
        """The sweep instants, offset half a period from the horizon start."""
        period = self.parameters.period
        times = []
        t = self.dataset.analysis_start + period / 2.0
        while t < self.dataset.horizon_end:
            times.append(t)
            t += period
        return times

    def samples(self) -> Iterator[InterfaceSample]:
        """Generate the poll archive in time order."""
        network = self.dataset.network
        interfaces: List[Tuple[str, str, str, str]] = []  # router, port, link_id, canonical
        for link_id in sorted(network.links):
            link = network.links[link_id]
            for router in (link.router_a, link.router_b):
                interfaces.append(
                    (router, link.port_on(router), link_id, link.canonical_name)
                )

        loss = self.parameters.poll_loss_probability
        for time in self.poll_times():
            for router, port, link_id, canonical in interfaces:
                unreachable = self._unreachable.get(router)
                if unreachable is not None and unreachable.contains(time):
                    continue  # agent unpollable: no row at all
                if loss and self._rng.random() < loss:
                    continue  # timeout
                down = self._down_by_link.get(link_id)
                oper_up = not (down is not None and down.contains(time))
                yield InterfaceSample(
                    time=time,
                    router=router,
                    interface=port,
                    link=canonical,
                    oper_up=oper_up,
                )

    def collect(self) -> List[InterfaceSample]:
        """Materialise the full archive."""
        return list(self.samples())
