"""Failure reconstruction from an SNMP poll archive.

A poll archive gives the link's state at sparse instants, from two agents
(one per end).  Reconstruction:

1. per link, order samples by sweep time; a link is *down at a sweep*
   when any answering end reports oper-down (either end's fault holds the
   link down);
2. a **failure** starts at the first down sweep after an up sweep and
   ends at the first up sweep after a down sweep.  True edges lie
   somewhere inside the adjacent sweep gap, so each reconstructed edge is
   placed at the midpoint of that gap — the standard unbiased choice,
   leaving each boundary with ±period/2 error.  A failure shorter than
   the gap between sweeps can fall entirely between them and is invisible;
3. sweeps where *no* agent answered (unreachable router, lost polls) are
   holes in the series: the surrounding sweeps define the edges — the
   same previous-state persistence §4.3 recommends for syslog.

The output is the common :class:`~repro.core.events.FailureEvent`
vocabulary, so the matching and statistics machinery applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.events import FailureEvent
from repro.snmp.poller import InterfaceSample

SOURCE_SNMP = "snmp"


@dataclass
class SnmpReconstruction:
    """Everything the SNMP channel yields."""

    failures: List[FailureEvent] = field(default_factory=list)
    #: Links with left- or right-censored downtime (down at the first or
    #: last answered sweep) — downtime but not complete failures.
    censored_links: List[str] = field(default_factory=list)
    #: (link, sweep) pairs with no answering agent, given ``poll_times``.
    blind_sweeps: int = 0


def _link_sweep_states(
    samples: Sequence[InterfaceSample],
) -> Dict[str, List[Tuple[float, bool]]]:
    """Per link: (sweep time, link-up?) from the answering agents."""
    by_link_time: Dict[str, Dict[float, List[bool]]] = {}
    for sample in samples:
        by_link_time.setdefault(sample.link, {}).setdefault(
            sample.time, []
        ).append(sample.oper_up)
    return {
        link: [(time, all(by_time[time])) for time in sorted(by_time)]
        for link, by_time in by_link_time.items()
    }


def reconstruct_from_samples(
    samples: Sequence[InterfaceSample],
    poll_times: Optional[Sequence[float]] = None,
) -> SnmpReconstruction:
    """Reconstruct failures from a poll archive (see module docstring).

    ``poll_times`` (the management station's sweep schedule) is only needed
    for the blind-sweep accounting; reconstruction itself works from the
    answered samples alone.
    """
    result = SnmpReconstruction()
    states = _link_sweep_states(samples)

    if poll_times is not None:
        expected = len(poll_times)
        for series in states.values():
            result.blind_sweeps += max(0, expected - len(series))

    for link, series in sorted(states.items()):
        down_since: Optional[float] = None
        previous_time: Optional[float] = None
        left_censored = False
        for time, up in series:
            if not up and down_since is None and not left_censored:
                if previous_time is None:
                    left_censored = True  # down at first sweep
                else:
                    down_since = (previous_time + time) / 2.0
            elif up and down_since is not None:
                end = (previous_time + time) / 2.0
                if end > down_since:
                    result.failures.append(
                        FailureEvent(
                            link=link,
                            start=down_since,
                            end=end,
                            source=SOURCE_SNMP,
                        )
                    )
                down_since = None
            elif up and left_censored:
                left_censored = False
            previous_time = time
        if down_since is not None or left_censored:
            result.censored_links.append(link)
    result.failures.sort(key=lambda f: (f.start, f.link))
    return result


class _LinkFsm:
    """Streaming per-link state machine (same semantics as the batch path)."""

    __slots__ = ("down_since", "previous_time", "left_censored", "sweeps")

    def __init__(self) -> None:
        self.down_since: Optional[float] = None
        self.previous_time: Optional[float] = None
        self.left_censored = False
        self.sweeps = 0

    def feed(self, link: str, time: float, up: bool, out: List[FailureEvent]) -> None:
        self.sweeps += 1
        if not up and self.down_since is None and not self.left_censored:
            if self.previous_time is None:
                self.left_censored = True
            else:
                self.down_since = (self.previous_time + time) / 2.0
        elif up and self.down_since is not None:
            end = (self.previous_time + time) / 2.0
            if end > self.down_since:
                out.append(
                    FailureEvent(
                        link=link, start=self.down_since, end=end, source=SOURCE_SNMP
                    )
                )
            self.down_since = None
        elif up and self.left_censored:
            self.left_censored = False
        self.previous_time = time


def reconstruct_stream(
    samples: Iterable[InterfaceSample],
    expected_sweeps: Optional[int] = None,
) -> SnmpReconstruction:
    """Streaming equivalent of :func:`reconstruct_from_samples`.

    Consumes the poll archive one sample at a time without materialising
    it — required at 13-month scale, where the archive holds tens of
    millions of rows.  Relies on the poller's ordering guarantee: samples
    arrive sweep by sweep, so a link's two agent rows for one sweep are
    adjacent in time.
    """
    result = SnmpReconstruction()
    fsms: Dict[str, _LinkFsm] = {}
    pending: Dict[str, Tuple[float, bool]] = {}
    current_time: Optional[float] = None
    failures: List[FailureEvent] = []

    def flush() -> None:
        for link, (time, up) in pending.items():
            fsms.setdefault(link, _LinkFsm()).feed(link, time, up, failures)
        pending.clear()

    for sample in samples:
        if current_time is not None and sample.time != current_time:
            flush()
        current_time = sample.time
        held = pending.get(sample.link)
        if held is None:
            pending[sample.link] = (sample.time, sample.oper_up)
        else:
            pending[sample.link] = (held[0], held[1] and sample.oper_up)
    flush()

    failures.sort(key=lambda f: (f.start, f.link))
    result.failures = failures
    for link, fsm in sorted(fsms.items()):
        if fsm.down_since is not None or fsm.left_censored:
            result.censored_links.append(link)
        if expected_sweeps is not None:
            result.blind_sweeps += max(0, expected_sweeps - fsm.sweeps)
    return result
