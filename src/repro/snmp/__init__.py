"""SNMP polling — the third observation channel of the paper's intro.

The paper's opening list of tools "pressed into service" for failure
analysis is: syslog, routing protocol monitoring, SNMP, human trouble
tickets, and active probes (§1).  The study compares the first two; this
package adds the third so the comparison can be extended: a poller that
walks every router's interface table (ifOperStatus) on a fixed period,
with the channel's characteristic failure modes —

* **quantisation**: state is only known at poll instants, so a failure's
  start and end are each uncertain by up to one period, and any failure
  shorter than the polling period that falls between polls is invisible;
* **poll loss**: an agent may fail to answer (UDP, busy control plane);
* **in-band blindness**: like syslog, SNMP shares fate with the network —
  an unreachable router cannot be polled, which blanks exactly the rows
  the operator most wants.

:class:`~repro.snmp.poller.SnmpPoller` produces a sample archive;
:func:`~repro.snmp.reconstruct.reconstruct_from_samples` turns it into the
same :class:`~repro.core.events.FailureEvent` vocabulary the other
channels use.
"""

from repro.snmp.poller import InterfaceSample, PollParameters, SnmpPoller
from repro.snmp.reconstruct import (
    SnmpReconstruction,
    reconstruct_from_samples,
    reconstruct_stream,
)

__all__ = [
    "InterfaceSample",
    "PollParameters",
    "SnmpPoller",
    "SnmpReconstruction",
    "reconstruct_from_samples",
    "reconstruct_stream",
]
