"""Seeded generator for a CENIC-like topology.

CENIC's published shape (paper Table 1 and §3.1): 60 Core routers in a
redundant, ring-rich backbone; 175 CPE routers; 84 Core and 215 CPE IS-IS
links; 26 device pairs with multi-link adjacencies; roughly 120 customer
institutions, most of them multi-homed through the ring structure.

The generator reproduces that shape deterministically from a seed:

* a **main ring** of hub routers, one per POP,
* a **regional ring** hanging off each hub (hub + regional aggregation
  routers), giving the backbone its rings — the property that makes customer
  isolation a multi-link event (§4.4),
* a few **cross links** between non-adjacent hubs for extra redundancy,
* **parallel links** added to selected core pairs and CPE attachments to
  produce exactly the configured number of multi-link adjacencies,
* CPE routers single-, dual-, or parallel-homed into the regional rings,
* customer sites attached to one or more CPE routers.

With default parameters the router/link counts match Table 1 exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.topology.builder import NetworkBuilder
from repro.topology.model import Network, RouterClass
from repro.util.rand import child_rng

#: POP codes loosely modelled on CENIC's California footprint.
_POP_CODES = [
    "lax", "sac", "sdg", "fre", "oak", "riv", "svl", "slo",
    "bak", "red", "eur", "mry", "ccv", "frg", "tus", "son",
]


@dataclass(frozen=True)
class CenicParameters:
    """Knobs for the CENIC-like generator; defaults match paper Table 1."""

    seed: int = 2013
    hub_count: int = 10
    region_size: int = 5  # regional core routers per hub, excluding the hub
    cross_link_count: int = 6
    core_parallel_pairs: int = 8
    cpe_count: int = 175
    cpe_dual_homed: int = 22
    cpe_parallel_homed: int = 18
    site_count: int = 120

    def __post_init__(self) -> None:
        if self.hub_count < 3:
            raise ValueError("a ring needs at least three hubs")
        if self.hub_count > len(_POP_CODES):
            raise ValueError(f"at most {len(_POP_CODES)} hubs supported")
        if self.cpe_dual_homed + self.cpe_parallel_homed > self.cpe_count:
            raise ValueError("multi-homed CPE counts exceed CPE count")
        if self.site_count > self.cpe_count:
            raise ValueError("more sites than CPE routers to attach them")

    @property
    def core_count(self) -> int:
        return self.hub_count * (1 + self.region_size)

    @property
    def core_link_count(self) -> int:
        # main ring + per-region ring (region_size + 1 links each when the
        # region is non-empty) + cross links + parallel duplicates
        region_links = self.hub_count * (self.region_size + 1 if self.region_size else 0)
        return (
            self.hub_count
            + region_links
            + self.cross_link_count
            + self.core_parallel_pairs
        )

    @property
    def cpe_link_count(self) -> int:
        return self.cpe_count + self.cpe_dual_homed + self.cpe_parallel_homed


def build_cenic_like_network(params: CenicParameters = CenicParameters()) -> Network:
    """Generate the CENIC-like network for ``params``.

    The result is connected, validated, and fully addressed (system IDs and
    /31 link subnets), ready for config rendering and simulation.
    """
    rng = child_rng(params.seed, "topology")
    builder = NetworkBuilder()

    # --- backbone hubs on the main ring ---------------------------------
    hubs: List[str] = []
    for i in range(params.hub_count):
        name = f"{_POP_CODES[i]}-core-01"
        builder.add_router(name, RouterClass.CORE)
        hubs.append(name)
    for i, hub in enumerate(hubs):
        builder.add_link(hub, hubs[(i + 1) % len(hubs)], metric=10)

    # --- regional rings ---------------------------------------------------
    regional_by_hub: List[List[str]] = []
    for i, hub in enumerate(hubs):
        members: List[str] = []
        for j in range(params.region_size):
            name = f"{_POP_CODES[i]}-agg-{j + 1:02d}"
            builder.add_router(name, RouterClass.CORE)
            members.append(name)
        regional_by_hub.append(members)
        if not members:
            continue
        chain = [hub] + members
        for a, b in zip(chain, chain[1:]):
            builder.add_link(a, b, metric=20)
        builder.add_link(members[-1], hub, metric=20)  # close the ring

    # --- cross links between non-adjacent hubs ---------------------------
    candidates = [
        (hubs[i], hubs[j])
        for i in range(len(hubs))
        for j in range(i + 2, len(hubs))
        if not (i == 0 and j == len(hubs) - 1)  # ring-adjacent wraparound
    ]
    rng.shuffle(candidates)
    for a, b in candidates[: params.cross_link_count]:
        builder.add_link(a, b, metric=100)

    # --- parallel core links (multi-link adjacencies) --------------------
    network_so_far = builder.build(validate=False)
    ring_pairs = sorted(
        {tuple(sorted(link.device_pair)) for link in network_so_far.links.values()}
    )
    rng.shuffle(ring_pairs)
    for a, b in ring_pairs[: params.core_parallel_pairs]:
        builder.add_link(a, b, metric=10)

    # --- CPE routers -------------------------------------------------------
    all_core = hubs + [name for members in regional_by_hub for name in members]
    cpe_names: List[str] = []
    for i in range(params.cpe_count):
        name = f"cust{i + 1:03d}-cpe-01"
        builder.add_router(name, RouterClass.CPE)
        cpe_names.append(name)

    homing = (
        ["dual"] * params.cpe_dual_homed
        + ["parallel"] * params.cpe_parallel_homed
        + ["single"] * (params.cpe_count - params.cpe_dual_homed - params.cpe_parallel_homed)
    )
    rng.shuffle(homing)
    for name, mode in zip(cpe_names, homing):
        primary = rng.choice(all_core)
        builder.add_link(name, primary, metric=15)
        if mode == "dual":
            secondary = rng.choice([c for c in all_core if c != primary])
            builder.add_link(name, secondary, metric=15)
        elif mode == "parallel":
            builder.add_link(name, primary, metric=15)

    # --- customer sites ----------------------------------------------------
    # Every CPE serves exactly one site; site sizes follow a 1-3 CPE mix.
    assignments: List[List[str]] = [[] for _ in range(params.site_count)]
    shuffled_cpe = list(cpe_names)
    rng.shuffle(shuffled_cpe)
    for index, cpe in enumerate(shuffled_cpe[: params.site_count]):
        assignments[index].append(cpe)  # every site gets at least one CPE
    for cpe in shuffled_cpe[params.site_count :]:
        assignments[rng.randrange(params.site_count)].append(cpe)
    for index, attached in enumerate(assignments):
        builder.add_site(f"site-{index + 1:03d}", sorted(attached))

    return builder.build(validate=True)
