"""Time-varying reachability over a network with failing links.

Given per-link down interval sets, compute for every router the intervals
during which it cannot reach a chosen root.  This single sweep serves two
consumers:

* **customer isolation** (§4.4): a site is isolated exactly while *all* of
  its attachment routers are unreachable — the per-site set is the
  intersection of per-router unreachable sets;
* **in-band syslog loss**: syslog datagrams travel over the network they
  describe, so a router that is cut off from the collector cannot deliver
  the very messages reporting the cut.

The sweep walks the union of all link state-change instants, maintaining a
down-link counter per link and re-running one BFS from the root per change
point (the graph has ~300 edges, so this stays cheap even for tens of
thousands of changes).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.intervals import Interval, IntervalSet
from repro.topology.model import Network


def unreachable_intervals(
    network: Network,
    down_intervals_by_link_id: Dict[str, IntervalSet],
    horizon_start: float,
    horizon_end: float,
    root: Optional[str] = None,
) -> Dict[str, IntervalSet]:
    """Per-router intervals of unreachability from ``root``.

    ``down_intervals_by_link_id`` is keyed by the network's link IDs; links
    absent from the mapping are treated as always up.  ``root`` defaults to
    the alphabetically first core router.  The root itself is never
    unreachable.
    """
    if horizon_end <= horizon_start:
        raise ValueError("empty horizon")
    if root is None:
        root = sorted(r.name for r in network.core_routers())[0]
    if root not in network.routers:
        raise ValueError(f"unknown root router {root}")

    link_ids = sorted(network.links)
    link_index = {link_id: i for i, link_id in enumerate(link_ids)}
    adjacency: Dict[str, List[Tuple[int, str]]] = {
        name: [] for name in network.routers
    }
    for link_id in link_ids:
        link = network.links[link_id]
        i = link_index[link_id]
        adjacency[link.router_a].append((i, link.router_b))
        adjacency[link.router_b].append((i, link.router_a))

    events: List[Tuple[float, int, int]] = []
    for link_id, intervals in down_intervals_by_link_id.items():
        if link_id not in link_index:
            raise KeyError(f"unknown link id {link_id}")
        i = link_index[link_id]
        for interval in intervals.clip(horizon_start, horizon_end):
            events.append((interval.start, i, +1))
            if interval.end < horizon_end:
                events.append((interval.end, i, -1))
    events.sort()

    down_count = [0] * len(link_ids)
    routers = sorted(network.routers)
    unreachable_since: Dict[str, Optional[float]] = {name: None for name in routers}
    spans: Dict[str, List[Interval]] = {name: [] for name in routers}

    def reachable_from_root() -> Set[str]:
        seen = {root}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for i, neighbor in adjacency[node]:
                if down_count[i] == 0 and neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return seen

    def update(now: float) -> None:
        reachable = reachable_from_root()
        for name in routers:
            since = unreachable_since[name]
            if name not in reachable and since is None:
                unreachable_since[name] = now
            elif name in reachable and since is not None:
                if now > since:
                    spans[name].append(Interval(since, now))
                unreachable_since[name] = None

    cursor = 0
    while cursor < len(events):
        time = events[cursor][0]
        while cursor < len(events) and events[cursor][0] == time:
            _, i, delta = events[cursor]
            down_count[i] += delta
            cursor += 1
        update(time)

    for name, since in unreachable_since.items():
        if since is not None and horizon_end > since:
            spans[name].append(Interval(since, horizon_end))

    return {name: IntervalSet(items) for name, items in spans.items()}
