"""Mine router configurations for the network's link inventory.

This is the reproduction of the paper's config-mining step (§3.4): given an
archive of configuration files, recover

* the hostname ↔ OSI system-ID mapping (from ``hostname`` and ``net``),
* every interface's /31 address and description, and
* the link inventory, by pairing the two interfaces that share each /31.

The mined inventory — not the generator's ground-truth model — is what the
analysis pipeline uses for naming, so a mining defect would surface as
unmatchable links exactly as it would have in the original study.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.topology.addressing import parse_ipv4, system_id_from_net

_HOSTNAME_RE = re.compile(r"^hostname\s+(\S+)\s*$")
_NET_RE = re.compile(r"^\s*net\s+(\S+)\s*$")
_INTERFACE_RE = re.compile(r"^interface\s+(\S+)\s*$")
_ADDRESS_RE = re.compile(r"^\s*ip address\s+(\S+)\s+(\S+)\s*$")
_DESCRIPTION_RE = re.compile(r"^\s*description\s+Link to\s+(\S+)\s+(\S+)\s*$")


@dataclass(frozen=True)
class MinedInterface:
    """One interface as recovered from a configuration file."""

    router: str
    name: str
    address: int
    described_far_router: Optional[str] = None
    described_far_port: Optional[str] = None


@dataclass(frozen=True)
class MinedLink:
    """A link recovered by pairing interfaces on a shared /31 subnet."""

    router_a: str
    port_a: str
    router_b: str
    port_b: str
    subnet: int

    @property
    def canonical_name(self) -> str:
        return f"({self.router_a}:{self.port_a}, {self.router_b}:{self.port_b})"


@dataclass
class MinedInventory:
    """Everything the analysis needs from the configuration archive."""

    hostname_to_system_id: Dict[str, str] = field(default_factory=dict)
    system_id_to_hostname: Dict[str, str] = field(default_factory=dict)
    interfaces: List[MinedInterface] = field(default_factory=list)
    links: List[MinedLink] = field(default_factory=list)
    #: Interfaces whose /31 peer never appeared in the archive.
    unpaired_interfaces: List[MinedInterface] = field(default_factory=list)

    def link_by_endpoints(self) -> Dict[Tuple[str, str, str, str], MinedLink]:
        """Index links by their canonical (routerA, portA, routerB, portB)."""
        return {
            (link.router_a, link.port_a, link.router_b, link.port_b): link
            for link in self.links
        }


class ConfigArchive:
    """A collection of configuration file texts, keyed by an archive name.

    Mirrors the paper's archive of config snapshots; only one snapshot per
    router is required for mining, but multiple snapshots of the same router
    are tolerated (later snapshots win), matching how an archive accumulated
    over years behaves.
    """

    def __init__(self) -> None:
        self._configs: Dict[str, str] = {}

    def add(self, name: str, text: str) -> None:
        self._configs[name] = text

    def __len__(self) -> int:
        return len(self._configs)

    def texts(self) -> List[str]:
        return [self._configs[name] for name in sorted(self._configs)]


def _parse_one(text: str) -> Tuple[Optional[str], Optional[str], List[MinedInterface]]:
    """Extract (hostname, system_id, interfaces) from one config text."""
    hostname: Optional[str] = None
    system_id: Optional[str] = None
    interfaces: List[MinedInterface] = []

    current_port: Optional[str] = None
    current_far: Tuple[Optional[str], Optional[str]] = (None, None)
    current_address: Optional[int] = None

    def flush() -> None:
        nonlocal current_port, current_far, current_address
        if current_port is not None and current_address is not None and hostname:
            interfaces.append(
                MinedInterface(
                    router=hostname,
                    name=current_port,
                    address=current_address,
                    described_far_router=current_far[0],
                    described_far_port=current_far[1],
                )
            )
        current_port = None
        current_far = (None, None)
        current_address = None

    for line in text.splitlines():
        match = _HOSTNAME_RE.match(line)
        if match:
            hostname = match.group(1)
            continue
        match = _INTERFACE_RE.match(line)
        if match:
            flush()
            current_port = match.group(1)
            continue
        if line.strip() == "!":
            flush()
            continue
        match = _DESCRIPTION_RE.match(line)
        if match and current_port is not None:
            current_far = (match.group(1), match.group(2))
            continue
        match = _ADDRESS_RE.match(line)
        if match and current_port is not None:
            current_address = parse_ipv4(match.group(1))
            continue
        match = _NET_RE.match(line)
        if match:
            system_id = system_id_from_net(match.group(1))
    flush()
    return hostname, system_id, interfaces


def mine_configs(archive: ConfigArchive) -> MinedInventory:
    """Mine an archive into a :class:`MinedInventory`.

    Links are formed by pairing the two interfaces whose addresses fall in
    the same /31; a subnet with only one configured interface is recorded as
    unpaired (visible in the inventory so analyses can report coverage).
    """
    inventory = MinedInventory()
    interfaces_by_router: Dict[Tuple[str, str], MinedInterface] = {}

    for text in archive.texts():
        hostname, system_id, interfaces = _parse_one(text)
        if hostname is None:
            continue
        if system_id is not None:
            inventory.hostname_to_system_id[hostname] = system_id
            inventory.system_id_to_hostname[system_id] = hostname
        for interface in interfaces:
            interfaces_by_router[(interface.router, interface.name)] = interface

    inventory.interfaces = sorted(
        interfaces_by_router.values(), key=lambda i: (i.router, i.name)
    )

    by_subnet: Dict[int, List[MinedInterface]] = {}
    for interface in inventory.interfaces:
        subnet = interface.address & ~1  # /31 network address
        by_subnet.setdefault(subnet, []).append(interface)

    for subnet, members in sorted(by_subnet.items()):
        if len(members) == 2:
            first, second = sorted(members, key=lambda i: (i.router, i.name))
            inventory.links.append(
                MinedLink(
                    router_a=first.router,
                    port_a=first.name,
                    router_b=second.router,
                    port_b=second.name,
                    subnet=subnet,
                )
            )
        else:
            inventory.unpaired_interfaces.extend(members)
    return inventory
