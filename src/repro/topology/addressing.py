"""OSI and IPv4 addressing for the simulated network.

IS-IS identifies routers by OSI system IDs (six octets, conventionally
written ``xxxx.xxxx.xxxx``); syslog identifies them by hostname.  Bridging
the two naming schemes is a central mechanic of the paper, so addresses are
first-class here.

Links are numbered from unique /31 subnets (RFC 3021 point-to-point
numbering), which is what makes the *Extended IP Reachability* TLV able to
identify individual physical links even between routers with multi-link
adjacencies (§3.4).
"""

from __future__ import annotations

import re

_SYSTEM_ID_RE = re.compile(r"^[0-9a-f]{4}\.[0-9a-f]{4}\.[0-9a-f]{4}$")
_NET_RE = re.compile(r"^49\.([0-9a-f]{4})\.([0-9a-f]{4}\.[0-9a-f]{4}\.[0-9a-f]{4})\.00$")

#: CENIC's public allocation; our simulated backbone numbers links out of it.
DEFAULT_BASE_PREFIX = "137.164.0.0"


def system_id_for_index(index: int) -> str:
    """Deterministic six-octet system ID for the ``index``-th router.

    >>> system_id_for_index(1)
    '0000.0000.0001'
    >>> system_id_for_index(0x12345)
    '0000.0001.2345'
    """
    if not 0 <= index < 2**48:
        raise ValueError("system-id index out of range")
    raw = f"{index:012x}"
    return f"{raw[0:4]}.{raw[4:8]}.{raw[8:12]}"


def parse_system_id(text: str) -> int:
    """Inverse of :func:`system_id_for_index`."""
    if not _SYSTEM_ID_RE.match(text):
        raise ValueError(f"malformed system id {text!r}")
    return int(text.replace(".", ""), 16)


def system_id_to_bytes(text: str) -> bytes:
    """Pack a dotted system ID into its six-octet wire form."""
    return parse_system_id(text).to_bytes(6, "big")


def system_id_from_bytes(raw: bytes) -> str:
    """Unpack a six-octet wire system ID into dotted form."""
    if len(raw) != 6:
        raise ValueError("system id must be exactly six octets")
    return system_id_for_index(int.from_bytes(raw, "big"))


def net_for_system_id(system_id: str, area: str = "0001") -> str:
    """Build an ISO NET (network entity title) for a router.

    The conventional private AFI is 49; the NSEL suffix ``.00`` denotes the
    router itself.

    >>> net_for_system_id('0000.0000.0001')
    '49.0001.0000.0000.0001.00'
    """
    if not _SYSTEM_ID_RE.match(system_id):
        raise ValueError(f"malformed system id {system_id!r}")
    if not re.match(r"^[0-9a-f]{4}$", area):
        raise ValueError(f"malformed area {area!r}")
    return f"49.{area}.{system_id}.00"


def system_id_from_net(net: str) -> str:
    """Extract the system ID from a NET string.

    >>> system_id_from_net('49.0001.0000.0000.0001.00')
    '0000.0000.0001'
    """
    match = _NET_RE.match(net)
    if not match:
        raise ValueError(f"malformed NET {net!r}")
    return match.group(2)


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 into an integer.

    >>> parse_ipv4('137.164.0.1')
    2309095425
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Render an integer IPv4 address as dotted quad.

    >>> format_ipv4(2309095425)
    '137.164.0.1'
    """
    if not 0 <= value < 2**32:
        raise ValueError("IPv4 address out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix_mask(prefix_length: int) -> str:
    """Dotted-quad netmask for a prefix length.

    >>> prefix_mask(31)
    '255.255.255.254'
    """
    if not 0 <= prefix_length <= 32:
        raise ValueError("prefix length out of range")
    if prefix_length == 0:
        return "0.0.0.0"
    mask = (0xFFFFFFFF << (32 - prefix_length)) & 0xFFFFFFFF
    return format_ipv4(mask)


class Ipv4SubnetAllocator:
    """Hands out consecutive /31 subnets from a base prefix.

    Every point-to-point link in the simulated network receives its own /31,
    mirroring CENIC practice; the low address goes to the lexicographically
    smaller endpoint so numbering is deterministic.
    """

    def __init__(self, base: str = DEFAULT_BASE_PREFIX, prefix_length: int = 31) -> None:
        if prefix_length != 31:
            raise ValueError("link numbering uses /31 subnets")
        self._next = parse_ipv4(base)
        if self._next % 2:
            raise ValueError("base address must be even for /31 numbering")
        self.prefix_length = prefix_length

    def allocate(self) -> int:
        """Return the network address (an even integer) of a fresh /31."""
        subnet = self._next
        self._next += 2
        return subnet
