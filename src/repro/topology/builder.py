"""Programmatic network construction.

:class:`NetworkBuilder` takes care of the bookkeeping that the raw model
objects demand — system-ID assignment, /31 allocation, canonical endpoint
ordering, port naming, and link classification — so callers describe only
the topology's shape.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.topology.addressing import Ipv4SubnetAllocator, system_id_for_index
from repro.topology.model import (
    CustomerSite,
    Link,
    LinkClass,
    Network,
    Router,
    RouterClass,
)

#: Port naming stems by router class; core routers carry 10 GbE line cards.
_CORE_PORT_STEM = "TenGigE0/0/"
_CPE_PORT_STEM = "GigabitEthernet0/"


class NetworkBuilder:
    """Incrementally assembles a :class:`Network` with consistent addressing."""

    def __init__(self, base_prefix: str = "137.164.0.0") -> None:
        self._network = Network()
        self._allocator = Ipv4SubnetAllocator(base_prefix)
        self._next_system_index = 1
        self._next_link_index = 1
        self._port_counters: Dict[str, int] = {}

    def add_router(self, name: str, router_class: RouterClass) -> Router:
        """Create a router with the next free system ID."""
        router = Router(
            name=name,
            router_class=router_class,
            system_id=system_id_for_index(self._next_system_index),
        )
        self._next_system_index += 1
        self._network.add_router(router)
        self._port_counters[name] = 0
        return router

    def _next_port(self, router_name: str) -> str:
        router = self._network.routers[router_name]
        index = self._port_counters[router_name]
        self._port_counters[router_name] = index + 1
        stem = _CORE_PORT_STEM if router.is_core else _CPE_PORT_STEM
        return f"{stem}{index}"

    def add_link(
        self,
        router_a: str,
        router_b: str,
        metric: int = 10,
        link_id: Optional[str] = None,
    ) -> Link:
        """Create a point-to-point link, allocating ports and a /31.

        Endpoints are normalised into canonical order; each call creates a
        distinct physical link, so calling twice for the same pair produces a
        multi-link adjacency.
        """
        if router_a not in self._network.routers:
            raise ValueError(f"unknown router {router_a}")
        if router_b not in self._network.routers:
            raise ValueError(f"unknown router {router_b}")
        port_a = self._next_port(router_a)
        port_b = self._next_port(router_b)
        if (router_a, port_a) > (router_b, port_b):
            router_a, router_b = router_b, router_a
            port_a, port_b = port_b, port_a
        classes = {
            self._network.routers[router_a].router_class,
            self._network.routers[router_b].router_class,
        }
        link_class = LinkClass.CORE if classes == {RouterClass.CORE} else LinkClass.CPE
        if link_id is None:
            link_id = f"link-{self._next_link_index:04d}"
        self._next_link_index += 1
        link = Link(
            link_id=link_id,
            router_a=router_a,
            port_a=port_a,
            router_b=router_b,
            port_b=port_b,
            subnet=self._allocator.allocate(),
            metric=metric,
            link_class=link_class,
        )
        self._network.add_link(link)
        return link

    def add_site(self, name: str, attachment_routers: list) -> CustomerSite:
        """Attach a customer site to one or more CPE routers."""
        site = CustomerSite(name=name, attachment_routers=tuple(attachment_routers))
        self._network.add_site(site)
        return site

    def build(self, validate: bool = True) -> Network:
        """Finalise and (by default) validate the network."""
        if validate:
            self._network.validate()
        return self._network
