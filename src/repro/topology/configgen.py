"""Render IOS-style router configurations.

The paper's methodology mines an archive of 11,623 router configuration
files to learn the network's link inventory — the bridge between syslog's
hostnames and IS-IS's OSI IDs (§3.4).  This module produces realistic
Cisco-IOS-style configuration text for every router in a
:class:`~repro.topology.model.Network` so that the mining path in
:mod:`repro.topology.configmine` is exercised against real text rather than
handed the inventory for free.
"""

from __future__ import annotations

from typing import Dict

from repro.topology.addressing import net_for_system_id, prefix_mask
from repro.topology.model import Network


def render_config(network: Network, router_name: str) -> str:
    """Render one router's configuration.

    The rendered text includes everything the miner needs: the hostname, the
    IS-IS NET (carrying the system ID), and per-interface descriptions and
    /31 addresses identifying the far end of each link.
    """
    router = network.routers[router_name]
    lines = [
        "!",
        f"! Last configuration change at simulation start",
        "!",
        "version 12.2",
        "service timestamps log datetime msec",
        f"hostname {router.name}",
        "!",
        "logging host 137.164.255.1",
        "logging trap informational",
        "!",
    ]
    for interface in network.interfaces_of(router_name):
        link = network.links[interface.link_id]
        far_router = link.other_end(router_name)
        far_port = link.port_on(far_router)
        lines.extend(
            [
                f"interface {interface.name}",
                f" description Link to {far_router} {far_port}",
                f" ip address {interface.address_text} {prefix_mask(31)}",
                " ip router isis cenic",
                f" isis metric {link.metric}",
                " no shutdown",
                "!",
            ]
        )
    lines.extend(
        [
            "router isis cenic",
            f" net {net_for_system_id(router.system_id)}",
            " is-type level-2-only",
            " metric-style wide",
            " log-adjacency-changes",
            "!",
            "end",
        ]
    )
    return "\n".join(lines) + "\n"


def render_all_configs(network: Network) -> Dict[str, str]:
    """Render configurations for every router, keyed by hostname."""
    return {name: render_config(network, name) for name in sorted(network.routers)}
