"""Object model for the simulated network.

The model mirrors what the paper's analysis needs to know about CENIC:

* routers split into **Core** (backbone) and **CPE** (customer premises),
* point-to-point **links**, each with two named ports, a /31 subnet, and an
  IS-IS metric; links between the same device pair may be *parallel*
  (multi-link adjacencies, which IS reachability cannot tell apart — §3.4),
* **customer sites** attached to one or more CPE routers, used by the
  isolation analysis of §4.4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import networkx as nx

from repro.topology.addressing import format_ipv4


class RouterClass(enum.Enum):
    """Backbone (Core) versus customer-premises (CPE) routers."""

    CORE = "core"
    CPE = "cpe"


class LinkClass(enum.Enum):
    """Link classification used throughout the paper's statistics.

    A link is CORE when both endpoints are Core routers; any link touching a
    CPE router is a CPE link.
    """

    CORE = "core"
    CPE = "cpe"


@dataclass(frozen=True)
class Interface:
    """A router port participating in exactly one point-to-point link."""

    router: str
    name: str
    address: int  # integer IPv4 host address on the link's /31
    link_id: str

    @property
    def address_text(self) -> str:
        return format_ipv4(self.address)


@dataclass(frozen=True)
class Link:
    """A point-to-point link between two router ports.

    Endpoints are stored in canonical order (lexicographic by
    ``(router, port)``) so that a link observed from either end maps to the
    same identity — the common naming convention of §3.4.
    """

    link_id: str
    router_a: str
    port_a: str
    router_b: str
    port_b: str
    subnet: int  # network address of the /31, an even integer
    metric: int = 10
    link_class: LinkClass = LinkClass.CORE

    def __post_init__(self) -> None:
        if (self.router_a, self.port_a) > (self.router_b, self.port_b):
            raise ValueError("link endpoints must be in canonical order")
        if self.router_a == self.router_b:
            raise ValueError("self-loop links are not allowed")
        if self.subnet % 2:
            raise ValueError("subnet must be the even /31 network address")

    @property
    def device_pair(self) -> FrozenSet[str]:
        """The unordered router pair — the granularity of IS reachability."""
        return frozenset((self.router_a, self.router_b))

    @property
    def endpoints(self) -> Tuple[Tuple[str, str], Tuple[str, str]]:
        return ((self.router_a, self.port_a), (self.router_b, self.port_b))

    def other_end(self, router: str) -> str:
        """The router at the far end from ``router``."""
        if router == self.router_a:
            return self.router_b
        if router == self.router_b:
            return self.router_a
        raise ValueError(f"{router} is not an endpoint of {self.link_id}")

    def port_on(self, router: str) -> str:
        """The local port name on ``router``."""
        if router == self.router_a:
            return self.port_a
        if router == self.router_b:
            return self.port_b
        raise ValueError(f"{router} is not an endpoint of {self.link_id}")

    def address_on(self, router: str) -> int:
        """The /31 host address assigned to ``router``'s end.

        The canonical-order lower endpoint takes the even (network) address.
        """
        if router == self.router_a:
            return self.subnet
        if router == self.router_b:
            return self.subnet + 1
        raise ValueError(f"{router} is not an endpoint of {self.link_id}")

    @property
    def canonical_name(self) -> str:
        """`(host1:port1, host2:port2)` — the paper's link naming convention."""
        return f"({self.router_a}:{self.port_a}, {self.router_b}:{self.port_b})"


@dataclass(frozen=True)
class Router:
    """A router with its class, hostname, and OSI system ID."""

    name: str
    router_class: RouterClass
    system_id: str

    @property
    def is_core(self) -> bool:
        return self.router_class is RouterClass.CORE


@dataclass(frozen=True)
class CustomerSite:
    """A customer institution attached to one or more CPE routers."""

    name: str
    attachment_routers: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attachment_routers:
            raise ValueError("a customer site needs at least one attachment")


@dataclass
class Network:
    """The complete simulated network: routers, links, and customer sites."""

    routers: Dict[str, Router] = field(default_factory=dict)
    links: Dict[str, Link] = field(default_factory=dict)
    sites: Dict[str, CustomerSite] = field(default_factory=dict)

    # ------------------------------------------------------------------ adds
    def add_router(self, router: Router) -> None:
        if router.name in self.routers:
            raise ValueError(f"duplicate router {router.name}")
        for existing in self.routers.values():
            if existing.system_id == router.system_id:
                raise ValueError(f"duplicate system id {router.system_id}")
        self.routers[router.name] = router

    def add_link(self, link: Link) -> None:
        if link.link_id in self.links:
            raise ValueError(f"duplicate link {link.link_id}")
        for endpoint in (link.router_a, link.router_b):
            if endpoint not in self.routers:
                raise ValueError(f"link references unknown router {endpoint}")
        for existing in self.links.values():
            if existing.subnet == link.subnet:
                raise ValueError(f"duplicate subnet on {link.link_id}")
        self.links[link.link_id] = link

    def add_site(self, site: CustomerSite) -> None:
        if site.name in self.sites:
            raise ValueError(f"duplicate site {site.name}")
        for attachment in site.attachment_routers:
            router = self.routers.get(attachment)
            if router is None:
                raise ValueError(f"site references unknown router {attachment}")
            if router.is_core:
                raise ValueError("customer sites attach to CPE routers")
        self.sites[site.name] = site

    # --------------------------------------------------------------- lookups
    def router_by_system_id(self, system_id: str) -> Router:
        for router in self.routers.values():
            if router.system_id == system_id:
                return router
        raise KeyError(system_id)

    def links_between(self, router_a: str, router_b: str) -> List[Link]:
        """All (possibly parallel) links joining a device pair."""
        pair = frozenset((router_a, router_b))
        return [link for link in self.links.values() if link.device_pair == pair]

    def links_of(self, router: str) -> List[Link]:
        """All links incident to ``router``."""
        return [
            link
            for link in self.links.values()
            if router in (link.router_a, link.router_b)
        ]

    def multi_link_pairs(self) -> List[FrozenSet[str]]:
        """Device pairs joined by more than one physical link.

        These are the adjacencies the paper *omits* from IS-reachability
        analysis because a single IS reachability entry covers all parallel
        links (§3.4).
        """
        counts: Dict[FrozenSet[str], int] = {}
        for link in self.links.values():
            counts[link.device_pair] = counts.get(link.device_pair, 0) + 1
        return [pair for pair, count in counts.items() if count > 1]

    def single_link_ids(self) -> List[str]:
        """IDs of links that are their device pair's only link."""
        multi = set(self.multi_link_pairs())
        return [
            link_id
            for link_id, link in self.links.items()
            if link.device_pair not in multi
        ]

    def link_class_of(self, link_id: str) -> LinkClass:
        return self.links[link_id].link_class

    def core_links(self) -> List[Link]:
        return [l for l in self.links.values() if l.link_class is LinkClass.CORE]

    def cpe_links(self) -> List[Link]:
        return [l for l in self.links.values() if l.link_class is LinkClass.CPE]

    def core_routers(self) -> List[Router]:
        return [r for r in self.routers.values() if r.is_core]

    def cpe_routers(self) -> List[Router]:
        return [r for r in self.routers.values() if not r.is_core]

    # ----------------------------------------------------------------- graph
    def graph(self) -> "nx.MultiGraph":
        """The network as a multigraph keyed by link ID.

        A multigraph (rather than a simple graph) is required because of
        multi-link adjacencies: removing one of two parallel links must not
        disconnect the pair.
        """
        g = nx.MultiGraph()
        for router in self.routers.values():
            g.add_node(router.name, router_class=router.router_class.value)
        for link in self.links.values():
            g.add_edge(link.router_a, link.router_b, key=link.link_id)
        return g

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        for link in self.links.values():
            classes = {
                self.routers[link.router_a].router_class,
                self.routers[link.router_b].router_class,
            }
            expected = (
                LinkClass.CORE if classes == {RouterClass.CORE} else LinkClass.CPE
            )
            if link.link_class is not expected:
                raise ValueError(
                    f"{link.link_id} marked {link.link_class.value} but endpoints "
                    f"imply {expected.value}"
                )
        g = self.graph()
        if self.routers and not nx.is_connected(g):
            raise ValueError("network graph is not connected")

    def interfaces_of(self, router: str) -> List[Interface]:
        """The interface objects configured on ``router``, in port order."""
        interfaces = [
            Interface(
                router=router,
                name=link.port_on(router),
                address=link.address_on(router),
                link_id=link.link_id,
            )
            for link in self.links_of(router)
        ]
        return sorted(interfaces, key=lambda itf: itf.name)
