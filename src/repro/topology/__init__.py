"""Network topology model and CENIC-like topology generation.

The paper's analysis is anchored in the CENIC network: 60 Core routers in a
ring-rich backbone, 175 CPE routers on customer premises, 84 Core and 215 CPE
IS-IS links, point-to-point links numbered out of unique /31 subnets, and 26
device pairs joined by multi-link adjacencies.  This package provides:

* an object model (:class:`Router`, :class:`Link`, :class:`Network`, ...),
* deterministic OSI (NET/system-id) and IPv4 /31 addressing,
* a seeded CENIC-like generator matching the published aggregate shape,
* IOS-style configuration rendering, and a config *miner* that re-derives the
  link inventory from rendered configs — the same inventory path the paper
  uses to map syslog hostnames and IS-IS OSI IDs onto canonical link names.
"""

from repro.topology.model import (
    CustomerSite,
    Interface,
    Link,
    LinkClass,
    Network,
    Router,
    RouterClass,
)
from repro.topology.addressing import (
    Ipv4SubnetAllocator,
    format_ipv4,
    net_for_system_id,
    parse_ipv4,
    system_id_for_index,
)
from repro.topology.builder import NetworkBuilder
from repro.topology.cenic import CenicParameters, build_cenic_like_network
from repro.topology.configgen import render_config, render_all_configs
from repro.topology.configmine import ConfigArchive, MinedInventory, mine_configs

__all__ = [
    "CustomerSite",
    "Interface",
    "Link",
    "LinkClass",
    "Network",
    "Router",
    "RouterClass",
    "Ipv4SubnetAllocator",
    "format_ipv4",
    "parse_ipv4",
    "net_for_system_id",
    "system_id_for_index",
    "NetworkBuilder",
    "CenicParameters",
    "build_cenic_like_network",
    "render_config",
    "render_all_configs",
    "ConfigArchive",
    "MinedInventory",
    "mine_configs",
]
