"""The canonical sanitise phase: §4.2's cleaning rules.

Before any statistics, the paper cleans both failure sets:

1. failures spanning **listener outage** windows are removed — during such
   windows the IS-IS channel is blind, so no fair comparison exists, and
   the post-restart resync fabricates transition times;
2. syslog failures longer than **24 hours** are "manually verified" against
   NOC trouble tickets; unverified ones are removed as spurious.  In the
   paper this single step removes ~6,000 hours of downtime — nearly twice
   the real total — so it is the highest-leverage filter in the pipeline.

:func:`classify_failure` is the single-failure decision every mode runs;
:class:`Sanitizer` is the per-link machine that orders those decisions
under a watermark.  The batch driver
(:func:`repro.core.sanitize.sanitize_failures`) feeds it with an
infinite watermark so every decision is immediate; the stream engine
feeds real watermarks, holding long failures open until the ticket
horizon closes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.core.events import FailureEvent
from repro.intervals import IntervalSet
from repro.ticketing import TicketSystem
from repro.util.timefmt import SECONDS_PER_HOUR


@dataclass(frozen=True)
class SanitizationConfig:
    """Thresholds of the §4.2 cleaning pass."""

    #: Failures at least this long need ticket verification (24 hours).
    long_failure_threshold: float = 86400.0
    #: Slack when cross-checking tickets (NOC open/close lag tolerance).
    ticket_slack: float = 7200.0

    def __post_init__(self) -> None:
        if self.long_failure_threshold <= 0:
            raise ValueError("long-failure threshold must be positive")
        if self.ticket_slack < 0:
            raise ValueError("ticket slack must be non-negative")


@dataclass
class SanitizationReport:
    """What the cleaning pass kept and what it threw away, and why."""

    kept: List[FailureEvent] = field(default_factory=list)
    removed_listener_overlap: List[FailureEvent] = field(default_factory=list)
    removed_unverified_long: List[FailureEvent] = field(default_factory=list)
    verified_long: List[FailureEvent] = field(default_factory=list)

    @property
    def long_failures_checked(self) -> int:
        return len(self.verified_long) + len(self.removed_unverified_long)

    @property
    def spurious_downtime_hours(self) -> float:
        """Hours of downtime removed by ticket verification."""
        return (
            sum(f.duration for f in self.removed_unverified_long)
            / SECONDS_PER_HOUR
        )

    @property
    def kept_downtime_hours(self) -> float:
        return sum(f.duration for f in self.kept) / SECONDS_PER_HOUR


#: Dispositions returned by :func:`classify_failure`.
KEEP = "keep"
KEEP_VERIFIED = "keep-verified"
DROP_LISTENER = "drop-listener"
DROP_UNVERIFIED = "drop-unverified"


def classify_failure(
    failure: FailureEvent,
    listener_outages: IntervalSet,
    tickets: Optional[TicketSystem],
    config: SanitizationConfig,
) -> str:
    """Decide one failure's fate under §4.2's cleaning rules.

    Returns ``KEEP``, ``KEEP_VERIFIED`` (a long failure corroborated by a
    ticket), ``DROP_LISTENER`` (spans a listener outage), or
    ``DROP_UNVERIFIED`` (a long failure no ticket corroborates).  This is
    the single-failure decision shared by every mode's sanitiser.

    Listener-outage overlap is **closed-interval**: the failure's closed
    span ``[start, end]`` need only touch an outage's closed span — a
    zero-duration failure sitting exactly on an outage boundary was still
    observed while the listener was blind, so it is dropped rather than
    falling through the measure-zero crack of half-open intersection.
    """
    if listener_outages.touches(failure.start, failure.end):
        return DROP_LISTENER
    if failure.duration >= config.long_failure_threshold and tickets is not None:
        if tickets.confirms(
            failure.link, failure.start, failure.end, slack=config.ticket_slack
        ):
            return KEEP_VERIFIED
        return DROP_UNVERIFIED
    return KEEP


def apply_disposition(
    report: SanitizationReport, failure: FailureEvent, disposition: str
) -> None:
    """Record one classified failure in a report (shared by every mode)."""
    if disposition == DROP_LISTENER:
        report.removed_listener_overlap.append(failure)
    elif disposition == DROP_UNVERIFIED:
        report.removed_unverified_long.append(failure)
    elif disposition == KEEP_VERIFIED:
        report.verified_long.append(failure)
        report.kept.append(failure)
    elif disposition == KEEP:
        report.kept.append(failure)
    else:
        raise ValueError(f"unknown disposition {disposition!r}")


class Sanitizer:
    """Per-link watermark-ordered application of §4.2's cleaning rules.

    The one genuinely temporal rule is deferred: a syslog failure at or
    above the 24 h threshold is held until the watermark passes its end
    plus the ticket slack — the horizon inside which a NOC ticket
    corroborating it could still close — before the ticket archive is
    consulted.  Listener-outage masking is immediate: the listener's
    outage log for the elapsed portion of the campaign is already final
    when the failure ends.  Per-link release order is preserved (a held
    long failure queues everything behind it on its link) so downstream
    consumers see per-link failure streams in start order.
    """

    def __init__(
        self,
        listener_outages: IntervalSet,
        tickets: Optional[TicketSystem],
        config: SanitizationConfig,
    ) -> None:
        self.listener_outages = listener_outages
        self.tickets = tickets
        self.config = config
        self.report = SanitizationReport()
        #: Per-link FIFO of failures awaiting a decision.
        self.held: Dict[str, Deque[FailureEvent]] = {}

    def _decidable(self, failure: FailureEvent, watermark: float) -> bool:
        if self.tickets is None:
            return True
        if failure.duration < self.config.long_failure_threshold:
            return True
        # The ticket horizon: a corroborating ticket can open/close up to
        # `ticket_slack` after the outage; only then is absence decisive.
        return watermark > failure.end + self.config.ticket_slack

    def feed(self, failure: FailureEvent, watermark: float) -> List[FailureEvent]:
        """Add one failure; returns the kept failures released by it."""
        queue = self.held.get(failure.link)
        if queue is None:
            queue = self.held[failure.link] = deque()
        queue.append(failure)
        return self._drain_link(failure.link, watermark)

    def _drain_link(self, link: str, watermark: float) -> List[FailureEvent]:
        queue = self.held.get(link)
        released: List[FailureEvent] = []
        while queue and self._decidable(queue[0], watermark):
            failure = queue.popleft()
            disposition = classify_failure(
                failure, self.listener_outages, self.tickets, self.config
            )
            apply_disposition(self.report, failure, disposition)
            if disposition in (KEEP, KEEP_VERIFIED):
                released.append(failure)
        if queue is not None and not queue:
            del self.held[link]
        return released

    def advance(self, watermark: float) -> List[FailureEvent]:
        """Release everything whose ticket horizon has closed."""
        released: List[FailureEvent] = []
        for link in sorted(self.held):
            released.extend(self._drain_link(link, watermark))
        return released

    def flush(self) -> List[FailureEvent]:
        return self.advance(math.inf)

    def held_frontier(self, link: str) -> float:
        """Lower bound on the start of any held (undecided) failure."""
        queue = self.held.get(link)
        return queue[0].start if queue else math.inf

    @property
    def held_count(self) -> int:
        return sum(len(queue) for queue in self.held.values())

    def finalized_report(self) -> SanitizationReport:
        """The report in the batch pass's canonical (start, link) order."""
        report = SanitizationReport()
        key = lambda f: (f.start, f.link)  # noqa: E731
        report.kept = sorted(self.report.kept, key=key)
        report.removed_listener_overlap = sorted(
            self.report.removed_listener_overlap, key=key
        )
        report.removed_unverified_long = sorted(
            self.report.removed_unverified_long, key=key
        )
        report.verified_long = sorted(self.report.verified_long, key=key)
        return report
