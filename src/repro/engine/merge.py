"""The canonical merge phase: per-link message runs → transitions.

:class:`RunMerger` is the single implementation of the merge-window rule
(§3.4) behind every mode.  The batch driver
(:func:`repro.core.reconstruct.merge_messages`) feeds each link's
messages in time order and closes everything with an infinite watermark;
the stream engine feeds messages as they arrive and advances the
watermark as sources drain.  A run closes the moment a message proves it
over (direction change, or same direction outside the merge window) —
or when the watermark passes the run's start plus the merge window,
after which no message can join it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.events import LinkMessage, Transition


class RunMerger:
    """Per-link incremental merge of same-direction message runs."""

    def __init__(self, merge_window: float, source: str) -> None:
        if merge_window < 0:
            raise ValueError("merge window must be non-negative")
        self.merge_window = merge_window
        self.source = source
        self._open_runs: Dict[str, List[LinkMessage]] = {}
        self.transition_count = 0

    def _close(self, run: List[LinkMessage]) -> Transition:
        self.transition_count += 1
        return Transition(
            time=run[0].time,
            link=run[0].link,
            direction=run[0].direction,
            source=self.source,
            reporters=frozenset(message.reporter for message in run),
            messages=tuple(run),
        )

    def feed(self, message: LinkMessage) -> Optional[Transition]:
        """Add one message; returns the transition it closed, if any."""
        run = self._open_runs.get(message.link)
        if (
            run is not None
            and message.direction == run[0].direction
            and message.time - run[0].time <= self.merge_window
        ):
            run.append(message)
            return None
        self._open_runs[message.link] = [message]
        return self._close(run) if run is not None else None

    def advance(self, watermark: float) -> List[Transition]:
        """Close every run no future message (time >= watermark) can join."""
        closed: List[Transition] = []
        for link in sorted(self._open_runs):
            run = self._open_runs[link]
            if watermark > run[0].time + self.merge_window:
                closed.append(self._close(run))
                del self._open_runs[link]
        return closed

    def frontier(self, link: str, watermark: float) -> float:
        """Lower bound on the time of any future transition on ``link``."""
        run = self._open_runs.get(link)
        return min(run[0].time, watermark) if run is not None else watermark

    @property
    def open_run_count(self) -> int:
        return len(self._open_runs)

    @property
    def open_runs(self) -> Dict[str, List[LinkMessage]]:
        """The open runs, exposed for checkpointing."""
        return self._open_runs
