"""The canonical flap phase: the ten-minute rule of §4.1.

"Two or more consecutive failures on the same link separated by less than
10 minutes" form a flapping episode.  Flap periods matter because syslog's
reliability collapses inside them: the paper finds most unmatched IS-IS
transitions (67 % of DOWNs, 61 % of UPs) fall in flap periods, and less
than half of syslog's own transitions are matched there.

:class:`FlapDetector` is the single implementation behind every mode.
The batch driver (:func:`repro.core.flapping.detect_flap_episodes`)
feeds each link's sanitised failures in start order and flushes; the
stream engine feeds them as the sanitiser releases them and closes runs
against the channel frontier.

A run tracks the **running maximum end** of its failures, not the last
failure's end: per-link failure streams arrive in start order, but a
long failure can entirely contain a later short one, and gapping against
the short one's earlier end would both split episodes the ten-minute
rule chains and truncate the episode span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.events import FailureEvent
from repro.intervals import Interval


@dataclass(frozen=True)
class FlapEpisode:
    """A run of rapid consecutive failures on one link.

    An episode may have zero duration: two or more zero-duration failures
    at the same instant (a sanitised double-down/double-up burst) are
    still a flap under the ten-minute rule.  Only ``end < start`` is an
    error.
    """

    link: str
    start: float
    end: float
    failure_count: int

    def __post_init__(self) -> None:
        if self.failure_count < 2:
            raise ValueError("a flap episode needs at least two failures")
        if self.end < self.start:
            raise ValueError("flap episode end precedes its start")

    @property
    def span(self) -> Interval:
        return Interval(self.start, self.end)


class FlapRun:
    """A growing run of rapid consecutive failures on one link."""

    __slots__ = ("start", "end", "count")

    def __init__(self, failure: FailureEvent) -> None:
        self.start = failure.start
        self.end = failure.end
        self.count = 1


class FlapDetector:
    """Per-link incremental application of §4.1's ten-minute rule."""

    def __init__(self, gap_threshold: float) -> None:
        if gap_threshold <= 0:
            raise ValueError("gap threshold must be positive")
        self.gap_threshold = gap_threshold
        self.runs: Dict[str, FlapRun] = {}
        self.episodes: List[FlapEpisode] = []

    def feed(self, failure: FailureEvent) -> None:
        """Add one sanitised failure (per-link start order required)."""
        run = self.runs.get(failure.link)
        if run is not None and failure.start - run.end < self.gap_threshold:
            run.end = max(run.end, failure.end)
            run.count += 1
            return
        if run is not None:
            self._close(failure.link, run)
        self.runs[failure.link] = FlapRun(failure)

    def _close(self, link: str, run: FlapRun) -> None:
        if run.count >= 2:
            self.episodes.append(FlapEpisode(link, run.start, run.end, run.count))

    def advance(self, frontier: Callable[[str], float]) -> None:
        """Close every run no future failure can extend.

        ``frontier(link)`` bounds the start of any sanitised failure the
        channel may still emit on ``link``; a run is over once that bound
        reaches its last end plus the gap threshold.
        """
        for link in sorted(self.runs):
            run = self.runs[link]
            if frontier(link) >= run.end + self.gap_threshold:
                self._close(link, run)
                del self.runs[link]

    def flush(self) -> None:
        for link in sorted(self.runs):
            self._close(link, self.runs[link])
        self.runs.clear()

    def result(self) -> List[FlapEpisode]:
        """Episodes in the canonical batch (start, link) order."""
        return sorted(self.episodes, key=lambda e: (e.start, e.link))

    @property
    def open_run_count(self) -> int:
        return len(self.runs)
