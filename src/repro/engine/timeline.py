"""The canonical timeline + failure phases: transitions → spans → failures.

:class:`TimelineBuilder` is the single per-link implementation behind
every mode of the funnel's timeline-building and failure-extraction
phases (§3.4 steps 3–4).  It applies the ambiguity strategy transition
by transition, merges contiguous equal-state segments on the fly, and
emits a :class:`~repro.core.events.FailureEvent` the moment a complete
(non-censored) DOWN span can no longer change — which for the paper's
PREVIOUS_STATE strategy is as soon as the watermark passes the closing
UP transition.

The batch drivers (:func:`repro.core.reconstruct.reconstruct_channel`,
:meth:`repro.intervals.timeline.LinkStateTimeline.from_transitions`)
construct the builder with ``capture=True``, feed the link's whole
transition stream, ``flush()``, and read the rendered
:class:`~repro.intervals.timeline.LinkStateTimeline` from
:meth:`timeline`.  The stream engine leaves capture off (its memory must
stay bounded by the open state, not the elapsed campaign) and drains
failures incrementally via :meth:`collect`.

State mirrors the classic batch loop variables (``cursor``, ``state``,
``last_message_time``) plus the one piece of deferred bookkeeping the
batch code used to do afterwards: the *tail*, the last merged
constant-state segment, which stays open until a different-state segment
(or the horizon) seals it.  Sealed DOWN tails that touch neither horizon
edge become failures.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.events import FailureEvent, Transition
from repro.intervals.timeline import (
    DOWN,
    AmbiguityStrategy,
    LinkState,
    LinkStateTimeline,
    StateAnomaly,
    StateSpan,
    _window_state,
)


class TimelineBuilder:
    """Per-link incremental timeline reconstruction and failure closing."""

    def __init__(
        self,
        link: str,
        horizon_start: float,
        horizon_end: float,
        strategy: AmbiguityStrategy,
        source: str,
        initial_state: LinkState = LinkState.UP,
        capture: bool = False,
    ) -> None:
        self.link = link
        self.horizon_start = horizon_start
        self.horizon_end = horizon_end
        self.strategy = strategy
        self.source = source
        self.initial_state = initial_state
        self.capture = capture

        self.cursor = horizon_start
        self.state = initial_state
        self.last_message_time: Optional[float] = None
        #: The unfinalised merged segment, or None ((start, end, state));
        #: invariant: tail.end == cursor.
        self.tail: Optional[Tuple[float, float, LinkState]] = None
        #: Same-time reorder buffer: transitions at pending_time.
        self.pending: List[Transition] = []
        self.pending_time: Optional[float] = None
        #: (time, direction) -> Transition, for failure attachment.
        self.index: Dict[Tuple[float, str], Transition] = {}
        self.anomaly_count = 0
        self.flushed = False
        #: Finalised failures awaiting collection by the engine.
        self.emitted: List[FailureEvent] = []
        #: Sealed spans / anomalies, recorded only under capture=True.
        self._spans: List[Tuple[float, float, LinkState]] = []
        self._anomalies: List[StateAnomaly] = []

    # -------------------------------------------------------------- feed
    def feed(self, transition: Transition) -> None:
        """Apply one link transition (must arrive in time order)."""
        time = transition.time
        if not self.horizon_start <= time < self.horizon_end:
            return
        if self.pending_time is not None and time < self.pending_time:
            raise ValueError(
                f"transition at {time} precedes pending time {self.pending_time}"
            )
        if self.pending_time is not None and time > self.pending_time:
            self._release_pending()
        self.pending_time = time
        self.pending.append(transition)
        self.index[(time, transition.direction)] = transition

    def _release_pending(self) -> None:
        # The batch build sorts (time, direction) pairs, so equal-time
        # transitions apply down-before-up regardless of arrival order.
        self.pending.sort(key=lambda t: t.direction)
        for transition in self.pending:
            self._apply(transition.time, transition.direction)
        self.pending = []
        self.pending_time = None

    def _apply(self, time: float, direction: str) -> None:
        new_state = LinkState.DOWN if direction == DOWN else LinkState.UP
        if new_state == self.state:
            if self.last_message_time is None:
                self.last_message_time = time
                return
            self.anomaly_count += 1
            if self.capture:
                self._anomalies.append(
                    StateAnomaly(self.last_message_time, time, direction)
                )
            window = _window_state(self.strategy, self.state)
            if window != self.state:
                self._append(self.cursor, self.last_message_time, self.state)
                self._append(self.last_message_time, time, window)
                self.cursor = time
            self.last_message_time = time
        else:
            self._append(self.cursor, time, self.state)
            self.cursor = time
            self.state = new_state
            self.last_message_time = time

    # ----------------------------------------------------- segment merge
    def _append(self, start: float, end: float, state: LinkState) -> None:
        if start == end:
            return
        if (
            self.tail is not None
            and self.tail[2] == state
            and self.tail[1] == start
        ):
            self.tail = (self.tail[0], end, state)
            return
        if self.tail is not None:
            self._seal_tail()
        self.tail = (start, end, state)

    def _seal_tail(self) -> None:
        assert self.tail is not None
        start, end, state = self.tail
        self.tail = None
        if self.capture:
            self._spans.append((start, end, state))
        if (
            state is LinkState.DOWN
            and start > self.horizon_start
            and end < self.horizon_end
        ):
            self.emitted.append(
                FailureEvent(
                    link=self.link,
                    start=start,
                    end=end,
                    source=self.source,
                    start_transition=self.index.get((start, "down")),
                    end_transition=self.index.get((end, "up")),
                )
            )
        # Future span boundaries all lie at or after this segment's end.
        stale = [key for key in self.index if key[0] < end]
        for key in stale:
            del self.index[key]

    # ----------------------------------------------------------- advance
    def advance(self, watermark: float) -> None:
        """Finalise everything the watermark proves immutable."""
        if self.pending_time is not None and watermark > self.pending_time:
            self._release_pending()
        if (
            self.tail is not None
            and self.tail[2] != self.state
            and watermark > self.cursor
            and not self._tail_can_still_grow()
        ):
            self._seal_tail()

    def _tail_can_still_grow(self) -> bool:
        # A future ambiguity window starting exactly at the tail's end
        # could merge into it — only when the strategy forces windows to
        # the tail's state and the last message sits at the cursor.
        assert self.tail is not None
        return (
            _window_state(self.strategy, self.state) == self.tail[2]
            and self.last_message_time == self.cursor
        )

    def flush(self) -> None:
        """End of stream: close the final segment at the horizon edge."""
        if self.flushed:
            return
        self.flushed = True
        if self.pending:
            self._release_pending()
        self.pending_time = None
        self._append(self.cursor, self.horizon_end, self.state)
        self.cursor = self.horizon_end
        if self.tail is not None:
            self._seal_tail()

    def collect(self) -> List[FailureEvent]:
        """Drain finalised failures (engine calls after feed/advance)."""
        if not self.emitted:
            return []
        out = self.emitted
        self.emitted = []
        return out

    # ---------------------------------------------------------- timeline
    def timeline(self) -> LinkStateTimeline:
        """Render the captured spans as a :class:`LinkStateTimeline`.

        Requires ``capture=True`` and a prior :meth:`flush` — the batch
        drivers' exhaustive feed makes the sealed spans exactly the merged
        segment list of the classic batch build, censoring included.
        """
        if not self.capture:
            raise ValueError("timeline() requires capture=True")
        if not self.flushed:
            raise ValueError("timeline() requires flush()")
        merged = self._spans or [
            (self.horizon_start, self.horizon_end, self.initial_state)
        ]
        spans = [
            StateSpan(
                start,
                end,
                state,
                censored_left=(start == self.horizon_start),
                censored_right=(end == self.horizon_end),
            )
            for start, end, state in merged
        ]
        return LinkStateTimeline(
            spans, self._anomalies, self.horizon_start, self.horizon_end
        )

    # ---------------------------------------------------------- frontier
    def down_frontier(self) -> float:
        """Lower bound on the start of any failure still to be emitted."""
        frontier = math.inf
        if self.tail is not None and self.tail[2] is LinkState.DOWN:
            frontier = min(frontier, self.tail[0])
        if self.state is LinkState.DOWN:
            if (
                self.tail is not None
                and self.tail[2] is LinkState.DOWN
                and self.tail[1] == self.cursor
            ):
                frontier = min(frontier, self.tail[0])
            else:
                frontier = min(frontier, self.cursor)
        if self.pending_time is not None:
            frontier = min(frontier, self.pending_time)
        if (
            self.strategy is not AmbiguityStrategy.PREVIOUS_STATE
            and self.last_message_time is not None
        ):
            # Non-default strategies can open DOWN windows reaching back
            # to the last message.
            frontier = min(frontier, self.last_message_time)
        return frontier
