"""The canonical match + coverage phases (§3.4, Tables 3–4).

:class:`Matcher` is the single implementation of the greedy one-to-one
failure matcher behind every mode.  Matching is per-link, and per-link
failure streams are ordered by start *and* end (down spans on one link
cannot overlap), so a syslog failure's verdict is final as soon as the
IS-IS side's **frontier** — a lower bound on the start of any IS-IS
failure still to come on that link — clears both the matching window
past the failure's start and the failure's end (for partial-overlap
accounting).  The batch driver
(:func:`repro.core.matching.match_failures`) feeds both sides to
exhaustion and flushes with infinite frontiers; the stream engine feeds
real frontiers so decisions stream out within one matching window plus
hold-timer slack of real time.  Both read the same canonical result.

:class:`CoverageScorer` is the single implementation of Table 3's
None/One/Both accounting
(:func:`repro.core.matching.count_matching_reporters` is its batch
driver): each IS-IS transition is scored once the watermark passes its
time plus the matching window, against a pruned ring of recent syslog
messages.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Set, Tuple, Union

from repro.core.events import FailureEvent, LinkMessage, Transition


@dataclass
class FailureMatchResult:
    """Greedy one-to-one failure matching between two channels."""

    pairs: List[Tuple[FailureEvent, FailureEvent]] = field(default_factory=list)
    only_a: List[FailureEvent] = field(default_factory=list)
    only_b: List[FailureEvent] = field(default_factory=list)
    #: Unmatched failures that nevertheless overlap something on the other
    #: side — the paper's "partial" matches.
    partial_a: List[FailureEvent] = field(default_factory=list)
    partial_b: List[FailureEvent] = field(default_factory=list)

    @property
    def matched_count(self) -> int:
        return len(self.pairs)


@dataclass
class TransitionCoverage:
    """Table 3: reference transitions by how many distinct routers matched."""

    #: counts[direction][n] where n is 0 ("None"), 1 ("One"), 2 ("Both").
    counts: Dict[str, Dict[int, int]] = field(
        default_factory=lambda: {"down": {0: 0, 1: 0, 2: 0}, "up": {0: 0, 1: 0, 2: 0}}
    )
    #: The transitions that matched no message, for flap attribution (§4.1).
    unmatched: List[Transition] = field(default_factory=list)

    def total(self, direction: str) -> int:
        return sum(self.counts[direction].values())

    def fraction(self, direction: str, bucket: int) -> float:
        total = self.total(direction)
        return self.counts[direction][bucket] / total if total else 0.0


class _LinkMatchState:
    """Matcher bookkeeping for one link."""

    __slots__ = ("a_pending", "b_pending", "a_all", "b_all", "b_consumed")

    def __init__(self) -> None:
        #: Undecided failures, FIFO in start order.
        self.a_pending: Deque[FailureEvent] = deque()
        #: Indices into b_all not yet resolved as matched or only-b.
        self.b_pending: Deque[int] = deque()
        #: Every kept failure seen, in start order (overlap accounting).
        self.a_all: List[FailureEvent] = []
        self.b_all: List[FailureEvent] = []
        self.b_consumed: List[bool] = []


class Matcher:
    """Greedy one-to-one failure matching with provably-final decisions.

    ``a`` is the syslog channel, ``b`` the IS-IS channel, matching the
    batch call ``match_failures(syslog_kept, isis_kept)``.
    """

    def __init__(self, window: float) -> None:
        if window < 0:
            raise ValueError("matching window must be non-negative")
        self.window = window
        self.links: Dict[str, _LinkMatchState] = {}
        self.pairs: List[Tuple[FailureEvent, FailureEvent]] = []
        self.only_a: List[FailureEvent] = []
        self.only_b: List[FailureEvent] = []
        self.partial_a: List[FailureEvent] = []
        self.partial_b: List[FailureEvent] = []

    def _state(self, link: str) -> _LinkMatchState:
        state = self.links.get(link)
        if state is None:
            state = self.links[link] = _LinkMatchState()
        return state

    def feed(self, side: str, failure: FailureEvent) -> None:
        """Add one kept failure to channel ``side`` (``"a"`` or ``"b"``)."""
        state = self._state(failure.link)
        if side == "a":
            state.a_pending.append(failure)
            state.a_all.append(failure)
        elif side == "b":
            state.b_all.append(failure)
            state.b_consumed.append(False)
            state.b_pending.append(len(state.b_all) - 1)
        else:
            raise ValueError(f"unknown matcher side {side!r}")

    # ---------------------------------------------------------- decisions
    def advance(
        self,
        frontier_a: Callable[[str], float],
        frontier_b: Callable[[str], float],
    ) -> None:
        """Decide every pending failure the frontiers prove final.

        ``frontier_a(link)`` / ``frontier_b(link)`` return a lower bound
        on the start of any *kept* failure the respective channel may
        still emit on ``link``.
        """
        for link, state in self.links.items():
            if state.a_pending or state.b_pending:
                self._advance_link(link, state, frontier_a(link), frontier_b(link))

    def _advance_link(
        self,
        link: str,
        state: _LinkMatchState,
        frontier_a: float,
        frontier_b: float,
    ) -> None:
        window = self.window
        while state.a_pending:
            fa = state.a_pending[0]
            if not (frontier_b > fa.start + window and frontier_b >= fa.end):
                break
            state.a_pending.popleft()
            match_index = None
            for i, fb in enumerate(state.b_all):
                if state.b_consumed[i]:
                    continue
                if fb.start > fa.start + window:
                    break
                if (
                    abs(fb.start - fa.start) <= window
                    and abs(fb.end - fa.end) <= window
                ):
                    match_index = i
                    break
            if match_index is None:
                self.only_a.append(fa)
                if any(fa.overlaps(fb) for fb in state.b_all):
                    self.partial_a.append(fa)
            else:
                state.b_consumed[match_index] = True
                self.pairs.append((fa, state.b_all[match_index]))

        while state.b_pending:
            index = state.b_pending[0]
            if state.b_consumed[index]:
                # Matched; the pair was recorded on the a side.
                state.b_pending.popleft()
                continue
            fb = state.b_all[index]
            if not (frontier_a > fb.start + window and frontier_a >= fb.end):
                break
            if state.a_pending and state.a_pending[0].start <= fb.start + window:
                # An undecided syslog failure could still consume it.
                break
            state.b_pending.popleft()
            self.only_b.append(fb)
            if any(fb.overlaps(fa) for fa in state.a_all):
                self.partial_b.append(fb)

    def flush(self) -> None:
        """End of stream: every frontier is infinite; decide everything."""
        infinite = lambda _link: float("inf")  # noqa: E731
        self.advance(infinite, infinite)

    def result(self) -> FailureMatchResult:
        """The match result in the canonical batch order."""
        result = FailureMatchResult()
        result.pairs = sorted(self.pairs, key=lambda p: (p[0].start, p[0].link))
        result.only_a = sorted(self.only_a, key=lambda f: (f.start, f.link))
        result.only_b = sorted(self.only_b, key=lambda f: (f.start, f.link))
        result.partial_a = sorted(self.partial_a, key=lambda f: (f.start, f.link))
        result.partial_b = sorted(self.partial_b, key=lambda f: (f.start, f.link))
        return result

    @property
    def pending_count(self) -> int:
        return sum(
            len(s.a_pending) + len(s.b_pending) for s in self.links.values()
        )

    @property
    def decided_count(self) -> int:
        return len(self.pairs) + len(self.only_a) + len(self.only_b)


class CoverageScorer:
    """Incremental Table 3: reporters matching each IS-IS transition."""

    def __init__(self, window: float, reference_merge_window: float = 0.0) -> None:
        self.window = window
        self.reference_merge_window = reference_merge_window
        self.counts: Dict[str, Dict[int, int]] = {
            "down": {0: 0, 1: 0, 2: 0},
            "up": {0: 0, 1: 0, 2: 0},
        }
        self.unmatched: List[Transition] = []
        self.pending: Deque[Transition] = deque()
        #: (link, direction) -> deque of (time, reporter), in event time.
        self.messages: Dict[Tuple[str, str], Deque[Tuple[float, str]]] = {}

    def feed(self, item: Union[LinkMessage, Transition]) -> None:
        """Add one syslog message or one reference (IS-IS) transition."""
        if isinstance(item, LinkMessage):
            key = (item.link, item.direction)
            ring = self.messages.get(key)
            if ring is None:
                ring = self.messages[key] = deque()
            ring.append((item.time, item.reporter))
        else:
            self.pending.append(item)

    def advance(self, watermark: float) -> None:
        while self.pending and watermark > self.pending[0].time + self.window:
            self._decide(self.pending.popleft())
        self._prune(watermark)

    def _decide(self, transition: Transition) -> None:
        ring = self.messages.get((transition.link, transition.direction), ())
        low = transition.time - self.window
        high = transition.time + self.window
        reporters: Set[str] = set()
        for time, reporter in ring:
            if time < low:
                continue
            if time > high:
                break
            reporters.add(reporter)
        bucket = min(len(reporters), 2)
        self.counts[transition.direction][bucket] += 1
        if bucket == 0:
            self.unmatched.append(transition)

    def _prune(self, watermark: float) -> None:
        # Messages can be dropped once nothing pending or future (the
        # earliest future reference transition starts no earlier than the
        # watermark minus the reference channel's merge window) needs them.
        cut = watermark - self.reference_merge_window
        for transition in self.pending:
            cut = min(cut, transition.time)
        cut -= self.window
        for ring in self.messages.values():
            while ring and ring[0][0] < cut:
                ring.popleft()

    def flush(self) -> None:
        while self.pending:
            self._decide(self.pending.popleft())
        self.messages.clear()

    def result(self) -> TransitionCoverage:
        """Coverage in the batch reference order (time, then link)."""
        coverage = TransitionCoverage()
        coverage.counts = {
            direction: dict(buckets) for direction, buckets in self.counts.items()
        }
        coverage.unmatched = sorted(
            self.unmatched, key=lambda t: (t.time, t.link)
        )
        return coverage

    @property
    def message_buffer_size(self) -> int:
        return sum(len(ring) for ring in self.messages.values())
