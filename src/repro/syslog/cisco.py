"""Cisco syslog message vocabulary.

The paper's syslog feed contains the messages pertaining to "the link, link
protocol, and IS-IS routing protocol" (§3.3); Table 1 names the two IS-IS
adjacency mnemonics:

* ``%CLNS-5-ADJCHANGE`` — classic IOS (our CPE routers),
* ``%ROUTING-ISIS-4-ADJCHANGE`` — IOS-XR (our Core routers),

and §3.4/Table 2 additionally use the physical-media messages
``%LINK-3-UPDOWN`` and ``%LINEPROTO-5-UPDOWN``.

Each message class renders to the authentic body text and parses back,
carrying the structured facts the analysis needs: the local interface, the
direction, and (for adjacency messages) the neighbor's hostname.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Optional, Union

from repro.syslog.message import Severity, SyslogMessage


class CiscoFlavor(enum.Enum):
    """Which operating system's message format a router emits."""

    IOS = "ios"
    IOS_XR = "ios-xr"


class MessageCategory(enum.Enum):
    """Table 2's split: IS-IS protocol messages vs physical media messages."""

    ISIS = "isis"
    PHYSICAL = "physical"


@dataclass(frozen=True)
class AdjacencyChangeMessage:
    """An IS-IS adjacency state change logged by a router.

    ``reason`` carries Cisco's cause phrase; the analysis in §4.3 uses it to
    distinguish a *reset adjacency* pseudo-failure from a subsequent real
    link failure ("differentiated ... by the type of syslog message being
    sent").
    """

    router: str
    interface: str
    neighbor_hostname: str
    direction: str  # "up" | "down"
    reason: str = ""
    flavor: CiscoFlavor = CiscoFlavor.IOS

    def __post_init__(self) -> None:
        if self.direction not in ("up", "down"):
            raise ValueError(f"bad direction {self.direction!r}")

    @property
    def category(self) -> MessageCategory:
        return MessageCategory.ISIS

    @property
    def mnemonic(self) -> str:
        if self.flavor is CiscoFlavor.IOS:
            return "%CLNS-5-ADJCHANGE"
        return "%ROUTING-ISIS-4-ADJCHANGE"

    @property
    def severity(self) -> Severity:
        return (
            Severity.NOTICE if self.flavor is CiscoFlavor.IOS else Severity.WARNING
        )

    def render_body(self) -> str:
        state = "Up" if self.direction == "up" else "Down"
        suffix = f", {self.reason}" if self.reason else ""
        if self.flavor is CiscoFlavor.IOS:
            return (
                f"{self.mnemonic}: ISIS: Adjacency to {self.neighbor_hostname} "
                f"({self.interface}) {state}{suffix}"
            )
        return (
            f"{self.mnemonic} : Adjacency to {self.neighbor_hostname} "
            f"({self.interface}) (L2) {state}{suffix}"
        )

    def to_syslog(self, time: float) -> SyslogMessage:
        return SyslogMessage(
            timestamp=time,
            hostname=self.router,
            body=self.render_body(),
            severity=self.severity,
        )


@dataclass(frozen=True)
class LinkUpDownMessage:
    """``%LINK-3-UPDOWN`` — the physical interface changed state."""

    router: str
    interface: str
    direction: str

    def __post_init__(self) -> None:
        if self.direction not in ("up", "down"):
            raise ValueError(f"bad direction {self.direction!r}")

    @property
    def category(self) -> MessageCategory:
        return MessageCategory.PHYSICAL

    mnemonic = "%LINK-3-UPDOWN"

    @property
    def severity(self) -> Severity:
        return Severity.ERROR

    def render_body(self) -> str:
        return (
            f"{self.mnemonic}: Interface {self.interface}, "
            f"changed state to {self.direction}"
        )

    def to_syslog(self, time: float) -> SyslogMessage:
        return SyslogMessage(
            timestamp=time,
            hostname=self.router,
            body=self.render_body(),
            severity=self.severity,
        )


@dataclass(frozen=True)
class LineProtoUpDownMessage:
    """``%LINEPROTO-5-UPDOWN`` — the link protocol followed the interface."""

    router: str
    interface: str
    direction: str

    def __post_init__(self) -> None:
        if self.direction not in ("up", "down"):
            raise ValueError(f"bad direction {self.direction!r}")

    @property
    def category(self) -> MessageCategory:
        return MessageCategory.PHYSICAL

    mnemonic = "%LINEPROTO-5-UPDOWN"

    @property
    def severity(self) -> Severity:
        return Severity.NOTICE

    def render_body(self) -> str:
        return (
            f"{self.mnemonic}: Line protocol on Interface {self.interface}, "
            f"changed state to {self.direction}"
        )

    def to_syslog(self, time: float) -> SyslogMessage:
        return SyslogMessage(
            timestamp=time,
            hostname=self.router,
            body=self.render_body(),
            severity=self.severity,
        )


CiscoLogEntry = Union[AdjacencyChangeMessage, LinkUpDownMessage, LineProtoUpDownMessage]

_CLNS_RE = re.compile(
    r"^%CLNS-5-ADJCHANGE: ISIS: Adjacency to (?P<neighbor>\S+) "
    r"\((?P<interface>\S+)\) (?P<state>Up|Down)(?:, (?P<reason>.*))?$"
)
_XR_RE = re.compile(
    r"^%ROUTING-ISIS-4-ADJCHANGE : Adjacency to (?P<neighbor>\S+) "
    r"\((?P<interface>\S+)\) \(L2\) (?P<state>Up|Down)(?:, (?P<reason>.*))?$"
)
_LINK_RE = re.compile(
    r"^%LINK-3-UPDOWN: Interface (?P<interface>\S+), "
    r"changed state to (?P<state>up|down)$"
)
_LINEPROTO_RE = re.compile(
    r"^%LINEPROTO-5-UPDOWN: Line protocol on Interface (?P<interface>\S+), "
    r"changed state to (?P<state>up|down)$"
)


def parse_cisco_body(router: str, body: str) -> Optional[CiscoLogEntry]:
    """Parse a syslog body into a typed Cisco entry.

    Returns ``None`` for bodies that are not one of the four link-related
    mnemonics — the collector feed, like CENIC's, may contain other chatter
    that the failure analysis must skip over.
    """
    match = _CLNS_RE.match(body)
    if match:
        return AdjacencyChangeMessage(
            router=router,
            interface=match.group("interface"),
            neighbor_hostname=match.group("neighbor"),
            direction=match.group("state").lower(),
            reason=match.group("reason") or "",
            flavor=CiscoFlavor.IOS,
        )
    match = _XR_RE.match(body)
    if match:
        return AdjacencyChangeMessage(
            router=router,
            interface=match.group("interface"),
            neighbor_hostname=match.group("neighbor"),
            direction=match.group("state").lower(),
            reason=match.group("reason") or "",
            flavor=CiscoFlavor.IOS_XR,
        )
    match = _LINK_RE.match(body)
    if match:
        return LinkUpDownMessage(
            router=router,
            interface=match.group("interface"),
            direction=match.group("state"),
        )
    match = _LINEPROTO_RE.match(body)
    if match:
        return LineProtoUpDownMessage(
            router=router,
            interface=match.group("interface"),
            direction=match.group("state"),
        )
    return None
