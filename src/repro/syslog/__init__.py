"""Syslog substrate: messages, Cisco formats, lossy transport, collector.

Syslog is the paper's "low quality" observation channel: human-readable
diagnostic strings sent over UDP from every router to a central collector
(§3.3).  Two properties drive the paper's findings and are modelled
explicitly here:

* **Loss** — syslog is UDP from a low-priority process; delivery "is far
  from certain", and loss is concentrated exactly when messages matter most
  (link flapping floods the channel, §4.1).
* **Spurious retransmission** — repeated state-change messages that restate
  the link's current state; together with loss these produce the ambiguous
  double-down/double-up sequences of §4.3.

The package provides the wire-format layer (:mod:`repro.syslog.message`),
the Cisco message vocabulary of Table 1 (:mod:`repro.syslog.cisco`), the
lossy UDP channel (:mod:`repro.syslog.transport`), and the central collector
with log-file rendering and parsing (:mod:`repro.syslog.collector`).
"""

from repro.syslog.message import Facility, Severity, SyslogMessage, parse_syslog_line
from repro.syslog.cisco import (
    AdjacencyChangeMessage,
    CiscoFlavor,
    CiscoLogEntry,
    LineProtoUpDownMessage,
    LinkUpDownMessage,
    MessageCategory,
    parse_cisco_body,
)
from repro.syslog.transport import DeliveryRecord, LossyUdpChannel, TransportParameters
from repro.syslog.collector import SyslogCollector

__all__ = [
    "Facility",
    "Severity",
    "SyslogMessage",
    "parse_syslog_line",
    "AdjacencyChangeMessage",
    "CiscoFlavor",
    "CiscoLogEntry",
    "LineProtoUpDownMessage",
    "LinkUpDownMessage",
    "MessageCategory",
    "parse_cisco_body",
    "DeliveryRecord",
    "LossyUdpChannel",
    "TransportParameters",
    "SyslogCollector",
]
