"""The lossy UDP path from router to collector.

This channel is where syslog's fidelity is lost, so its failure modes are
modelled explicitly and independently tunable:

* **baseline loss** — any datagram can vanish (UDP, low-priority sender);
* **burst loss** — when a router emits many messages in a short window
  (link flapping), the loss probability rises sharply.  The paper finds
  that *less than half* of syslog transitions are captured during flapping
  and that most unmatched IS-IS transitions fall in flap periods (§4.1);
* **delay** — queueing plus scheduling delay on the low-priority syslog
  process; usually well under a second, occasionally seconds;
* **spurious retransmission** — the same state-change message delivered
  again later, restating the link's current state; the dominant cause of
  double-down sequences (§4.3, Table 6).

Every decision is drawn from a seeded RNG, so a scenario seed reproduces the
identical delivery trace.
"""

from __future__ import annotations

import dataclasses
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.syslog.message import SyslogMessage


@dataclass(frozen=True)
class TransportParameters:
    """Tunable behaviour of the router→collector syslog path."""

    #: Probability that an isolated datagram is lost in transit.
    base_loss_probability: float = 0.04
    #: Extra loss applied to "down" messages: the sender is busiest exactly
    #: when things break (routing reconvergence competes with the
    #: low-priority syslog process), so failure-onset messages fare worse.
    down_loss_bonus: float = 0.03
    #: Loss probability once the sender is in a message burst (flapping).
    burst_loss_probability: float = 0.22
    #: Two messages from one router closer than this count toward a burst.
    burst_window: float = 300.0
    #: Messages within the window needed before burst loss kicks in.  A
    #: single physical failure produces ~6 messages at one end within
    #: seconds (LINK, LINEPROTO, ADJCHANGE at down and up), so the
    #: threshold sits just above that — only genuine flapping qualifies.
    burst_threshold: int = 7
    #: Uniform transport delay bounds (seconds) for the common case.
    min_delay: float = 0.05
    max_delay: float = 1.5
    #: Probability that a delivered message is additionally re-delivered.
    spurious_retransmit_probability: float = 0.005
    #: Delay range for the spurious copy, relative to generation time.
    #: Short enough that a spurious Down usually restates the *ongoing*
    #: failure (the paper finds 99 % of spurious Downs do, §4.3).
    spurious_min_delay: float = 0.5
    spurious_max_delay: float = 8.0

    def __post_init__(self) -> None:
        for name in (
            "base_loss_probability",
            "down_loss_bonus",
            "burst_loss_probability",
            "spurious_retransmit_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError("delay bounds must satisfy 0 <= min <= max")
        if self.spurious_min_delay < 0 or self.spurious_max_delay < self.spurious_min_delay:
            raise ValueError("spurious delay bounds must satisfy 0 <= min <= max")
        if self.burst_threshold < 1:
            raise ValueError("burst threshold must be at least one message")


def _is_down_message(body: str) -> bool:
    """Heuristic direction sniff used only for the down-loss bias."""
    return ") Down" in body or "state to down" in body or ") (L2) Down" in body


@dataclass(frozen=True)
class DeliveryRecord:
    """One datagram's fate: delivered (with arrival time) or lost."""

    message: SyslogMessage
    sent_time: float
    arrival_time: Optional[float]  # None == lost
    spurious: bool = False  # True for the extra copy of a retransmission

    @property
    def delivered(self) -> bool:
        return self.arrival_time is not None


class LossyUdpChannel:
    """Applies loss, delay, and spurious duplication to syslog datagrams.

    Call :meth:`send` for every generated message; read the full trace from
    :attr:`records`.  Delivered records (including spurious copies) are what
    the collector sees.
    """

    def __init__(
        self,
        rng: random.Random,
        parameters: TransportParameters = TransportParameters(),
    ) -> None:
        self._rng = rng
        self.parameters = parameters
        self.records: List[DeliveryRecord] = []
        self._recent_sends: Dict[str, Deque[float]] = {}

    def _in_burst(self, hostname: str, time: float) -> bool:
        window = self._recent_sends.setdefault(hostname, deque())
        while window and time - window[0] > self.parameters.burst_window:
            window.popleft()
        window.append(time)
        return len(window) >= self.parameters.burst_threshold

    def _sample_delay(self) -> float:
        return self._rng.uniform(self.parameters.min_delay, self.parameters.max_delay)

    def send(self, message: SyslogMessage) -> List[DeliveryRecord]:
        """Transmit one datagram; returns the records it produced.

        At most two records result: the primary delivery (or loss) and an
        optional spurious re-delivery.  Only delivered primaries can spawn a
        spurious copy — a retransmission of a message the collector never
        saw would look like an ordinary (delayed) delivery, not a repeat.
        """
        p = self.parameters
        time = message.timestamp
        loss_probability = (
            p.burst_loss_probability
            if self._in_burst(message.hostname, time)
            else p.base_loss_probability
        )
        if _is_down_message(message.body):
            loss_probability = min(1.0, loss_probability + p.down_loss_bonus)
        produced: List[DeliveryRecord] = []
        if self._rng.random() < loss_probability:
            produced.append(DeliveryRecord(message, time, arrival_time=None))
        else:
            produced.append(
                DeliveryRecord(message, time, arrival_time=time + self._sample_delay())
            )
            if self._rng.random() < p.spurious_retransmit_probability:
                extra_delay = self._rng.uniform(
                    p.spurious_min_delay, p.spurious_max_delay
                )
                # A spurious retransmission is the *router* restating the
                # link's state later, so the copy carries a fresh generation
                # timestamp — that is what makes it a repeated state-change
                # message (§4.3) rather than a duplicate log line.
                retransmit_time = time + extra_delay
                copy = dataclasses.replace(message, timestamp=retransmit_time)
                produced.append(
                    DeliveryRecord(
                        copy,
                        retransmit_time,
                        arrival_time=retransmit_time + self._sample_delay(),
                        spurious=True,
                    )
                )
        self.records.extend(produced)
        return produced

    def delivered(self) -> List[DeliveryRecord]:
        """All records that reached the collector, in arrival order."""
        arrived = [r for r in self.records if r.delivered]
        arrived.sort(key=lambda r: r.arrival_time)
        return arrived

    def loss_count(self) -> int:
        return sum(1 for r in self.records if not r.delivered)
