"""The central syslog collector.

Every router in the CENIC network logs to one central facility (§3.3); the
collector here accumulates delivered datagrams, renders them to a log file
in arrival order, and parses log files back into typed entries.  The
round trip through text is deliberate: the analysis pipeline consumes the
*log file*, not in-memory objects, so any information syslog's text format
cannot carry is genuinely unavailable to the analysis — as it was to the
paper's authors.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.faults.ledger import CHANNEL_SYSLOG, IngestReport
from repro.syslog.cisco import CiscoLogEntry, parse_cisco_body
from repro.syslog.message import (
    SyslogMessage,
    parse_syslog_line,
    try_parse_syslog_line,
)
from repro.syslog.transport import DeliveryRecord


@dataclass(frozen=True)
class CollectedEntry:
    """A typed log entry recovered from the collector's file.

    ``generated_time`` is the router's timestamp carried inside the message;
    ``entry`` is the parsed Cisco message, or ``None`` for unrelated chatter.
    """

    generated_time: float
    hostname: str
    raw_body: str
    entry: Optional[CiscoLogEntry]


@dataclass
class ParsedSegment:
    """The result of parsing one contiguous piece of a log file.

    ``latest`` is the running maximum timestamp after the segment (seeded
    from the ``after`` the segment was parsed with), ``min_parsed`` the
    smallest timestamp among the segment's parsed entries (``None`` when
    nothing parsed).  Together they let the sharded ingestion path decide
    whether a segment parsed without its predecessors' context is
    nevertheless identical to a sequential parse — see
    :func:`repro.parallel.merge.merge_parsed_segments`.
    """

    entries: List[CollectedEntry]
    latest: float
    min_parsed: Optional[float]


class SyslogCollector:
    """Accumulates delivered datagrams and round-trips them through text."""

    def __init__(self) -> None:
        self._messages: List[SyslogMessage] = []

    def receive(self, record: DeliveryRecord) -> None:
        """Accept one delivered datagram."""
        if not record.delivered:
            raise ValueError("collector cannot receive a lost datagram")
        self._messages.append(record.message)

    def receive_all(self, records: Iterable[DeliveryRecord]) -> int:
        """Accept every delivered record from an iterable; returns the count."""
        count = 0
        for record in records:
            if record.delivered:
                self.receive(record)
                count += 1
        return count

    def __len__(self) -> int:
        return len(self._messages)

    def render_log(self) -> str:
        """The log file text, one RFC 3164 line per message."""
        return "".join(message.render() + "\n" for message in self._messages)

    def write_log(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.render_log(), encoding="utf-8")

    @staticmethod
    def parse_log(
        text: str,
        *,
        strict: bool = True,
        report: Optional[IngestReport] = None,
    ) -> List[CollectedEntry]:
        """Parse log text into typed entries (unparseable bodies kept raw).

        Log lines are in arrival order, which is what resolves the RFC 3164
        year ambiguity: timestamps never carry a year, and a 13-month study
        revisits the same calendar dates, so each line's year is chosen as
        the earliest candidate consistent with the log's progress so far.

        ``strict=True`` (the default) raises
        :class:`~repro.syslog.message.SyslogParseError` on the first
        malformed line, exactly as before.  ``strict=False`` is the
        hardened path for the artifacts a crashed collector leaves
        behind: malformed lines — garbage, binary junk, mid-line
        truncations — are quarantined into ``report`` (an
        :class:`~repro.faults.ledger.IngestReport`) with their reason,
        line number, and byte offset, and parsing continues.  On a clean
        log both modes return identical entries.
        """
        segment = SyslogCollector.parse_log_segment(
            text, strict=strict, report=report
        )
        return segment.entries

    @staticmethod
    def parse_log_segment(
        text: str,
        *,
        strict: bool = True,
        report: Optional[IngestReport] = None,
        after: float = 0.0,
        line_base: int = 0,
        offset_base: int = 0,
    ) -> ParsedSegment:
        """Parse one contiguous, line-aligned piece of a log file.

        This is :meth:`parse_log` generalised to a mid-file segment:
        ``after`` seeds the year-resolution context (the latest timestamp
        parsed before the segment), and ``line_base``/``offset_base`` are
        the line count and byte length of the text preceding the segment,
        so drop-ledger records carry file-global line numbers and byte
        offsets.  With the defaults this is exactly a whole-file parse.

        The sharded ingestion path parses segments with ``after=0.0`` in
        parallel and re-parses (rarely) where the missing context could
        have mattered; :func:`repro.parallel.merge.merge_parsed_segments`
        documents the exact condition.
        """
        entries: List[CollectedEntry] = []
        latest = after
        min_parsed: Optional[float] = None
        offset = offset_base
        for line_number, line in enumerate(text.split("\n"), start=line_base + 1):
            line_offset = offset
            offset += len(line.encode("utf-8", errors="surrogatepass")) + 1
            if not line.strip():
                continue
            if strict:
                message = parse_syslog_line(line, after=latest)
            else:
                message, reason = try_parse_syslog_line(line, after=latest)
                if message is None:
                    if report is not None:
                        report.record(
                            CHANNEL_SYSLOG,
                            reason or "malformed-line",
                            offset=line_offset,
                            index=line_number,
                            sample=line,
                        )
                    continue
            latest = max(latest, message.timestamp)
            if min_parsed is None or message.timestamp < min_parsed:
                min_parsed = message.timestamp
            entries.append(
                CollectedEntry(
                    generated_time=message.timestamp,
                    hostname=message.hostname,
                    raw_body=message.body,
                    entry=parse_cisco_body(message.hostname, message.body),
                )
            )
        return ParsedSegment(entries=entries, latest=latest, min_parsed=min_parsed)

    @classmethod
    def read_log(
        cls,
        path: Union[str, Path],
        *,
        strict: bool = True,
        report: Optional[IngestReport] = None,
    ) -> List[CollectedEntry]:
        """Read and parse a log file; lenient mode survives broken UTF-8.

        In strict mode undecodable bytes raise ``UnicodeDecodeError`` as
        before; in lenient mode they decode with replacement characters,
        which makes the affected lines unparseable and therefore visible
        in the ledger rather than fatal.
        """
        data = Path(path).read_bytes()
        text = data.decode("utf-8", errors="strict" if strict else "replace")
        return cls.parse_log(text, strict=strict, report=report)
