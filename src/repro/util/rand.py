"""Deterministic randomness helpers.

The simulation derives many independent random streams (one per link, one for
the syslog loss channel, one for listener outages, ...) from a single scenario
seed.  Deriving child generators by hashing a stable label means adding a new
consumer of randomness does not perturb the streams of existing consumers,
which keeps regression expectations stable across library versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, Tuple, TypeVar

T = TypeVar("T")


def child_rng(parent_seed: int, label: str) -> random.Random:
    """Return a :class:`random.Random` derived from ``parent_seed`` and ``label``.

    The derivation is stable across Python versions and process invocations
    (unlike ``hash()``, which is salted): the label is hashed with SHA-256 and
    folded into the parent seed.

    >>> a = child_rng(42, "link:alpha")
    >>> b = child_rng(42, "link:alpha")
    >>> a.random() == b.random()
    True
    >>> c = child_rng(42, "link:beta")
    >>> a.random() == c.random()
    False
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def pareto_bounded(
    rng: random.Random,
    shape: float,
    minimum: float,
    maximum: float,
) -> float:
    """Sample from a Pareto distribution truncated to ``[minimum, maximum]``.

    Failure durations in operational networks are heavy tailed (most failures
    are seconds long, a few last days); a bounded Pareto captures that shape
    while keeping the simulation horizon finite.

    Uses inverse-CDF sampling of the truncated distribution, so the bounds are
    respected exactly rather than by rejection.
    """
    if minimum <= 0:
        raise ValueError("minimum must be positive")
    if maximum <= minimum:
        raise ValueError("maximum must exceed minimum")
    if shape <= 0:
        raise ValueError("shape must be positive")
    u = rng.random()
    lo_pow = minimum**-shape
    hi_pow = maximum**-shape
    return (lo_pow - u * (lo_pow - hi_pow)) ** (-1.0 / shape)


def weighted_choice(rng: random.Random, options: Sequence[Tuple[T, float]]) -> T:
    """Pick one option according to its (non-negative) weight.

    >>> rng = random.Random(1)
    >>> weighted_choice(rng, [("a", 0.0), ("b", 1.0)])
    'b'
    """
    if not options:
        raise ValueError("options must be non-empty")
    total = sum(weight for _, weight in options)
    if total <= 0:
        raise ValueError("total weight must be positive")
    point = rng.random() * total
    cumulative = 0.0
    for value, weight in options:
        if weight < 0:
            raise ValueError("weights must be non-negative")
        cumulative += weight
        if point < cumulative:
            return value
    return options[-1][0]
