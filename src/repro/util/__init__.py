"""Shared utilities: seeded randomness helpers and time formatting.

These helpers keep the rest of the library deterministic: every stochastic
component takes an explicit :class:`random.Random` (or a seed) and derives
child streams through :func:`child_rng`, so a scenario seed fully determines
the generated dataset.
"""

from repro.util.rand import child_rng, pareto_bounded, weighted_choice
from repro.util.timefmt import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_YEAR,
    format_duration,
    format_timestamp,
    parse_timestamp,
)

__all__ = [
    "child_rng",
    "pareto_bounded",
    "weighted_choice",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_YEAR",
    "format_duration",
    "format_timestamp",
    "parse_timestamp",
]
