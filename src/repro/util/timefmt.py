"""Simulation time conventions.

Simulation time is a float: seconds since the start of the measurement
period.  The study period in the paper runs Oct 20, 2010 – Nov 11, 2011; we
anchor timestamp rendering at that epoch so generated syslog lines look like
the originals.
"""

from __future__ import annotations

import datetime
from typing import Optional

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_YEAR = 365.0 * SECONDS_PER_DAY

#: Start of the CENIC measurement period used for timestamp rendering.
STUDY_EPOCH = datetime.datetime(2010, 10, 20, 0, 0, 0)


def format_timestamp(sim_time: float) -> str:
    """Render simulation time as a Cisco-style syslog timestamp.

    Cisco's syslog convention is ``Mmm dd HH:MM:SS.mmm`` (month name, space,
    day, time with milliseconds).

    >>> format_timestamp(0.0)
    'Oct 20 00:00:00.000'
    """
    moment = STUDY_EPOCH + datetime.timedelta(seconds=sim_time)
    millis = moment.microsecond // 1000
    return f"{moment.strftime('%b')} {moment.day:2d} {moment.strftime('%H:%M:%S')}.{millis:03d}"


#: How far back a syslog timestamp may legitimately sit behind the newest
#: one already seen in a log (transport delay and skew), when resolving the
#: year ambiguity below.
_YEAR_RESOLUTION_SLACK = 2 * 86400.0


class TimestampRangeError(ValueError):
    """A parseable timestamp with no candidate year consistent with ``after``.

    Raised when the log's progress (``after``) has advanced so far past
    every occurrence of the named calendar moment that no year assignment
    is plausible — previously this case silently resolved to the most
    recent *past* occurrence, producing timestamps that jumped backwards
    by roughly a year.
    """


def parse_timestamp(
    text: str, year_hint: int = 2010, after: Optional[float] = None
) -> float:
    """Parse a Cisco-style timestamp back to simulation time.

    Syslog timestamps carry no year — the classic RFC 3164 ambiguity.  With
    the default arguments, the earliest occurrence at or after the study
    epoch is returned.  A 13-month study revisits the same calendar dates,
    so a reader walking a log file in arrival order should pass ``after``
    (the latest time parsed so far): the earliest candidate not more than
    two days before ``after`` is chosen, which resolves "Oct 25" to 2011
    once the log has progressed that far.

    Candidate years extend from ``year_hint`` through the year ``after``
    has reached plus one, so a log spanning arbitrarily far keeps
    resolving forward.  When ``after`` has nevertheless advanced past
    every candidate (e.g. a "Feb 29" seen years after the last leap
    occurrence), :class:`TimestampRangeError` is raised rather than
    silently rolling back in time.

    >>> parse_timestamp('Oct 20 00:00:00.000')
    0.0
    >>> parse_timestamp('Jan  1 00:00:00.500')  # rolls into 2011
    6393600.5
    >>> parse_timestamp('Oct 25 00:00:00.000', after=370 * 86400.0)
    32054400.0
    """
    body, _, millis_text = text.partition(".")
    millis = int(millis_text) / 1000.0 if millis_text else 0.0

    last_year = year_hint + 2
    if after is not None:
        reached = (STUDY_EPOCH + datetime.timedelta(seconds=after)).year
        last_year = max(last_year, reached + 1)

    candidates = []
    for year in range(year_hint, last_year + 1):
        try:
            moment = datetime.datetime.strptime(
                f"{year} {body}", "%Y %b %d %H:%M:%S"
            )
        except ValueError:  # e.g. Feb 29 in a non-leap candidate year
            continue
        seconds = (moment - STUDY_EPOCH).total_seconds() + millis
        if seconds >= 0:
            candidates.append(seconds)
    if not candidates:
        raise ValueError(f"unparseable timestamp {text!r}")

    floor = (after - _YEAR_RESOLUTION_SLACK) if after is not None else 0.0
    eligible = [c for c in candidates if c >= floor]
    if not eligible:
        raise TimestampRangeError(
            f"timestamp {text!r} has no candidate year consistent with the "
            f"log's progress (latest parsed time {after!r})"
        )
    return min(eligible)


def format_duration(seconds: float) -> str:
    """Render a duration compactly for reports: ``90061.0 -> '1d 1h 1m 1s'``.

    >>> format_duration(42)
    '42s'
    >>> format_duration(90061)
    '1d 1h 1m 1s'
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    whole = int(seconds)
    days, rest = divmod(whole, 86400)
    hours, rest = divmod(rest, 3600)
    minutes, secs = divmod(rest, 60)
    parts = []
    if days:
        parts.append(f"{days}d")
    if hours:
        parts.append(f"{hours}h")
    if minutes:
        parts.append(f"{minutes}m")
    if secs or not parts:
        parts.append(f"{secs}s")
    return " ".join(parts)
