"""Point-to-point IS-IS hello (IIH) PDUs.

Hellos are how adjacencies form and stay alive; the paper's listener does
not record them (it archives LSPs), but the *simulated routers* owe their
behaviour to hello dynamics: hold-timer expiry, three-way handshake state,
and the aborted handshakes behind sub-second syslog false positives.

This module provides the wire codec for P2P IIHs (ISO 10589 §9.7) with the
RFC 5303 three-way adjacency TLV (type 240), so the adjacency FSM can be
driven from decoded packets and captures of hello exchanges can be built
and replayed in tests.

Wire layout after the common header:

====================  ======
Circuit type          1
Source ID             6
Holding time          2
PDU length            2
Local circuit ID      1
TLVs                  ...
====================  ======
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.isis.adjacency import AdjacencyState
from repro.isis.pdu import PduDecodeError, PduHeader, PduType
from repro.isis.tlv import RawTlv, Tlv, decode_tlvs, encode_tlvs
from repro.topology.addressing import system_id_from_bytes, system_id_to_bytes

#: Header length indicator for P2P IIH PDUs (8 common + 12 specific octets).
P2P_HELLO_HEADER_LENGTH = 20

#: RFC 5303 three-way adjacency TLV.
TLV_P2P_THREE_WAY = 240

#: Circuit type: level-2 only, matching the simulated domain.
CIRCUIT_TYPE_L2 = 0x02

_THREE_WAY_STATE_CODES = {
    AdjacencyState.UP: 0,
    AdjacencyState.INITIALIZING: 1,
    AdjacencyState.DOWN: 2,
}
_THREE_WAY_STATE_NAMES = {v: k for k, v in _THREE_WAY_STATE_CODES.items()}


@dataclass(frozen=True)
class ThreeWayAdjacencyTlv:
    """TLV 240: the sender's adjacency state and who it has heard.

    ``neighbor_system_id`` is ``None`` while the sender has heard nobody —
    the short (5-octet) form of the TLV.
    """

    tlv_type = TLV_P2P_THREE_WAY
    state: AdjacencyState
    extended_circuit_id: int = 0
    neighbor_system_id: Optional[str] = None
    neighbor_extended_circuit_id: int = 0

    def pack_value(self) -> bytes:
        out = bytearray([_THREE_WAY_STATE_CODES[self.state]])
        out.extend(self.extended_circuit_id.to_bytes(4, "big"))
        if self.neighbor_system_id is not None:
            out.extend(system_id_to_bytes(self.neighbor_system_id))
            out.extend(self.neighbor_extended_circuit_id.to_bytes(4, "big"))
        return bytes(out)

    @classmethod
    def unpack_value(cls, raw: bytes) -> "ThreeWayAdjacencyTlv":
        if len(raw) not in (5, 15):
            raise PduDecodeError("malformed three-way adjacency TLV")
        state_code = raw[0]
        if state_code not in _THREE_WAY_STATE_NAMES:
            raise PduDecodeError(f"unknown three-way state {state_code}")
        neighbor = None
        neighbor_circuit = 0
        if len(raw) == 15:
            neighbor = system_id_from_bytes(raw[5:11])
            neighbor_circuit = int.from_bytes(raw[11:15], "big")
        return cls(
            state=_THREE_WAY_STATE_NAMES[state_code],
            extended_circuit_id=int.from_bytes(raw[1:5], "big"),
            neighbor_system_id=neighbor,
            neighbor_extended_circuit_id=neighbor_circuit,
        )


@dataclass(frozen=True)
class PointToPointHello:
    """A decoded (or to-be-encoded) P2P IIH."""

    source_system_id: str
    holding_time: int = 30
    local_circuit_id: int = 1
    circuit_type: int = CIRCUIT_TYPE_L2
    three_way: Optional[ThreeWayAdjacencyTlv] = None
    other_tlvs: Tuple[Tlv, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0 <= self.holding_time < 2**16:
            raise ValueError("holding time out of range")
        if not 0 <= self.local_circuit_id <= 255:
            raise ValueError("local circuit id out of range")

    def pack(self) -> bytes:
        tlv_bytes = bytearray()
        if self.three_way is not None:
            value = self.three_way.pack_value()
            tlv_bytes.append(TLV_P2P_THREE_WAY)
            tlv_bytes.append(len(value))
            tlv_bytes.extend(value)
        tlv_bytes.extend(encode_tlvs(self.other_tlvs))
        pdu_length = P2P_HELLO_HEADER_LENGTH + len(tlv_bytes)
        header = PduHeader(
            pdu_type=PduType.P2P_HELLO, header_length=P2P_HELLO_HEADER_LENGTH
        ).pack()
        body = struct.pack(
            ">B6sHHB",
            self.circuit_type,
            system_id_to_bytes(self.source_system_id),
            self.holding_time,
            pdu_length,
            self.local_circuit_id,
        )
        return header + body + bytes(tlv_bytes)

    @classmethod
    def unpack(cls, raw: bytes) -> "PointToPointHello":
        header = PduHeader.unpack(raw)
        if header.pdu_type is not PduType.P2P_HELLO:
            raise PduDecodeError(f"not a P2P hello (type {header.pdu_type})")
        if len(raw) < P2P_HELLO_HEADER_LENGTH:
            raise PduDecodeError("truncated P2P hello")
        circuit_type, source, holding, pdu_length, circuit_id = struct.unpack_from(
            ">B6sHHB", raw, 8
        )
        if pdu_length != len(raw):
            raise PduDecodeError("P2P hello length field disagrees with buffer")

        three_way: Optional[ThreeWayAdjacencyTlv] = None
        other: List[Tlv] = []
        for tlv in decode_tlvs(raw[P2P_HELLO_HEADER_LENGTH:]):
            if isinstance(tlv, RawTlv) and tlv.tlv_type == TLV_P2P_THREE_WAY:
                three_way = ThreeWayAdjacencyTlv.unpack_value(tlv.value)
            else:
                other.append(tlv)
        return cls(
            source_system_id=system_id_from_bytes(source),
            holding_time=holding,
            local_circuit_id=circuit_id,
            circuit_type=circuit_type,
            three_way=three_way,
            other_tlvs=tuple(other),
        )
