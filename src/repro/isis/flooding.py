"""LSP flooding delays from origin routers to the passive listener.

IS-IS flooding is reliable (CSNP/PSNP recovery), so the listener eventually
hears every LSP; what varies is *when*.  Flooding latency matters to the
reproduction because the paper matches syslog and IS-IS transitions within a
ten-second window — the window must absorb flooding and syslog transport
skew, and the knee the paper observes at ten seconds comes from those delay
distributions.

The model charges a per-hop store-and-forward delay along the shortest path
from the origin to the listener's attachment point in the full topology,
plus jitter and the origin's LSP-generation holddown.
"""

from __future__ import annotations

from typing import Dict

import networkx as nx

from repro.topology.model import Network
from repro.util.rand import child_rng


class FloodingModel:
    """Samples LSP delivery delays from each router to the listener.

    ``generation_delay`` models the router's LSP build/holddown time before
    the flood begins (ISO 10589's minimumLSPGenerationInterval region);
    ``per_hop_delay`` is the store-and-forward cost per backbone hop; jitter
    is multiplicative and uniform.
    """

    def __init__(
        self,
        network: Network,
        listener_attachment: str,
        seed: int = 0,
        generation_delay: float = 0.05,
        per_hop_delay: float = 0.02,
        jitter_fraction: float = 0.5,
    ) -> None:
        if listener_attachment not in network.routers:
            raise ValueError(f"unknown attachment router {listener_attachment}")
        if not 0 <= jitter_fraction < 1:
            raise ValueError("jitter fraction must be in [0, 1)")
        self.listener_attachment = listener_attachment
        self.generation_delay = generation_delay
        self.per_hop_delay = per_hop_delay
        self.jitter_fraction = jitter_fraction
        self._rng = child_rng(seed, f"flooding:{listener_attachment}")
        graph = network.graph()
        self._hops: Dict[str, int] = nx.single_source_shortest_path_length(
            graph, listener_attachment
        )

    def hop_count(self, origin: str) -> int:
        """Shortest-path hop count from ``origin`` to the listener."""
        hops = self._hops.get(origin)
        if hops is None:
            raise ValueError(f"origin {origin} unreachable from listener")
        return hops

    def delivery_delay(self, origin: str) -> float:
        """Sample the origin→listener delay for one LSP flood."""
        base = self.generation_delay + self.per_hop_delay * self.hop_count(origin)
        jitter = 1.0 + self.jitter_fraction * (2.0 * self._rng.random() - 1.0)
        return base * jitter
