"""Link state packets: structure, wire codec, and the ISO Fletcher checksum.

An LSP is a router's flooded advertisement of its current adjacencies and
reachable prefixes.  The listener in this reproduction — like the paper's
PyRT deployment — archives the raw bytes of every LSP it hears and later
decodes the fields in Table 1: LSP ID, hostname, Extended IS Reachability,
Extended IP Reachability.

Wire layout (ISO 10589 §9.8, after the eight-octet common header):

====================  ======
PDU length            2
Remaining lifetime    2
LSP ID                8  (system ID + pseudonode + fragment)
Sequence number       4
Checksum              2  (ISO 8473 Fletcher, LSP ID through end)
P/ATT/OL/IS-type      1
TLVs                  ...
====================  ======
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.isis.pdu import LSP_HEADER_LENGTH, PduDecodeError, PduHeader, PduType
from repro.isis.tlv import (
    DynamicHostnameTlv,
    ExtendedIpReachabilityTlv,
    ExtendedIsReachabilityTlv,
    IpPrefix,
    IsNeighbor,
    Tlv,
    decode_tlvs,
    encode_tlvs,
)
from repro.topology.addressing import system_id_from_bytes, system_id_to_bytes

#: IS type bits: level-2 intermediate system.
IS_TYPE_LEVEL_2 = 0x03

#: Offset of the checksum field, measured from the start of the LSP ID
#: (the checksum covers LSP ID through the end of the PDU).
_CHECKSUM_OFFSET_FROM_LSP_ID = 12


class LspDecodeError(PduDecodeError):
    """Raised when LSP bytes are malformed or fail the checksum."""


def iso_checksum(data: bytes, checksum_offset: int) -> int:
    """Compute the ISO 8473 Fletcher checksum for ``data``.

    ``data`` must contain zeros at the two checksum positions; the returned
    16-bit value, when stored there, makes the whole block verify.
    """
    c0 = 0
    c1 = 0
    for octet in data:
        c0 = (c0 + octet) % 255
        c1 = (c1 + c0) % 255
    x = ((len(data) - checksum_offset - 1) * c0 - c1) % 255
    if x <= 0:
        x += 255
    y = 510 - c0 - x
    if y > 255:
        y -= 255
    return (x << 8) | y


def iso_checksum_verify(data: bytes) -> bool:
    """True when a block containing its checksum verifies (c0 == c1 == 0)."""
    c0 = 0
    c1 = 0
    for octet in data:
        c0 = (c0 + octet) % 255
        c1 = (c1 + c0) % 255
    return c0 == 0 and c1 == 0


@dataclass(frozen=True, order=True)
class LspId:
    """The eight-octet LSP identifier: system ID, pseudonode, fragment."""

    system_id: str
    pseudonode: int = 0
    fragment: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.pseudonode <= 255:
            raise ValueError("pseudonode octet out of range")
        if not 0 <= self.fragment <= 255:
            raise ValueError("fragment octet out of range")

    def pack(self) -> bytes:
        return system_id_to_bytes(self.system_id) + bytes(
            [self.pseudonode, self.fragment]
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "LspId":
        if len(raw) != 8:
            raise LspDecodeError("LSP ID must be eight octets")
        return cls(
            system_id=system_id_from_bytes(raw[:6]),
            pseudonode=raw[6],
            fragment=raw[7],
        )

    def __str__(self) -> str:
        return f"{self.system_id}.{self.pseudonode:02x}-{self.fragment:02x}"


@dataclass(frozen=True)
class LinkStatePacket:
    """A decoded (or to-be-encoded) level-2 LSP."""

    lsp_id: LspId
    sequence_number: int
    remaining_lifetime: int = 1199
    tlvs: Tuple[Tlv, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0 < self.sequence_number < 2**32:
            raise ValueError("sequence number must be a positive 32-bit value")
        if not 0 <= self.remaining_lifetime < 2**16:
            raise ValueError("remaining lifetime out of range")

    # ------------------------------------------------------------ accessors
    @property
    def hostname(self) -> Optional[str]:
        """The Dynamic Hostname advertisement, if present."""
        for tlv in self.tlvs:
            if isinstance(tlv, DynamicHostnameTlv):
                return tlv.hostname
        return None

    @property
    def is_neighbors(self) -> Tuple[IsNeighbor, ...]:
        """All Extended IS Reachability entries across TLV instances."""
        entries: List[IsNeighbor] = []
        for tlv in self.tlvs:
            if isinstance(tlv, ExtendedIsReachabilityTlv):
                entries.extend(tlv.neighbors)
        return tuple(entries)

    @property
    def ip_prefixes(self) -> Tuple[IpPrefix, ...]:
        """All Extended IP Reachability entries across TLV instances."""
        entries: List[IpPrefix] = []
        for tlv in self.tlvs:
            if isinstance(tlv, ExtendedIpReachabilityTlv):
                entries.extend(tlv.prefixes)
        return tuple(entries)

    def is_purge(self) -> bool:
        """A zero-lifetime LSP purges the origin's advertisement."""
        return self.remaining_lifetime == 0

    def with_sequence(self, sequence_number: int) -> "LinkStatePacket":
        return replace(self, sequence_number=sequence_number)

    # ---------------------------------------------------------------- codec
    def pack(self) -> bytes:
        """Encode to wire bytes with a freshly computed checksum."""
        tlv_bytes = encode_tlvs(self.tlvs)
        pdu_length = LSP_HEADER_LENGTH + len(tlv_bytes)
        header = PduHeader(pdu_type=PduType.L2_LSP).pack()
        body = struct.pack(">HH", pdu_length, self.remaining_lifetime)
        checked_region = bytearray()
        checked_region.extend(self.lsp_id.pack())
        checked_region.extend(struct.pack(">IH", self.sequence_number, 0))
        checked_region.append(IS_TYPE_LEVEL_2)
        checked_region.extend(tlv_bytes)
        checksum = iso_checksum(bytes(checked_region), _CHECKSUM_OFFSET_FROM_LSP_ID)
        struct.pack_into(">H", checked_region, 12, checksum)
        return header + body + bytes(checked_region)

    @classmethod
    def unpack(cls, raw: bytes, verify_checksum: bool = True) -> "LinkStatePacket":
        """Decode wire bytes; validates framing and (optionally) the checksum."""
        header = PduHeader.unpack(raw)
        if header.pdu_type not in (PduType.L1_LSP, PduType.L2_LSP):
            raise LspDecodeError(f"not an LSP (PDU type {header.pdu_type})")
        if len(raw) < LSP_HEADER_LENGTH:
            raise LspDecodeError("truncated LSP header")
        pdu_length, remaining_lifetime = struct.unpack_from(">HH", raw, 8)
        if pdu_length != len(raw):
            raise LspDecodeError(
                f"PDU length field {pdu_length} disagrees with buffer {len(raw)}"
            )
        lsp_id = LspId.unpack(raw[12:20])
        sequence_number, checksum = struct.unpack_from(">IH", raw, 20)
        # A purge (zero lifetime) legitimately carries a stale checksum.
        if verify_checksum and remaining_lifetime != 0:
            if not iso_checksum_verify(raw[12:]):
                raise LspDecodeError(f"checksum failure on {lsp_id}")
        tlvs = decode_tlvs(raw[LSP_HEADER_LENGTH:])
        return cls(
            lsp_id=lsp_id,
            sequence_number=sequence_number,
            remaining_lifetime=remaining_lifetime,
            tlvs=tuple(tlvs),
        )
