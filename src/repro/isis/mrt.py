"""PyRT-style binary dump files for LSP capture streams.

The paper's listener archived raw LSPs to disk for thirteen months; this
module provides the equivalent archive format so simulated captures can be
written once and re-analysed many times (and so the analysis pipeline reads
bytes off disk rather than objects out of memory).

Record layout (all big-endian), after a fixed eight-byte magic header:

======  =====================================
8       IEEE-754 double: capture timestamp
4       uint32: payload length ``n``
``n``   raw LSP bytes as heard on the wire
======  =====================================
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterator, List, Optional, Tuple, Union

from repro.faults.ledger import CHANNEL_ISIS, IngestReport

MAGIC = b"RPRTDMP1"
_RECORD_HEADER = struct.Struct(">dI")

#: Refuse absurd record lengths so a corrupt file fails fast instead of
#: attempting a multi-gigabyte read.
_MAX_RECORD = 1 << 20


class MrtFormatError(ValueError):
    """Raised when a dump file is corrupt or not a dump file at all."""


class MrtDumpWriter:
    """Appends timestamped LSP byte records to a dump file."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._stream.write(MAGIC)
        self._count = 0

    @classmethod
    def open(cls, path: Union[str, Path]) -> "MrtDumpWriter":
        return cls(open(path, "wb"))

    def write(self, time: float, payload: bytes) -> None:
        if len(payload) > _MAX_RECORD:
            raise MrtFormatError("record exceeds maximum payload size")
        self._stream.write(_RECORD_HEADER.pack(time, len(payload)))
        self._stream.write(payload)
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "MrtDumpWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MrtDumpReader:
    """Iterates ``(time, payload)`` records out of a dump file.

    ``strict=True`` (the default) raises :class:`MrtFormatError` on any
    corruption, with the record index and byte offset in the message —
    and closes the underlying stream first, so a dump that fails halfway
    through iteration never leaks its file handle.

    ``strict=False`` is salvage mode, for the archive a crashed listener
    leaves behind: the valid prefix is yielded, and the first structural
    error (truncated header/payload, absurd length — the file cannot be
    re-synchronised past any of these) ends iteration cleanly after
    recording the cut into ``report`` (an
    :class:`~repro.faults.ledger.IngestReport`) with its reason, record
    index, and byte offset.
    """

    def __init__(
        self,
        stream: BinaryIO,
        *,
        strict: bool = True,
        report: Optional[IngestReport] = None,
    ) -> None:
        self._stream = stream
        self._strict = strict
        self._report = report
        self._bad_magic = False
        magic = stream.read(len(MAGIC))
        if magic != MAGIC:
            if strict:
                stream.close()
                raise MrtFormatError(
                    f"not a repro LSP dump file (bad magic at byte offset 0: "
                    f"{magic[:8]!r})"
                )
            self._bad_magic = True
            if report is not None:
                report.record(
                    CHANNEL_ISIS,
                    "bad-magic",
                    offset=0,
                    index=0,
                    sample=magic[:8],
                )

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        *,
        strict: bool = True,
        report: Optional[IngestReport] = None,
    ) -> "MrtDumpReader":
        return cls(open(path, "rb"), strict=strict, report=report)

    def _fail(
        self, reason: str, detail: str, index: int, offset: int, sample: bytes
    ) -> None:
        """Strict: close and raise with context.  Lenient: record the cut."""
        if self._strict:
            self._stream.close()
            raise MrtFormatError(
                f"record {index} at byte offset {offset}: {detail}"
            )
        if self._report is not None:
            self._report.record(
                CHANNEL_ISIS, reason, offset=offset, index=index, sample=sample
            )

    def __iter__(self) -> Iterator[Tuple[float, bytes]]:
        if self._bad_magic:
            return
        index = 0
        offset = len(MAGIC)
        while True:
            header = self._stream.read(_RECORD_HEADER.size)
            if not header:
                return
            if len(header) < _RECORD_HEADER.size:
                self._fail(
                    "truncated-header",
                    f"truncated record header ({len(header)} of "
                    f"{_RECORD_HEADER.size} bytes)",
                    index,
                    offset,
                    header,
                )
                return
            time, length = _RECORD_HEADER.unpack(header)
            if length > _MAX_RECORD:
                self._fail(
                    "oversize-record",
                    f"record length {length} exceeds maximum payload size "
                    f"{_MAX_RECORD} (corrupt length field)",
                    index,
                    offset,
                    header,
                )
                return
            payload = self._stream.read(length)
            if len(payload) < length:
                self._fail(
                    "truncated-payload",
                    f"truncated record payload ({len(payload)} of "
                    f"{length} bytes)",
                    index,
                    offset,
                    payload[:16],
                )
                return
            yield time, payload
            index += 1
            offset += _RECORD_HEADER.size + length

    def read_all(self) -> List[Tuple[float, bytes]]:
        return list(self)

    def record_offsets(self) -> List[int]:
        """Byte offset of every well-formed record, by scanning headers.

        This is the dump format's substitute for an index: record ``i``
        starts at ``record_offsets()[i]``, which is what lets a sharded
        reader hand each worker a ``(start_offset, start_index, count)``
        range instead of the whole file.  The scan validates structure but
        does no decoding, so it is far cheaper than a full read.
        Corruption handling follows the reader's mode: strict raises,
        salvage stops at the first structural error.
        """
        if self._bad_magic:
            return []
        offsets: List[int] = []
        index = 0
        offset = len(MAGIC)
        while True:
            header = self._stream.read(_RECORD_HEADER.size)
            if not header:
                return offsets
            if len(header) < _RECORD_HEADER.size:
                self._fail(
                    "truncated-header",
                    f"truncated record header ({len(header)} of "
                    f"{_RECORD_HEADER.size} bytes)",
                    index,
                    offset,
                    header,
                )
                return offsets
            _, length = _RECORD_HEADER.unpack(header)
            if length > _MAX_RECORD:
                self._fail(
                    "oversize-record",
                    f"record length {length} exceeds maximum payload size "
                    f"{_MAX_RECORD} (corrupt length field)",
                    index,
                    offset,
                    header,
                )
                return offsets
            payload = self._stream.read(length)
            if len(payload) < length:
                self._fail(
                    "truncated-payload",
                    f"truncated record payload ({len(payload)} of "
                    f"{length} bytes)",
                    index,
                    offset,
                    payload[:16],
                )
                return offsets
            offsets.append(offset)
            index += 1
            offset += _RECORD_HEADER.size + length

    @classmethod
    def read_range(
        cls,
        path: Union[str, Path],
        start_offset: int,
        count: int,
    ) -> List[Tuple[float, bytes]]:
        """Read ``count`` records starting at a known byte offset.

        ``start_offset`` must come from :meth:`record_offsets` (or be
        ``len(MAGIC)`` for record 0): the format is not self-synchronising,
        so seeking anywhere else reads garbage.  This is the worker half
        of file-based sharded decoding — each worker opens the archive
        itself and reads only its range, so the parent never ships record
        payloads through the pool.
        """
        records: List[Tuple[float, bytes]] = []
        with open(path, "rb") as stream:
            stream.seek(start_offset)
            for index in range(count):
                header = stream.read(_RECORD_HEADER.size)
                if len(header) < _RECORD_HEADER.size:
                    raise MrtFormatError(
                        f"range read past end of archive at byte offset "
                        f"{start_offset} + {index} record(s)"
                    )
                time, length = _RECORD_HEADER.unpack(header)
                if length > _MAX_RECORD:
                    raise MrtFormatError(
                        f"record length {length} exceeds maximum payload "
                        f"size {_MAX_RECORD} (bad start offset?)"
                    )
                payload = stream.read(length)
                if len(payload) < length:
                    raise MrtFormatError(
                        f"truncated record payload ({len(payload)} of "
                        f"{length} bytes) in range read"
                    )
                records.append((time, payload))
        return records

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "MrtDumpReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
