"""PyRT-style binary dump files for LSP capture streams.

The paper's listener archived raw LSPs to disk for thirteen months; this
module provides the equivalent archive format so simulated captures can be
written once and re-analysed many times (and so the analysis pipeline reads
bytes off disk rather than objects out of memory).

Record layout (all big-endian), after a fixed eight-byte magic header:

======  =====================================
8       IEEE-754 double: capture timestamp
4       uint32: payload length ``n``
``n``   raw LSP bytes as heard on the wire
======  =====================================
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterator, List, Tuple, Union

MAGIC = b"RPRTDMP1"
_RECORD_HEADER = struct.Struct(">dI")

#: Refuse absurd record lengths so a corrupt file fails fast instead of
#: attempting a multi-gigabyte read.
_MAX_RECORD = 1 << 20


class MrtFormatError(ValueError):
    """Raised when a dump file is corrupt or not a dump file at all."""


class MrtDumpWriter:
    """Appends timestamped LSP byte records to a dump file."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._stream.write(MAGIC)
        self._count = 0

    @classmethod
    def open(cls, path: Union[str, Path]) -> "MrtDumpWriter":
        return cls(open(path, "wb"))

    def write(self, time: float, payload: bytes) -> None:
        if len(payload) > _MAX_RECORD:
            raise MrtFormatError("record exceeds maximum payload size")
        self._stream.write(_RECORD_HEADER.pack(time, len(payload)))
        self._stream.write(payload)
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "MrtDumpWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MrtDumpReader:
    """Iterates ``(time, payload)`` records out of a dump file."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        magic = stream.read(len(MAGIC))
        if magic != MAGIC:
            raise MrtFormatError("not a repro LSP dump file")

    @classmethod
    def open(cls, path: Union[str, Path]) -> "MrtDumpReader":
        return cls(open(path, "rb"))

    def __iter__(self) -> Iterator[Tuple[float, bytes]]:
        while True:
            header = self._stream.read(_RECORD_HEADER.size)
            if not header:
                return
            if len(header) < _RECORD_HEADER.size:
                raise MrtFormatError("truncated record header")
            time, length = _RECORD_HEADER.unpack(header)
            if length > _MAX_RECORD:
                raise MrtFormatError("record exceeds maximum payload size")
            payload = self._stream.read(length)
            if len(payload) < length:
                raise MrtFormatError("truncated record payload")
            yield time, payload

    def read_all(self) -> List[Tuple[float, bytes]]:
        return list(self)

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "MrtDumpReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
