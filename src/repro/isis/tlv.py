"""Binary TLV codec for IS-IS link state packets.

IS-IS encodes everything after the fixed LSP header as a sequence of
type/length/value fields (ISO 10589 §9.x, RFC 5305).  The paper's listener
consumes four of them (Table 1): LSP ID (part of the fixed header), Dynamic
Hostname, Extended IS Reachability, and Extended IP Reachability.  We also
implement Area Addresses and Protocols Supported so generated LSPs resemble
real ones, and a :class:`RawTlv` passthrough so unknown types survive a
decode/encode round trip — the behaviour a real listener needs when routers
advertise TLVs it does not understand.

All value classes are frozen dataclasses with ``pack``/``unpack`` pairs; the
module-level :func:`encode_tlvs` / :func:`decode_tlvs` handle framing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import ClassVar, List, Sequence, Tuple, Type, Union

from repro.topology.addressing import (
    format_ipv4,
    system_id_from_bytes,
    system_id_to_bytes,
)

TLV_AREA_ADDRESSES = 1
TLV_PROTOCOLS_SUPPORTED = 129
TLV_EXTENDED_IS_REACHABILITY = 22
TLV_EXTENDED_IP_REACHABILITY = 135
TLV_DYNAMIC_HOSTNAME = 137

#: NLPID value for IPv4, the only protocol our simulated domain routes.
NLPID_IPV4 = 0xCC


class TlvDecodeError(ValueError):
    """Raised when a TLV's value bytes violate its wire format."""


@dataclass(frozen=True)
class IsNeighbor:
    """One Extended IS Reachability entry: a neighbor and its metric.

    ``pseudonode`` is the LAN pseudonode octet; zero on the point-to-point
    links that make up the CENIC backbone.  Note a single entry covers a
    *device pair*: parallel physical links between the same routers collapse
    into one IS reachability entry, which is exactly why the paper must omit
    multi-link adjacencies from IS-reachability analysis (§3.4).
    """

    system_id: str
    metric: int
    pseudonode: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.metric < 2**24:
            raise ValueError("wide metric must fit in three octets")
        if not 0 <= self.pseudonode <= 255:
            raise ValueError("pseudonode octet out of range")

    def pack(self) -> bytes:
        return (
            system_id_to_bytes(self.system_id)
            + bytes([self.pseudonode])
            + self.metric.to_bytes(3, "big")
            + b"\x00"  # no sub-TLVs
        )

    @classmethod
    def unpack(cls, raw: bytes, offset: int) -> Tuple["IsNeighbor", int]:
        if offset + 11 > len(raw):
            raise TlvDecodeError("truncated IS reachability entry")
        system_id = system_id_from_bytes(raw[offset : offset + 6])
        pseudonode = raw[offset + 6]
        metric = int.from_bytes(raw[offset + 7 : offset + 10], "big")
        sub_len = raw[offset + 10]
        end = offset + 11 + sub_len
        if end > len(raw):
            raise TlvDecodeError("IS reachability sub-TLVs overrun value")
        return cls(system_id=system_id, metric=metric, pseudonode=pseudonode), end


@dataclass(frozen=True)
class IpPrefix:
    """One Extended IP Reachability entry: a prefix and its metric.

    CENIC numbers each point-to-point link from its own /31, so these entries
    identify individual physical links — unlike IS reachability (§3.4).
    """

    prefix: int  # network address as an integer
    prefix_length: int
    metric: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_length <= 32:
            raise ValueError("prefix length out of range")
        if not 0 <= self.prefix < 2**32:
            raise ValueError("prefix out of range")
        if not 0 <= self.metric < 2**32:
            raise ValueError("metric must fit in four octets")
        host_bits = 32 - self.prefix_length
        if host_bits and self.prefix & ((1 << host_bits) - 1):
            raise ValueError("prefix has host bits set")

    @property
    def text(self) -> str:
        return f"{format_ipv4(self.prefix)}/{self.prefix_length}"

    def pack(self) -> bytes:
        octets = (self.prefix_length + 7) // 8
        control = self.prefix_length & 0x3F  # no up/down bit, no sub-TLVs
        prefix_bytes = self.prefix.to_bytes(4, "big")[:octets]
        return struct.pack(">IB", self.metric, control) + prefix_bytes

    @classmethod
    def unpack(cls, raw: bytes, offset: int) -> Tuple["IpPrefix", int]:
        if offset + 5 > len(raw):
            raise TlvDecodeError("truncated IP reachability entry")
        metric, control = struct.unpack_from(">IB", raw, offset)
        prefix_length = control & 0x3F
        if prefix_length > 32:
            raise TlvDecodeError("prefix length exceeds 32")
        octets = (prefix_length + 7) // 8
        end = offset + 5 + octets
        if control & 0x40:
            raise TlvDecodeError("sub-TLVs on IP reachability not supported")
        if end > len(raw):
            raise TlvDecodeError("IP reachability prefix overruns value")
        prefix_bytes = raw[offset + 5 : end] + b"\x00" * (4 - octets)
        prefix = int.from_bytes(prefix_bytes, "big")
        return cls(prefix=prefix, prefix_length=prefix_length, metric=metric), end


@dataclass(frozen=True)
class ExtendedIsReachabilityTlv:
    """TLV 22 — the router's IS-IS adjacencies with wide metrics."""

    tlv_type: ClassVar[int] = TLV_EXTENDED_IS_REACHABILITY
    neighbors: Tuple[IsNeighbor, ...]

    def pack_value(self) -> bytes:
        return b"".join(neighbor.pack() for neighbor in self.neighbors)

    @classmethod
    def unpack_value(cls, raw: bytes) -> "ExtendedIsReachabilityTlv":
        neighbors: List[IsNeighbor] = []
        offset = 0
        while offset < len(raw):
            neighbor, offset = IsNeighbor.unpack(raw, offset)
            neighbors.append(neighbor)
        return cls(neighbors=tuple(neighbors))


@dataclass(frozen=True)
class ExtendedIpReachabilityTlv:
    """TLV 135 — directly reachable IP prefixes with wide metrics."""

    tlv_type: ClassVar[int] = TLV_EXTENDED_IP_REACHABILITY
    prefixes: Tuple[IpPrefix, ...]

    def pack_value(self) -> bytes:
        return b"".join(prefix.pack() for prefix in self.prefixes)

    @classmethod
    def unpack_value(cls, raw: bytes) -> "ExtendedIpReachabilityTlv":
        prefixes: List[IpPrefix] = []
        offset = 0
        while offset < len(raw):
            prefix, offset = IpPrefix.unpack(raw, offset)
            prefixes.append(prefix)
        return cls(prefixes=tuple(prefixes))


@dataclass(frozen=True)
class DynamicHostnameTlv:
    """TLV 137 — the human-readable router name (RFC 5301).

    This is the field that lets the paper map OSI system IDs back to the
    hostnames appearing in syslog.
    """

    tlv_type: ClassVar[int] = TLV_DYNAMIC_HOSTNAME
    hostname: str

    def pack_value(self) -> bytes:
        encoded = self.hostname.encode("ascii")
        if not 1 <= len(encoded) <= 255:
            raise ValueError("hostname must encode to 1-255 octets")
        return encoded

    @classmethod
    def unpack_value(cls, raw: bytes) -> "DynamicHostnameTlv":
        try:
            return cls(hostname=raw.decode("ascii"))
        except UnicodeDecodeError as exc:
            raise TlvDecodeError("hostname is not ASCII") from exc


@dataclass(frozen=True)
class AreaAddressesTlv:
    """TLV 1 — the areas this IS belongs to, as raw address octets."""

    tlv_type: ClassVar[int] = TLV_AREA_ADDRESSES
    areas: Tuple[bytes, ...]

    def pack_value(self) -> bytes:
        parts = []
        for area in self.areas:
            if not 1 <= len(area) <= 13:
                raise ValueError("area address must be 1-13 octets")
            parts.append(bytes([len(area)]) + area)
        return b"".join(parts)

    @classmethod
    def unpack_value(cls, raw: bytes) -> "AreaAddressesTlv":
        areas: List[bytes] = []
        offset = 0
        while offset < len(raw):
            length = raw[offset]
            end = offset + 1 + length
            if length == 0 or end > len(raw):
                raise TlvDecodeError("malformed area address list")
            areas.append(raw[offset + 1 : end])
            offset = end
        return cls(areas=tuple(areas))


@dataclass(frozen=True)
class ProtocolsSupportedTlv:
    """TLV 129 — NLPIDs of the routed protocols (just IPv4 here)."""

    tlv_type: ClassVar[int] = TLV_PROTOCOLS_SUPPORTED
    nlpids: Tuple[int, ...]

    def pack_value(self) -> bytes:
        return bytes(self.nlpids)

    @classmethod
    def unpack_value(cls, raw: bytes) -> "ProtocolsSupportedTlv":
        return cls(nlpids=tuple(raw))


@dataclass(frozen=True)
class RawTlv:
    """An unrecognised TLV carried through decode/encode untouched."""

    tlv_type: int
    value: bytes

    def pack_value(self) -> bytes:
        return self.value


Tlv = Union[
    ExtendedIsReachabilityTlv,
    ExtendedIpReachabilityTlv,
    DynamicHostnameTlv,
    AreaAddressesTlv,
    ProtocolsSupportedTlv,
    RawTlv,
]

_DECODERS: dict = {
    TLV_EXTENDED_IS_REACHABILITY: ExtendedIsReachabilityTlv,
    TLV_EXTENDED_IP_REACHABILITY: ExtendedIpReachabilityTlv,
    TLV_DYNAMIC_HOSTNAME: DynamicHostnameTlv,
    TLV_AREA_ADDRESSES: AreaAddressesTlv,
    TLV_PROTOCOLS_SUPPORTED: ProtocolsSupportedTlv,
}


def encode_tlvs(tlvs: Sequence[Tlv]) -> bytes:
    """Frame a TLV sequence as wire bytes (type, length, value triples)."""
    out = bytearray()
    for tlv in tlvs:
        value = tlv.pack_value()
        if len(value) > 255:
            raise ValueError(
                f"TLV {tlv.tlv_type} value of {len(value)} octets exceeds 255; "
                "split entries across multiple TLVs"
            )
        out.append(tlv.tlv_type)
        out.append(len(value))
        out.extend(value)
    return bytes(out)


def decode_tlvs(raw: bytes) -> List[Tlv]:
    """Parse wire bytes into typed TLVs; unknown types become :class:`RawTlv`."""
    tlvs: List[Tlv] = []
    offset = 0
    while offset < len(raw):
        if offset + 2 > len(raw):
            raise TlvDecodeError("truncated TLV header")
        tlv_type = raw[offset]
        length = raw[offset + 1]
        end = offset + 2 + length
        if end > len(raw):
            raise TlvDecodeError(f"TLV {tlv_type} value overruns buffer")
        value = raw[offset + 2 : end]
        decoder: Type = _DECODERS.get(tlv_type)
        if decoder is None:
            tlvs.append(RawTlv(tlv_type=tlv_type, value=value))
        else:
            tlvs.append(decoder.unpack_value(value))
        offset = end
    return tlvs
