"""The passive IS-IS listener — this reproduction's PyRT.

The listener participates in the IS-IS domain only to hear floods.  For
every LSP it: (1) checks the LSDB acceptance rule so duplicate floods are
ignored; (2) on first contact with an origin, records its hostname from the
Dynamic Hostname TLV and its initial IS/IP reachability; (3) on subsequent
LSPs, diffs the advertised Extended IS Reachability and Extended IP
Reachability against the previous advertisement and emits a
:class:`ReachabilityChange` for every entry gained or lost — exactly the
procedure of §3.2.

Resolution of changes onto *links* (using the mined config inventory) is
deliberately not done here; that is analysis-side work performed by
:mod:`repro.core.extract_isis`, mirroring the paper's separation between
data collection and failure reconstruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple, Union

from repro.isis.database import LinkStateDatabase
from repro.isis.lsp import LinkStatePacket


class ReachabilityKind(enum.Enum):
    """Which LSP field the change was observed in (§3.4's IS-vs-IP choice)."""

    IS = "is"
    IP = "ip"


@dataclass(frozen=True)
class ReachabilityChange:
    """One reachability entry appearing or disappearing from an origin's LSP.

    ``target`` is the neighbor system ID for IS changes, or the
    ``(prefix, prefix_length)`` pair for IP changes.  ``direction`` uses the
    paper's vocabulary: ``"down"`` for a withdrawal, ``"up"`` for a
    (re-)advertisement.
    """

    time: float
    origin_system_id: str
    kind: ReachabilityKind
    direction: str
    target: Union[str, Tuple[int, int]]

    def __post_init__(self) -> None:
        if self.direction not in ("up", "down"):
            raise ValueError(f"bad direction {self.direction!r}")


@dataclass
class _OriginState:
    is_neighbors: FrozenSet[str]
    ip_prefixes: FrozenSet[Tuple[int, int]]


class IsisListener:
    """Consumes timestamped LSPs, produces reachability change events."""

    def __init__(self) -> None:
        self._database = LinkStateDatabase()
        self._origin_state: Dict[str, _OriginState] = {}
        self.hostnames: Dict[str, str] = {}
        self.changes: List[ReachabilityChange] = []
        #: LSPs rejected by the LSDB (duplicates / stale floods).
        self.rejected_count = 0

    @property
    def database(self) -> LinkStateDatabase:
        return self._database

    def observe_bytes(self, time: float, raw: bytes) -> List[ReachabilityChange]:
        """Decode a wire LSP and process it (checksum verified)."""
        return self.observe(time, LinkStatePacket.unpack(raw))

    def observe(self, time: float, lsp: LinkStatePacket) -> List[ReachabilityChange]:
        """Process one LSP; returns (and records) the changes it implies."""
        if not self._database.consider(lsp, time):
            self.rejected_count += 1
            return []

        origin = lsp.lsp_id.system_id
        if lsp.hostname is not None:
            self.hostnames[origin] = lsp.hostname

        if lsp.is_purge():
            new_is: FrozenSet[str] = frozenset()
            new_ip: FrozenSet[Tuple[int, int]] = frozenset()
        else:
            # Aggregate over all stored fragments of this origin so a
            # multi-fragment router is diffed on its full advertisement.
            neighbors: Set[str] = set()
            prefixes: Set[Tuple[int, int]] = set()
            for fragment in self._database.lsps_of(origin):
                for neighbor in fragment.is_neighbors:
                    neighbors.add(neighbor.system_id)
                for prefix in fragment.ip_prefixes:
                    prefixes.add((prefix.prefix, prefix.prefix_length))
            new_is = frozenset(neighbors)
            new_ip = frozenset(prefixes)

        previous = self._origin_state.get(origin)
        emitted: List[ReachabilityChange] = []
        if previous is None:
            # First LSP from this origin: record state, emit nothing —
            # the paper's listener likewise seeds its view silently (§3.2).
            self._origin_state[origin] = _OriginState(new_is, new_ip)
            return emitted

        for neighbor_id in sorted(previous.is_neighbors - new_is):
            emitted.append(
                ReachabilityChange(time, origin, ReachabilityKind.IS, "down", neighbor_id)
            )
        for neighbor_id in sorted(new_is - previous.is_neighbors):
            emitted.append(
                ReachabilityChange(time, origin, ReachabilityKind.IS, "up", neighbor_id)
            )
        for prefix in sorted(previous.ip_prefixes - new_ip):
            emitted.append(
                ReachabilityChange(time, origin, ReachabilityKind.IP, "down", prefix)
            )
        for prefix in sorted(new_ip - previous.ip_prefixes):
            emitted.append(
                ReachabilityChange(time, origin, ReachabilityKind.IP, "up", prefix)
            )

        self._origin_state[origin] = _OriginState(new_is, new_ip)
        self.changes.extend(emitted)
        return emitted

    def current_is_neighbors(self, origin: str) -> FrozenSet[str]:
        """The origin's currently advertised IS neighbors (empty if unseen)."""
        state = self._origin_state.get(origin)
        return state.is_neighbors if state else frozenset()

    def current_ip_prefixes(self, origin: str) -> FrozenSet[Tuple[int, int]]:
        """The origin's currently advertised prefixes (empty if unseen)."""
        state = self._origin_state.get(origin)
        return state.ip_prefixes if state else frozenset()
