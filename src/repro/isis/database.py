"""Link-state database with ISO 10589 acceptance rules.

The listener keeps an LSDB so duplicate and out-of-order floods (which a
passive tap hears constantly — the paper's listener logged 11 million LSP
updates for ~23 thousand real transitions) do not masquerade as state
changes: only an LSP with a *newer* sequence number than the stored copy is
accepted and handed to the reachability differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.isis.lsp import LinkStatePacket, LspId


@dataclass(frozen=True)
class StoredLsp:
    """An accepted LSP and when it was heard."""

    lsp: LinkStatePacket
    arrival_time: float


class LinkStateDatabase:
    """Newest-LSP-wins store keyed by LSP ID.

    Besides the flat store, a per-origin index maps each system ID to its
    stored fragments: :meth:`lsps_of` runs once per *accepted* LSP on the
    listener's hot path (11 million updates in the paper's archive), so it
    must not touch — let alone sort — the other origins' entries.
    """

    def __init__(self) -> None:
        self._entries: Dict[LspId, StoredLsp] = {}
        self._by_origin: Dict[str, Dict[LspId, StoredLsp]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lsp_id: LspId) -> bool:
        return lsp_id in self._entries

    def get(self, lsp_id: LspId) -> Optional[StoredLsp]:
        return self._entries.get(lsp_id)

    def consider(self, lsp: LinkStatePacket, arrival_time: float) -> bool:
        """Apply the acceptance rule; True when the LSP replaced the store.

        Newer means a strictly higher sequence number, or a purge
        (zero remaining lifetime) of the currently stored sequence number.
        Duplicates and stale floods are rejected.
        """
        stored = self._entries.get(lsp.lsp_id)
        if stored is not None:
            if lsp.sequence_number < stored.lsp.sequence_number:
                return False
            if lsp.sequence_number == stored.lsp.sequence_number:
                is_fresher_purge = lsp.is_purge() and not stored.lsp.is_purge()
                if not is_fresher_purge:
                    return False
        entry = StoredLsp(lsp=lsp, arrival_time=arrival_time)
        self._entries[lsp.lsp_id] = entry
        self._by_origin.setdefault(lsp.lsp_id.system_id, {})[lsp.lsp_id] = entry
        return True

    def expire(self, now: float) -> List[LspId]:
        """Drop entries whose remaining lifetime has elapsed since arrival.

        Returns the expired LSP IDs.  A purge entry is retained (zero
        lifetime is the purge marker, not an age) until explicitly removed.
        """
        expired = [
            lsp_id
            for lsp_id, stored in self._entries.items()
            if not stored.lsp.is_purge()
            and now - stored.arrival_time >= stored.lsp.remaining_lifetime
        ]
        for lsp_id in expired:
            self.remove(lsp_id)
        return expired

    def remove(self, lsp_id: LspId) -> None:
        self._entries.pop(lsp_id, None)
        fragments = self._by_origin.get(lsp_id.system_id)
        if fragments is not None:
            fragments.pop(lsp_id, None)
            if not fragments:
                del self._by_origin[lsp_id.system_id]

    def origins(self) -> List[str]:
        """System IDs with at least one stored non-purge LSP."""
        return sorted(
            {
                lsp_id.system_id
                for lsp_id, stored in self._entries.items()
                if not stored.lsp.is_purge()
            }
        )

    def lsps_of(self, system_id: str) -> List[LinkStatePacket]:
        """All stored fragments originated by ``system_id``, fragment order."""
        fragments = self._by_origin.get(system_id)
        if not fragments:
            return []
        return [fragments[lsp_id].lsp for lsp_id in sorted(fragments)]

    def __iter__(self) -> Iterator[StoredLsp]:
        return iter(self._entries.values())
