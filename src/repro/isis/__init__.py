"""IS-IS protocol substrate: LSP/TLV codec, LSDB, adjacencies, listener.

This package is the reproduction's stand-in for the paper's measurement
apparatus — a lightly modified PyRT [Mortier] participating passively in the
IS-IS domain (§3.2).  It provides:

* a binary **TLV codec** for the fields the paper consumes (Table 1):
  LSP ID, Dynamic Hostname (TLV 137), Extended IS Reachability (TLV 22) and
  Extended IP Reachability (TLV 135), plus Area Addresses and Protocols
  Supported for realistic LSPs;
* **LSP** pack/unpack with the ISO 10589 common header, sequence numbers,
  remaining lifetime, and Fletcher checksum;
* a **link-state database** with the newer-LSP acceptance rules;
* the **adjacency three-way-handshake FSM** (RFC 5303), whose aborted
  handshakes are one source of syslog's sub-second false positives (§4.3);
* a simple **flooding** model delivering LSPs to a listener;
* the passive **listener** that diffs consecutive LSPs from each origin on
  IS and IP reachability and emits link state transitions — the paper's
  ground-truth channel;
* an **MRT-style dump** reader/writer so LSP streams can be archived and
  replayed like PyRT capture files.
"""

from repro.isis.tlv import (
    AreaAddressesTlv,
    DynamicHostnameTlv,
    ExtendedIpReachabilityTlv,
    ExtendedIsReachabilityTlv,
    IpPrefix,
    IsNeighbor,
    ProtocolsSupportedTlv,
    RawTlv,
    Tlv,
    decode_tlvs,
    encode_tlvs,
)
from repro.isis.lsp import LinkStatePacket, LspId
from repro.isis.pdu import PduHeader, PduType
from repro.isis.database import LinkStateDatabase
from repro.isis.adjacency import (
    AdjacencyEvent,
    AdjacencyState,
    AdjacencyStateMachine,
    HandshakeOutcome,
)
from repro.isis.flooding import FloodingModel
from repro.isis.hello import PointToPointHello, ThreeWayAdjacencyTlv
from repro.isis.snp import (
    CompleteSnp,
    LspSummary,
    PartialSnp,
    missing_or_stale,
    summarize_database,
)
from repro.isis.listener import IsisListener, ReachabilityChange, ReachabilityKind
from repro.isis.mrt import MrtDumpReader, MrtDumpWriter

__all__ = [
    "AreaAddressesTlv",
    "DynamicHostnameTlv",
    "ExtendedIpReachabilityTlv",
    "ExtendedIsReachabilityTlv",
    "IpPrefix",
    "IsNeighbor",
    "ProtocolsSupportedTlv",
    "RawTlv",
    "Tlv",
    "decode_tlvs",
    "encode_tlvs",
    "LinkStatePacket",
    "LspId",
    "PduHeader",
    "PduType",
    "LinkStateDatabase",
    "AdjacencyEvent",
    "AdjacencyState",
    "AdjacencyStateMachine",
    "HandshakeOutcome",
    "FloodingModel",
    "PointToPointHello",
    "ThreeWayAdjacencyTlv",
    "CompleteSnp",
    "LspSummary",
    "PartialSnp",
    "missing_or_stale",
    "summarize_database",
    "IsisListener",
    "ReachabilityChange",
    "ReachabilityKind",
    "MrtDumpReader",
    "MrtDumpWriter",
]
