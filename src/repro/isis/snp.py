"""Sequence number PDUs: CSNP and PSNP (ISO 10589 §9.9–§9.10).

SNPs are IS-IS's database synchronisation machinery: a Complete SNP lists
every LSP in the sender's database (ID, sequence number, lifetime,
checksum); a Partial SNP acknowledges or requests specific LSPs.  The
paper's listener relies on exactly this exchange when it restarts after an
outage — its LSDB resynchronises from its attachment router's CSNPs, which
is why changes during an outage surface as a burst of deltas at resync
(the artefact §4.2's sanitisation removes).

The codec supports building and parsing both PDU types, and
:func:`summarize_database` produces the CSNP entry list for an LSDB.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.isis.database import LinkStateDatabase
from repro.isis.lsp import LspId
from repro.isis.pdu import PduDecodeError, PduHeader, PduType
from repro.topology.addressing import system_id_from_bytes, system_id_to_bytes

#: Header length indicators (8 common + specific octets).
CSNP_HEADER_LENGTH = 33
PSNP_HEADER_LENGTH = 17

#: The LSP Entries TLV (type 9); each entry is 16 octets.
TLV_LSP_ENTRIES = 9
_ENTRY = struct.Struct(">H8sIH")

#: Lowest/highest possible LSP IDs, for full-range CSNPs.
FIRST_LSP_ID = LspId("0000.0000.0000", 0, 0)
LAST_LSP_ID = LspId("ffff.ffff.ffff", 255, 255)


@dataclass(frozen=True)
class LspSummary:
    """One LSP Entries item: enough to decide who has the newer copy."""

    lsp_id: LspId
    sequence_number: int
    remaining_lifetime: int
    checksum: int

    def pack(self) -> bytes:
        return _ENTRY.pack(
            self.remaining_lifetime,
            self.lsp_id.pack(),
            self.sequence_number,
            self.checksum,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "LspSummary":
        lifetime, lsp_id, seqno, checksum = _ENTRY.unpack(raw)
        return cls(
            lsp_id=LspId.unpack(lsp_id),
            sequence_number=seqno,
            remaining_lifetime=lifetime,
            checksum=checksum,
        )


def _entries_tlvs(entries: Tuple[LspSummary, ...]) -> bytes:
    out = bytearray()
    for i in range(0, len(entries), 15):  # 15 × 16 = 240 octets per TLV
        chunk = entries[i : i + 15]
        out.append(TLV_LSP_ENTRIES)
        out.append(16 * len(chunk))
        for entry in chunk:
            out.extend(entry.pack())
    return bytes(out)


def _parse_entries(raw: bytes) -> Tuple[LspSummary, ...]:
    entries: List[LspSummary] = []
    offset = 0
    while offset < len(raw):
        if offset + 2 > len(raw):
            raise PduDecodeError("truncated SNP TLV header")
        tlv_type, length = raw[offset], raw[offset + 1]
        end = offset + 2 + length
        if end > len(raw):
            raise PduDecodeError("SNP TLV overruns buffer")
        if tlv_type == TLV_LSP_ENTRIES:
            if length % 16:
                raise PduDecodeError("LSP entries TLV not a multiple of 16")
            for i in range(offset + 2, end, 16):
                entries.append(LspSummary.unpack(raw[i : i + 16]))
        offset = end
    return tuple(entries)


@dataclass(frozen=True)
class CompleteSnp:
    """A CSNP: the sender's database over an LSP ID range."""

    source_system_id: str
    entries: Tuple[LspSummary, ...] = field(default_factory=tuple)
    start_lsp_id: LspId = FIRST_LSP_ID
    end_lsp_id: LspId = LAST_LSP_ID

    def pack(self) -> bytes:
        tlvs = _entries_tlvs(self.entries)
        pdu_length = CSNP_HEADER_LENGTH + len(tlvs)
        header = PduHeader(
            pdu_type=PduType.L2_CSNP, header_length=CSNP_HEADER_LENGTH
        ).pack()
        body = struct.pack(
            ">H7s8s8s",
            pdu_length,
            system_id_to_bytes(self.source_system_id) + b"\x00",
            self.start_lsp_id.pack(),
            self.end_lsp_id.pack(),
        )
        return header + body + tlvs

    @classmethod
    def unpack(cls, raw: bytes) -> "CompleteSnp":
        header = PduHeader.unpack(raw)
        if header.pdu_type not in (PduType.L1_CSNP, PduType.L2_CSNP):
            raise PduDecodeError(f"not a CSNP (type {header.pdu_type})")
        if len(raw) < CSNP_HEADER_LENGTH:
            raise PduDecodeError("truncated CSNP")
        pdu_length, source, start, end = struct.unpack_from(">H7s8s8s", raw, 8)
        if pdu_length != len(raw):
            raise PduDecodeError("CSNP length field disagrees with buffer")
        return cls(
            source_system_id=system_id_from_bytes(source[:6]),
            entries=_parse_entries(raw[CSNP_HEADER_LENGTH:]),
            start_lsp_id=LspId.unpack(start),
            end_lsp_id=LspId.unpack(end),
        )


@dataclass(frozen=True)
class PartialSnp:
    """A PSNP: acknowledgement/request for specific LSPs."""

    source_system_id: str
    entries: Tuple[LspSummary, ...] = field(default_factory=tuple)

    def pack(self) -> bytes:
        tlvs = _entries_tlvs(self.entries)
        pdu_length = PSNP_HEADER_LENGTH + len(tlvs)
        header = PduHeader(
            pdu_type=PduType.L2_PSNP, header_length=PSNP_HEADER_LENGTH
        ).pack()
        body = struct.pack(
            ">H7s", pdu_length, system_id_to_bytes(self.source_system_id) + b"\x00"
        )
        return header + body + tlvs

    @classmethod
    def unpack(cls, raw: bytes) -> "PartialSnp":
        header = PduHeader.unpack(raw)
        if header.pdu_type not in (PduType.L1_PSNP, PduType.L2_PSNP):
            raise PduDecodeError(f"not a PSNP (type {header.pdu_type})")
        if len(raw) < PSNP_HEADER_LENGTH:
            raise PduDecodeError("truncated PSNP")
        pdu_length, source = struct.unpack_from(">H7s", raw, 8)
        if pdu_length != len(raw):
            raise PduDecodeError("PSNP length field disagrees with buffer")
        return cls(
            source_system_id=system_id_from_bytes(source[:6]),
            entries=_parse_entries(raw[PSNP_HEADER_LENGTH:]),
        )


def summarize_database(database: LinkStateDatabase) -> Tuple[LspSummary, ...]:
    """The CSNP entry list describing an LSDB's current contents."""
    summaries = []
    for stored in sorted(database, key=lambda s: s.lsp.lsp_id):
        lsp = stored.lsp
        raw = lsp.pack()
        checksum = struct.unpack_from(">H", raw, 24)[0]
        summaries.append(
            LspSummary(
                lsp_id=lsp.lsp_id,
                sequence_number=lsp.sequence_number,
                remaining_lifetime=lsp.remaining_lifetime,
                checksum=checksum,
            )
        )
    return tuple(summaries)


def missing_or_stale(
    local: LinkStateDatabase, remote_entries: Tuple[LspSummary, ...]
) -> List[LspId]:
    """LSP IDs a restarting listener must request (PSNP) after hearing a CSNP.

    An LSP is wanted when the local database lacks it or holds an older
    sequence number — the resync decision the listener makes after an
    outage.
    """
    wanted: List[LspId] = []
    for entry in remote_entries:
        stored = local.get(entry.lsp_id)
        if stored is None or stored.lsp.sequence_number < entry.sequence_number:
            wanted.append(entry.lsp_id)
    return wanted
