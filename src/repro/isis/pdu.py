"""ISO 10589 common PDU header framing.

Every IS-IS PDU begins with the same eight-octet header; only the PDU type
and header-length fields vary by PDU.  The simulated domain is a single
level-2 area, so the listener sees L2 LSPs; hello and SNP types are defined
for completeness (the adjacency FSM reasons about hellos symbolically).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

#: Intradomain Routing Protocol Discriminator assigned to IS-IS.
ISIS_DISCRIMINATOR = 0x83

#: Header length indicator for LSP PDUs (8 common + 19 LSP-specific octets).
LSP_HEADER_LENGTH = 27


class PduDecodeError(ValueError):
    """Raised when PDU bytes violate the common header format."""


class PduType(enum.IntEnum):
    """PDU type codes from ISO 10589 Table 4."""

    L1_LAN_HELLO = 15
    L2_LAN_HELLO = 16
    P2P_HELLO = 17
    L1_LSP = 18
    L2_LSP = 20
    L1_CSNP = 24
    L2_CSNP = 25
    L1_PSNP = 26
    L2_PSNP = 27


@dataclass(frozen=True)
class PduHeader:
    """The eight-octet common header shared by all IS-IS PDUs."""

    pdu_type: PduType
    header_length: int = LSP_HEADER_LENGTH
    version: int = 1
    id_length: int = 0  # zero encodes the standard six-octet system ID
    max_area_addresses: int = 0  # zero encodes the default of three areas

    def pack(self) -> bytes:
        return struct.pack(
            ">BBBBBBBB",
            ISIS_DISCRIMINATOR,
            self.header_length,
            self.version,
            self.id_length,
            int(self.pdu_type),
            self.version,
            0,  # reserved
            self.max_area_addresses,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "PduHeader":
        if len(raw) < 8:
            raise PduDecodeError("truncated common PDU header")
        (
            discriminator,
            header_length,
            version_pid,
            id_length,
            pdu_type,
            version,
            reserved,
            max_areas,
        ) = struct.unpack(">BBBBBBBB", raw[:8])
        if discriminator != ISIS_DISCRIMINATOR:
            raise PduDecodeError(
                f"not an IS-IS PDU (discriminator 0x{discriminator:02x})"
            )
        if version_pid != 1 or version != 1:
            raise PduDecodeError("unsupported IS-IS protocol version")
        if reserved != 0:
            raise PduDecodeError("reserved octet must be zero")
        try:
            typed = PduType(pdu_type & 0x1F)
        except ValueError as exc:
            raise PduDecodeError(f"unknown PDU type {pdu_type}") from exc
        return cls(
            pdu_type=typed,
            header_length=header_length,
            version=version,
            id_length=id_length,
            max_area_addresses=max_areas,
        )
