"""Point-to-point adjacency three-way handshake (RFC 5303).

The handshake matters to the paper for a subtle reason: an **aborted
handshake** makes a router log an adjacency change to syslog and tear it
down again within a second, *without* the adjacency ever reaching the UP
state that would trigger an LSP — one of the two mechanisms behind syslog's
sub-second false positives (§4.3).  The simulation drives this FSM to decide
which link-recovery attempts produce LSPs and which produce only syslog
chatter.

States follow RFC 5303 §3.2: DOWN → INITIALIZING (heard the neighbor) →
UP (the neighbor has heard us too).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class AdjacencyState(enum.Enum):
    DOWN = "down"
    INITIALIZING = "initializing"
    UP = "up"


class HandshakeOutcome(enum.Enum):
    """How a simulated adjacency bring-up attempt ends."""

    SUCCESS = "success"
    #: The handshake reached INITIALIZING (or even UP momentarily) and then
    #: collapsed — logged by the router, invisible to the LSP stream.
    ABORT = "abort"


@dataclass(frozen=True)
class AdjacencyEvent:
    """A state change of the adjacency FSM."""

    time: float
    old_state: AdjacencyState
    new_state: AdjacencyState
    reason: str


class AdjacencyStateMachine:
    """The RFC 5303 three-way handshake FSM for one P2P interface.

    Drive it with :meth:`hello_received` (with the neighbor's view of us),
    :meth:`hold_timer_expired`, and :meth:`interface_down`; read the event
    log from :attr:`events`.
    """

    def __init__(self, local_system_id: str, neighbor_system_id: str) -> None:
        if local_system_id == neighbor_system_id:
            raise ValueError("an adjacency needs two distinct systems")
        self.local_system_id = local_system_id
        self.neighbor_system_id = neighbor_system_id
        self.state = AdjacencyState.DOWN
        self.events: List[AdjacencyEvent] = []

    def _transition(self, time: float, new_state: AdjacencyState, reason: str) -> None:
        if new_state is self.state:
            return
        self.events.append(
            AdjacencyEvent(
                time=time, old_state=self.state, new_state=new_state, reason=reason
            )
        )
        self.state = new_state

    def hello_received(
        self,
        time: float,
        neighbor_sees: Optional[str],
        neighbor_state: AdjacencyState = AdjacencyState.INITIALIZING,
    ) -> None:
        """Process a P2P hello from the neighbor.

        ``neighbor_sees`` is the system ID the neighbor reports in its
        three-way adjacency TLV (who *it* has heard), or ``None`` when it has
        heard nobody yet.  ``neighbor_state`` is the neighbor's advertised
        three-way state.
        """
        if neighbor_sees is not None and neighbor_sees != self.local_system_id:
            # The neighbor is talking to some other system on this wire —
            # treat as if our identity is not acknowledged.
            neighbor_sees = None

        if self.state is AdjacencyState.DOWN:
            if neighbor_sees == self.local_system_id:
                # The neighbor already heard us (it restarted mid-handshake).
                self._transition(time, AdjacencyState.UP, "three-way acknowledged")
            else:
                self._transition(time, AdjacencyState.INITIALIZING, "heard neighbor")
        elif self.state is AdjacencyState.INITIALIZING:
            if neighbor_sees == self.local_system_id:
                self._transition(time, AdjacencyState.UP, "three-way acknowledged")
        else:  # UP
            if (
                neighbor_sees is None
                and neighbor_state is AdjacencyState.DOWN
            ):
                # The neighbor restarted the handshake from scratch.
                self._transition(time, AdjacencyState.INITIALIZING, "neighbor reset")

    def hold_timer_expired(self, time: float) -> None:
        """No hello within the holding time: the adjacency collapses."""
        self._transition(time, AdjacencyState.DOWN, "hold timer expired")

    def interface_down(self, time: float) -> None:
        """The underlying physical media failed."""
        self._transition(time, AdjacencyState.DOWN, "interface down")

    @property
    def is_up(self) -> bool:
        return self.state is AdjacencyState.UP


def run_handshake(
    fsm_a: AdjacencyStateMachine,
    fsm_b: AdjacencyStateMachine,
    start_time: float,
    hello_interval: float = 1.0,
) -> float:
    """Drive two FSMs through a complete successful handshake.

    Returns the time at which both ends reached UP.  Models the standard
    exchange: A hears B (INITIALIZING), B's next hello carries A's ID
    (A goes UP), and symmetrically.
    """
    t = start_time
    # First hellos cross: neither end has heard the other yet.
    fsm_a.hello_received(t, neighbor_sees=None, neighbor_state=AdjacencyState.DOWN)
    fsm_b.hello_received(t, neighbor_sees=None, neighbor_state=AdjacencyState.DOWN)
    t += hello_interval
    # Second round: each hello acknowledges the peer.
    fsm_a.hello_received(
        t, neighbor_sees=fsm_a.local_system_id, neighbor_state=AdjacencyState.INITIALIZING
    )
    fsm_b.hello_received(
        t, neighbor_sees=fsm_b.local_system_id, neighbor_state=AdjacencyState.INITIALIZING
    )
    return t
