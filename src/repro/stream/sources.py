"""Event sources and the event-time merge feeding the streaming engine.

Each observation channel becomes an iterator of :class:`StreamEvent`
records ordered by ``(time, link, reporter)`` — the same total order the
batch extractors impose when they sort their message lists, so every
downstream state machine sees messages in exactly the order the batch
pipeline would.  :func:`merge_events` interleaves any number of such
sources into one globally time-ordered stream; the time of the last
delivered event is the engine's **watermark**, a proven lower bound on
every event still to come.

Adapters:

* :func:`syslog_events` — parses the central log file and re-orders the
  entries in event time (arrival order differs because of delivery
  delays; a complete saved log can simply be sorted, a live collector
  would use :class:`ReorderBuffer` with its transport's delay bound);
* :func:`isis_events` — replays the LSP archive through a fresh
  :class:`~repro.isis.listener.IsisListener` one record at a time,
  classifying each reachability change as it is diffed out.  Records
  that change nothing still yield ``tick`` events: LSP refresh floods
  are a natural clock that advances the watermark between failures.
"""

from __future__ import annotations

import heapq
import math
import os
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.extract_isis import classify_change
from repro.core.extract_syslog import classify_entry
from repro.core.events import LinkMessage
from repro.core.links import LinkResolver
from repro.faults.ledger import CHANNEL_ISIS, IngestReport
from repro.isis.listener import IsisListener
from repro.simulation.dataset import Dataset

#: Channel labels carried by every event.
SYSLOG_CHANNEL = "syslog"
ISIS_CHANNEL = "isis"

#: Event kind for records that carry no message but advance the watermark.
KIND_TICK = "tick"
#: Event kind for LSPs the listener's LSDB rejected (duplicate floods).
KIND_REJECTED = "rejected"


@dataclass(frozen=True)
class StreamEvent:
    """One timestamped item of an observation channel.

    ``kind`` is the classification label the core extractors produced
    (``"isis"``/``"physical"`` for syslog, ``"is"``/``"ip"`` for IS-IS),
    one of their skip reasons (``"unparsed"``, ``"unresolved"``,
    ``"multilink"``, ``"other"``), or a source-level marker
    (:data:`KIND_TICK`, :data:`KIND_REJECTED`).  ``message`` is set only
    for the resolvable kinds.
    """

    time: float
    channel: str
    kind: str
    message: Optional[LinkMessage] = None


def _event_key(event: StreamEvent) -> Tuple[float, str, str]:
    if event.message is None:
        return (event.time, "", "")
    return (event.time, event.message.link, event.message.reporter)


class ReorderBuffer:
    """Restores event-time order over a stream with bounded disorder.

    A live syslog collector sees messages in arrival order; generation
    timestamps can lag arrival by at most the transport's maximum delay.
    Pushing events through a buffer with ``lateness`` set to that bound
    yields them in event-time order (ties broken by ``(link, reporter)``
    then insertion, matching the batch extractors' stable sort).  Events
    older than the already-released frontier raise — the transport bound
    was violated and equivalence with the batch analysis is void.
    """

    def __init__(self, lateness: float) -> None:
        if lateness < 0:
            raise ValueError("lateness must be non-negative")
        self.lateness = lateness
        self._heap: List[Tuple[Tuple[float, str, str], int, StreamEvent]] = []
        self._seq = 0
        self._max_time = -math.inf
        self._released = -math.inf

    def push(self, event: StreamEvent) -> List[StreamEvent]:
        """Add one event; returns every event now safe to release."""
        if event.time < self._released:
            raise ValueError(
                f"event at {event.time} arrived after the reorder horizon "
                f"{self._released} was released; increase lateness"
            )
        heapq.heappush(self._heap, (_event_key(event), self._seq, event))
        self._seq += 1
        self._max_time = max(self._max_time, event.time)
        # Strictly below the horizon: an event AT the horizon may still be
        # joined by equal-time peers whose tie-break sorts them earlier.
        horizon = self._max_time - self.lateness
        released: List[StreamEvent] = []
        while self._heap and self._heap[0][0][0] < horizon:
            released.append(heapq.heappop(self._heap)[2])
        self._released = max(self._released, horizon)
        return released

    def flush(self) -> List[StreamEvent]:
        """Release everything still buffered (end of stream)."""
        released = [heapq.heappop(self._heap)[2] for _ in range(len(self._heap))]
        self._released = max(self._released, self._max_time)
        return released

    def pending(self) -> List[StreamEvent]:
        """Everything still buffered, in release order, *without* mutating.

        The always-on service uses this to build point-in-time snapshot
        reports: a cloned engine is finished with the pending events
        while the live buffer keeps holding them (they may yet be joined
        by earlier-sorting peers inside the lateness bound).
        """
        return [entry[2] for entry in sorted(self._heap)]


class LogTailer:
    """Incremental line reader over a *growing* log file.

    The always-on service journals every delivered syslog line to an
    append-only file and the tenant worker tails it; :meth:`poll` returns
    the lines completed since the last call.  The subtlety a naive tail
    gets wrong: reading a file that is being appended to can observe a
    **torn write** — the final line's bytes present but its newline not
    yet flushed.  Parsing that fragment would ledger a spurious
    ``malformed-line`` drop (and, one flush later, the same line would
    parse fine — a phantom loss the accounting could never close).  The
    tailer therefore buffers trailing bytes until their newline arrives:
    only complete lines are ever released, and :attr:`offset` — the byte
    position of everything released so far — advances only over complete
    lines, so it is always a valid resume point.

    ``close_partial()`` is the end-of-file counterpart: once the writer
    is known to be finished (service shutdown, crashed collector), a
    still-unterminated tail is genuinely torn and is returned for the
    caller to attribute, exactly like a torn TCP frame.
    """

    def __init__(self, path: "str | os.PathLike[str]", start_offset: int = 0) -> None:
        if start_offset < 0:
            raise ValueError("start_offset must be non-negative")
        self.path = os.fspath(path)
        self.offset = start_offset
        self._partial = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes read but not yet released (the buffered partial line)."""
        return len(self._partial)

    def poll(self) -> List[str]:
        """Read newly appended bytes; return newly *completed* lines.

        A file that does not exist yet simply yields nothing — the
        journal writer may not have created it on first poll.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset + len(self._partial))
                data = handle.read()
        except FileNotFoundError:
            return []
        if not data:
            return []
        self._partial.extend(data)
        lines: List[str] = []
        while True:
            cut = self._partial.find(b"\n")
            if cut < 0:
                break
            raw = bytes(self._partial[:cut])
            del self._partial[: cut + 1]
            self.offset += cut + 1
            lines.append(raw.decode("utf-8", errors="replace"))
        return lines

    def close_partial(self) -> Optional[str]:
        """Release a buffered unterminated tail (writer known finished).

        Returns the torn fragment (for ledger attribution), or ``None``
        when the file ended on a clean newline.  :attr:`offset` advances
        past the fragment so the accounting still closes to the byte.
        """
        if not self._partial:
            return None
        fragment = bytes(self._partial).decode("utf-8", errors="replace")
        self.offset += len(self._partial)
        self._partial.clear()
        return fragment


def syslog_events(
    dataset: Dataset,
    resolver: LinkResolver,
    *,
    strict: bool = True,
    report: Optional[IngestReport] = None,
) -> Iterator[StreamEvent]:
    """The central log file as an event-time-ordered event stream.

    The saved log is complete, so re-ordering is a single stable sort by
    ``(time, link, reporter)`` — byte-for-byte the order the batch
    extractor's sorts produce.  (A live adapter would substitute a
    :class:`ReorderBuffer` bounded by the transport's maximum delay.)

    ``strict=False`` quarantines malformed log lines into ``report``
    instead of raising — the same lenient parse the batch pipeline
    applies, so both modes see the same entries.
    """
    events: List[StreamEvent] = []
    for entry in dataset.iter_syslog_entries(strict=strict, report=report):
        kind, message = classify_entry(entry, resolver)
        time = message.time if message is not None else entry.generated_time
        events.append(StreamEvent(time, SYSLOG_CHANNEL, kind, message))
    events.sort(key=_event_key)
    return iter(events)


def isis_events(
    dataset: Dataset,
    resolver: LinkResolver,
    *,
    strict: bool = True,
    report: Optional[IngestReport] = None,
) -> Iterator[StreamEvent]:
    """The LSP archive replayed through a fresh listener, incrementally.

    Records are consumed one at a time (capture order is time order —
    the archive is append-only); all changes diffed out of the records
    sharing one timestamp are released together, sorted by
    ``(link, reporter)`` so ties resolve exactly as the batch
    extractor's stable sort does.

    ``strict=False`` quarantines records the listener cannot decode
    (bit-flipped payloads, checksum failures) and records whose capture
    timestamp regresses — both artifacts of a damaged archive — into
    ``report`` and continues, mirroring
    :func:`repro.core.extract_isis.replay_lsp_records` so batch and
    stream remain equivalent on damaged archives.  A dropped record
    yields no event, not even a tick: the batch extractor never saw it
    either.
    """
    listener = IsisListener()
    pending: List[StreamEvent] = []
    pending_time: Optional[float] = None
    for index, (time, raw) in enumerate(dataset.iter_lsp_records()):
        if pending_time is not None and time < pending_time:
            if strict:
                raise ValueError(
                    f"LSP archive regressed from {pending_time} to {time}; "
                    "the capture is not replayable as a stream"
                )
            if report is not None:
                report.record(
                    CHANNEL_ISIS,
                    "time-regression",
                    index=index,
                    sample=f"{pending_time} -> {time}",
                )
            continue
        rejected_before = listener.rejected_count
        try:
            changes = listener.observe_bytes(time, raw)
        except (ValueError, struct.error) as error:
            if strict:
                raise
            if report is not None:
                report.record(
                    CHANNEL_ISIS, "lsp-decode", index=index, sample=str(error)
                )
            continue
        if pending_time is not None and time > pending_time:
            pending.sort(key=_event_key)
            for event in pending:
                yield event
            pending = []
        pending_time = time

        if listener.rejected_count > rejected_before:
            pending.append(StreamEvent(time, ISIS_CHANNEL, KIND_REJECTED))
        elif not changes:
            pending.append(StreamEvent(time, ISIS_CHANNEL, KIND_TICK))
        for change in changes:
            kind, message = classify_change(change, resolver)
            pending.append(StreamEvent(change.time, ISIS_CHANNEL, kind, message))
    pending.sort(key=_event_key)
    for event in pending:
        yield event


def merge_events(
    streams: Sequence[Iterable[StreamEvent]],
) -> Iterator[StreamEvent]:
    """K-way event-time merge of individually ordered sources.

    Equal-time events across sources are released in source order — a
    fixed, deterministic tie-break, so a resumed run replays the exact
    same global sequence and checkpoint cut points are well defined.
    """
    heap: List[Tuple[float, int, StreamEvent, Iterator[StreamEvent]]] = []
    for index, stream in enumerate(streams):
        iterator = iter(stream)
        first = next(iterator, None)
        if first is not None:
            heap.append((first.time, index, first, iterator))
    heapq.heapify(heap)
    while heap:
        time, index, event, iterator = heapq.heappop(heap)
        yield event
        following = next(iterator, None)
        if following is not None:
            heapq.heappush(heap, (following.time, index, following, iterator))


def dataset_event_stream(
    dataset: Dataset,
    resolver: LinkResolver,
    *,
    strict: bool = True,
    report: Optional[IngestReport] = None,
) -> Iterator[StreamEvent]:
    """The canonical merged event stream of a saved campaign."""
    return merge_events(
        [
            syslog_events(dataset, resolver, strict=strict, report=report),
            isis_events(dataset, resolver, strict=strict, report=report),
        ]
    )
