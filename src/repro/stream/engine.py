"""The streaming analysis engine: events in, provably-final results out.

:class:`StreamEngine` consumes one event-time-ordered
:class:`~repro.stream.sources.StreamEvent` at a time and maintains the
whole §3–§4 methodology online:

* messages route into per-category :class:`~repro.engine.merge.RunMerger`
  machines (message → transition merging);
* finalised transitions drive per-link
  :class:`~repro.engine.timeline.TimelineBuilder` machines (transition →
  failure reconstruction) and the Table 3 coverage scorer;
* emitted failures pass through the
  :class:`~repro.engine.sanitize.Sanitizer` and the kept ones feed the
  greedy :class:`~repro.engine.matching.Matcher` and the
  :class:`~repro.engine.flaps.FlapDetector`.

The machines are the same canonical :mod:`repro.engine` core the batch,
columnar, parallel and service modes drive; this engine is the
watermark-by-watermark driver.

Every *drain* (a periodic sweep, plus the end-of-stream flush) advances
each machine to the current watermark, so everything the stream's
progress proves immutable is emitted immediately.  Nothing is ever
retracted, and the end-of-stream :class:`StreamResult` is exactly what
:func:`repro.core.pipeline.run_analysis` computes from the same data —
the equivalence the test suite enforces seed by seed.

The engine's entire state serialises to JSON (:meth:`checkpoint_state`)
and restores with :meth:`StreamEngine.restore`, so a killed stream
resumes mid-campaign and finishes with byte-identical results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.events import (
    SOURCE_ISIS_IP,
    SOURCE_ISIS_IS,
    SOURCE_SYSLOG,
    FailureEvent,
    Transition,
    failure_sort_key,
)
from repro.core.flapping import FlapEpisode
from repro.core.matching import FailureMatchResult, TransitionCoverage
from repro.core.links import LinkResolver
from repro.core.pipeline import AnalysisOptions
from repro.core.sanitize import SanitizationReport
from repro.engine.flaps import FlapDetector
from repro.engine.matching import CoverageScorer, Matcher
from repro.engine.merge import RunMerger
from repro.engine.sanitize import Sanitizer
from repro.engine.timeline import TimelineBuilder
from repro.faults.ledger import IngestReport
from repro.intervals import AmbiguityStrategy, IntervalSet
from repro.simulation.dataset import Dataset
from repro.stream import checkpoint as checkpoint_codec
from repro.stream.sources import (
    ISIS_CHANNEL,
    KIND_REJECTED,
    KIND_TICK,
    SYSLOG_CHANNEL,
    StreamEvent,
    dataset_event_stream,
)
from repro.ticketing import TicketSystem

#: Merger keys, one per message category.
MERGER_KEYS = ("syslog-isis", "syslog-physical", "isis-is", "isis-ip")
#: The state-bearing merger of each channel (the §3.4 choice).
MAIN_MERGER = {SYSLOG_CHANNEL: "syslog-isis", ISIS_CHANNEL: "isis-is"}


@dataclass(frozen=True)
class StreamOptions:
    """Knobs of the streaming engine.

    ``analysis`` carries the paper's methodology parameters (shared with
    the batch pipeline so equivalence is apples to apples);
    ``drain_interval`` is how many events pass between watermark sweeps —
    it bounds emission latency, never correctness.
    """

    analysis: AnalysisOptions = field(default_factory=AnalysisOptions)
    drain_interval: int = 256

    def __post_init__(self) -> None:
        if self.drain_interval < 1:
            raise ValueError("drain interval must be at least 1")


@dataclass
class StreamResult:
    """End-of-stream products, in the batch pipeline's canonical order."""

    horizon_start: float
    horizon_end: float
    syslog_failures_raw: List[FailureEvent]
    isis_failures_raw: List[FailureEvent]
    syslog_sanitized: SanitizationReport
    isis_sanitized: SanitizationReport
    failure_match: FailureMatchResult
    coverage: TransitionCoverage
    flap_episodes: List[FlapEpisode]
    counters: Dict[str, int]

    @property
    def syslog_failures(self) -> List[FailureEvent]:
        """Sanitised syslog failures (what every table consumes)."""
        return self.syslog_sanitized.kept

    @property
    def isis_failures(self) -> List[FailureEvent]:
        """Sanitised IS-IS failures."""
        return self.isis_sanitized.kept


class StreamEngine:
    """Online incremental failure analysis over one merged event stream."""

    def __init__(
        self,
        resolver: LinkResolver,
        horizon_start: float,
        horizon_end: float,
        listener_outages: IntervalSet,
        tickets: Optional[TicketSystem],
        options: Optional[StreamOptions] = None,
    ) -> None:
        self.options = options if options is not None else StreamOptions()
        analysis = self.options.analysis
        self.resolver = resolver
        self.horizon_start = horizon_start
        self.horizon_end = horizon_end
        self.single_links = {record.name for record in resolver.single_links()}  # reprolint: disable=C001 -- derived from the resolver; the constructor rebuilds it on resume

        self.watermark = -math.inf
        self.events_consumed = 0
        self.finished = False

        self.mergers: Dict[str, RunMerger] = {
            "syslog-isis": RunMerger(
                analysis.syslog.merge_window, SOURCE_SYSLOG
            ),
            "syslog-physical": RunMerger(
                analysis.syslog.merge_window, SOURCE_SYSLOG
            ),
            "isis-is": RunMerger(analysis.isis.merge_window, SOURCE_ISIS_IS),
            "isis-ip": RunMerger(analysis.isis.merge_window, SOURCE_ISIS_IP),
        }
        self.timelines: Dict[str, Dict[str, TimelineBuilder]] = {
            SYSLOG_CHANNEL: {},
            ISIS_CHANNEL: {},
        }
        self.sanitizers: Dict[str, Sanitizer] = {
            SYSLOG_CHANNEL: Sanitizer(
                listener_outages, tickets, analysis.sanitization
            ),
            ISIS_CHANNEL: Sanitizer(
                listener_outages, None, analysis.sanitization
            ),
        }
        self.matcher = Matcher(analysis.matching.window)
        self.coverage = CoverageScorer(
            analysis.matching.window, analysis.isis.merge_window
        )
        self.flaps = FlapDetector(analysis.flap_gap_threshold)
        self.raw_failures: Dict[str, List[FailureEvent]] = {
            SYSLOG_CHANNEL: [],
            ISIS_CHANNEL: [],
        }
        self.counters: Dict[str, int] = {
            "ticks": 0,
            "rejected_lsps": 0,
            "syslog_unparsed": 0,
            "syslog_unresolved": 0,
            "syslog_other": 0,
            "isis_unresolved": 0,
            "isis_multilink": 0,
            "syslog_isis_messages": 0,
            "syslog_physical_messages": 0,
            "isis_is_messages": 0,
            "isis_ip_messages": 0,
        }
        self._result: Optional[StreamResult] = None

    # ------------------------------------------------------------ intake
    def process(self, event: StreamEvent) -> None:
        """Consume one event (must arrive in event-time order)."""
        if self.finished:
            raise RuntimeError("engine already finished")
        self.events_consumed += 1
        if event.time > self.watermark:
            self.watermark = event.time
        if event.message is not None:
            self._route_message(event)
        else:
            self._count_skip(event)
        if self.events_consumed % self.options.drain_interval == 0:
            self.drain()

    def _count_skip(self, event: StreamEvent) -> None:
        kind = event.kind
        if kind == KIND_TICK:
            self.counters["ticks"] += 1
        elif kind == KIND_REJECTED:
            self.counters["rejected_lsps"] += 1
        elif event.channel == SYSLOG_CHANNEL:
            if kind == "unparsed":
                self.counters["syslog_unparsed"] += 1
            elif kind == "unresolved":
                self.counters["syslog_unresolved"] += 1
            else:
                self.counters["syslog_other"] += 1
        else:
            if kind == "multilink":
                self.counters["isis_multilink"] += 1
            else:
                self.counters["isis_unresolved"] += 1

    def _route_message(self, event: StreamEvent) -> None:
        message = event.message
        if event.channel == SYSLOG_CHANNEL:
            if event.kind == "isis":
                self.counters["syslog_isis_messages"] += 1
                self.coverage.feed(message)
                closed = self.mergers["syslog-isis"].feed(message)
                if closed is not None:
                    self._route_transition("syslog-isis", closed)
            else:
                self.counters["syslog_physical_messages"] += 1
                closed = self.mergers["syslog-physical"].feed(message)
                # Physical transitions are counted by the merger; they
                # carry no link state (Table 2 material only).
        else:
            if event.kind == "is":
                self.counters["isis_is_messages"] += 1
                closed = self.mergers["isis-is"].feed(message)
                if closed is not None:
                    self._route_transition("isis-is", closed)
            else:
                self.counters["isis_ip_messages"] += 1
                self.mergers["isis-ip"].feed(message)

    # ------------------------------------------------------ transitions
    def _route_transition(self, merger_key: str, transition: Transition) -> None:
        if merger_key == "syslog-isis":
            if transition.link in self.single_links:
                self._feed_timeline(SYSLOG_CHANNEL, transition)
        elif merger_key == "isis-is":
            self.coverage.feed(transition)
            self._feed_timeline(ISIS_CHANNEL, transition)

    def _feed_timeline(self, channel: str, transition: Transition) -> None:
        timeline = self.timelines[channel].get(transition.link)
        if timeline is None:
            timeline = self.timelines[channel][transition.link] = TimelineBuilder(
                transition.link,
                self.horizon_start,
                self.horizon_end,
                self._strategy(channel),
                SOURCE_SYSLOG if channel == SYSLOG_CHANNEL else SOURCE_ISIS_IS,
            )
        timeline.feed(transition)
        self._collect_failures(channel, timeline)

    def _strategy(self, channel: str) -> AmbiguityStrategy:
        analysis = self.options.analysis
        return (
            analysis.syslog.strategy
            if channel == SYSLOG_CHANNEL
            else analysis.isis.strategy
        )

    def _collect_failures(self, channel: str, timeline: TimelineBuilder) -> None:
        for failure in timeline.collect():
            self.raw_failures[channel].append(failure)
            released = self.sanitizers[channel].feed(failure, self.watermark)
            for kept in released:
                self._route_kept(channel, kept)

    def _route_kept(self, channel: str, failure: FailureEvent) -> None:
        if channel == SYSLOG_CHANNEL:
            self.matcher.feed("a", failure)
        else:
            self.matcher.feed("b", failure)
            self.flaps.feed(failure)

    # ----------------------------------------------------------- drains
    def drain(self) -> None:
        """Advance every machine to the current watermark."""
        watermark = self.watermark
        for key in MERGER_KEYS:
            for transition in self.mergers[key].advance(watermark):
                self._route_transition(key, transition)
        for channel in (SYSLOG_CHANNEL, ISIS_CHANNEL):
            for timeline in self.timelines[channel].values():
                if timeline.flushed:
                    continue
                timeline.advance(watermark)
                self._collect_failures(channel, timeline)
        for channel in (SYSLOG_CHANNEL, ISIS_CHANNEL):
            for kept in self.sanitizers[channel].advance(watermark):
                self._route_kept(channel, kept)
        self.coverage.advance(watermark)
        self.matcher.advance(self._syslog_kept_frontier, self._isis_kept_frontier)
        self.flaps.advance(self._isis_kept_frontier)

    def _kept_frontier(self, channel: str, link: str) -> float:
        """Lower bound on the start of any future kept failure on a link."""
        frontier = self.mergers[MAIN_MERGER[channel]].frontier(link, self.watermark)
        timeline = self.timelines[channel].get(link)
        if timeline is not None and not timeline.flushed:
            frontier = min(frontier, timeline.down_frontier())
        frontier = min(frontier, self.sanitizers[channel].held_frontier(link))
        return frontier

    def _syslog_kept_frontier(self, link: str) -> float:
        return self._kept_frontier(SYSLOG_CHANNEL, link)

    def _isis_kept_frontier(self, link: str) -> float:
        return self._kept_frontier(ISIS_CHANNEL, link)

    # ----------------------------------------------------------- finish
    def finish(self) -> StreamResult:
        """Flush everything and build the final (canonical) result."""
        if self._result is not None:
            return self._result
        self.watermark = math.inf
        for key in MERGER_KEYS:
            for transition in self.mergers[key].advance(math.inf):
                self._route_transition(key, transition)
        for channel in (SYSLOG_CHANNEL, ISIS_CHANNEL):
            for timeline in self.timelines[channel].values():
                if timeline.flushed:
                    continue
                timeline.flush()
                self._collect_failures(channel, timeline)
        for channel in (SYSLOG_CHANNEL, ISIS_CHANNEL):
            for kept in self.sanitizers[channel].flush():
                self._route_kept(channel, kept)
        self.coverage.flush()
        self.matcher.flush()
        self.flaps.flush()
        self.finished = True

        key = failure_sort_key
        counters = dict(self.counters)
        counters["events"] = self.events_consumed
        for merger_key in MERGER_KEYS:
            counters[f"{merger_key}-transitions"] = self.mergers[
                merger_key
            ].transition_count
        self._result = StreamResult(
            horizon_start=self.horizon_start,
            horizon_end=self.horizon_end,
            syslog_failures_raw=sorted(self.raw_failures[SYSLOG_CHANNEL], key=key),
            isis_failures_raw=sorted(self.raw_failures[ISIS_CHANNEL], key=key),
            syslog_sanitized=self.sanitizers[SYSLOG_CHANNEL].finalized_report(),
            isis_sanitized=self.sanitizers[ISIS_CHANNEL].finalized_report(),
            failure_match=self.matcher.result(),
            coverage=self.coverage.result(),
            flap_episodes=self.flaps.result(),
            counters=counters,
        )
        return self._result

    # ---------------------------------------------------------- summary
    def summary(self) -> Dict[str, object]:
        """Cheap live counters for periodic progress output."""
        return {
            "events": self.events_consumed,
            "watermark": self.watermark,
            "syslog_messages": self.counters["syslog_isis_messages"]
            + self.counters["syslog_physical_messages"],
            "isis_messages": self.counters["isis_is_messages"]
            + self.counters["isis_ip_messages"],
            "transitions": sum(
                self.mergers[key].transition_count for key in MERGER_KEYS
            ),
            "syslog_failures": len(self.raw_failures[SYSLOG_CHANNEL]),
            "isis_failures": len(self.raw_failures[ISIS_CHANNEL]),
            "syslog_kept": len(self.sanitizers[SYSLOG_CHANNEL].report.kept),
            "isis_kept": len(self.sanitizers[ISIS_CHANNEL].report.kept),
            "matched": len(self.matcher.pairs),
            "match_pending": self.matcher.pending_count,
            "flap_episodes": len(self.flaps.episodes),
            "open_runs": sum(
                self.mergers[key].open_run_count for key in MERGER_KEYS
            ),
            "held_failures": sum(
                self.sanitizers[c].held_count
                for c in (SYSLOG_CHANNEL, ISIS_CHANNEL)
            ),
        }

    # ------------------------------------------------------- checkpoint
    def checkpoint_state(self) -> Dict[str, object]:
        """The engine's full state as a JSON-serialisable dict."""
        return checkpoint_codec.encode_engine(self)

    @classmethod
    def restore(
        cls,
        state: Dict[str, object],
        resolver: LinkResolver,
        listener_outages: IntervalSet,
        tickets: Optional[TicketSystem],
    ) -> "StreamEngine":
        """Rebuild an engine from :meth:`checkpoint_state` output."""
        return checkpoint_codec.decode_engine(
            state, resolver, listener_outages, tickets
        )


def stream_dataset(
    dataset: Dataset,
    options: Optional[StreamOptions] = None,
    *,
    resume_state: Optional[Dict[str, object]] = None,
    on_progress: Optional[Callable[[StreamEngine], None]] = None,
    progress_every: int = 0,
    checkpoint_at: Iterable[int] = (),
    checkpoint_every: int = 0,
    on_checkpoint: Optional[Callable[[StreamEngine], None]] = None,
    strict: bool = True,
    report: Optional[IngestReport] = None,
) -> StreamResult:
    """Tail a dataset through a streaming engine and return the result.

    ``resume_state`` (a loaded checkpoint) fast-forwards the sources past
    the events the checkpointed engine already consumed and continues
    from its exact state.  ``on_checkpoint`` fires at the absolute event
    counts in ``checkpoint_at`` (the tests' arbitrary cut points) and
    every ``checkpoint_every`` events (the CLI's periodic saves).

    ``strict=False`` runs the hardened sources: malformed syslog lines
    and undecodable LSP records are quarantined into ``report`` instead
    of raising.  Dropped records yield no events, so resume arithmetic
    (skip ``events_consumed`` delivered events) is unchanged, and a
    resumed lenient run re-reads the artifacts from byte zero and
    therefore rebuilds the full ledger.
    """
    resolver = LinkResolver(dataset.inventory)
    if resume_state is not None:
        engine = StreamEngine.restore(
            resume_state, resolver, dataset.listener_outages, dataset.tickets
        )
    else:
        engine = StreamEngine(
            resolver,
            dataset.analysis_start,
            dataset.horizon_end,
            dataset.listener_outages,
            dataset.tickets,
            options,
        )

    events = dataset_event_stream(dataset, resolver, strict=strict, report=report)
    for _ in range(engine.events_consumed):
        next(events)

    checkpoints = sorted(n for n in checkpoint_at if n > engine.events_consumed)
    for event in events:
        engine.process(event)
        if progress_every and engine.events_consumed % progress_every == 0:
            if on_progress is not None:
                on_progress(engine)
        due = checkpoints and engine.events_consumed == checkpoints[0]
        if due:
            checkpoints.pop(0)
        if checkpoint_every and engine.events_consumed % checkpoint_every == 0:
            due = True
        if due and on_checkpoint is not None:
            on_checkpoint(engine)
    return engine.finish()
