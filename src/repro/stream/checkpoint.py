"""Checkpoint/resume: the engine's entire state as a JSON document.

Everything a :class:`~repro.stream.engine.StreamEngine` holds — open
message runs, per-link timeline machines, held failures awaiting their
ticket horizon, undecided match candidates, coverage rings, flap runs,
accumulated results — round-trips through plain JSON.  Floats survive
exactly (JSON carries them as shortest-round-trip decimal), frozensets
become sorted lists, and sentinel infinities become ``null``, so a
restored engine is value-identical to the checkpointed one and the
resumed stream finishes with byte-identical results; the test suite cuts
streams at arbitrary points to enforce this.

The document also records how many events the engine had consumed.
Event delivery is deterministic (the merge's tie-breaks are fixed), so
resuming is simply: rebuild the engine, skip that many events, continue.
"""

from __future__ import annotations

import json
import math
import os
from collections import deque
from typing import Any, Dict, List, Optional

from repro.core.events import FailureEvent, LinkMessage, Transition
from repro.core.flapping import FlapEpisode
from repro.core.links import LinkResolver
from repro.core.matching import MatchConfig
from repro.core.pipeline import AnalysisOptions
from repro.core.sanitize import SanitizationConfig, SanitizationReport
from repro.core.extract_isis import IsisExtractionConfig
from repro.core.extract_syslog import SyslogExtractionConfig
from repro.intervals import IntervalSet
from repro.intervals.timeline import AmbiguityStrategy, LinkState
from repro.ticketing import TicketSystem

#: Bumped whenever the checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1


class CheckpointError(Exception):
    """A checkpoint document is unreadable or incompatible."""


# ------------------------------------------------------------- event codecs
def encode_message(message: LinkMessage) -> List[Any]:
    return [
        message.time,
        message.link,
        message.direction,
        message.reporter,
        message.source,
        message.category,
        message.reason,
    ]


def decode_message(raw: List[Any]) -> LinkMessage:
    time, link, direction, reporter, source, category, reason = raw
    return LinkMessage(
        time=time,
        link=link,
        direction=direction,
        reporter=reporter,
        source=source,
        category=category,
        reason=reason,
    )


def encode_transition(transition: Transition) -> List[Any]:
    return [
        transition.time,
        transition.link,
        transition.direction,
        transition.source,
        sorted(transition.reporters),
        [encode_message(message) for message in transition.messages],
    ]


def decode_transition(raw: List[Any]) -> Transition:
    time, link, direction, source, reporters, messages = raw
    return Transition(
        time=time,
        link=link,
        direction=direction,
        source=source,
        reporters=frozenset(reporters),
        messages=tuple(decode_message(message) for message in messages),
    )


def encode_failure(failure: FailureEvent) -> List[Any]:
    return [
        failure.link,
        failure.start,
        failure.end,
        failure.source,
        None
        if failure.start_transition is None
        else encode_transition(failure.start_transition),
        None
        if failure.end_transition is None
        else encode_transition(failure.end_transition),
    ]


def decode_failure(raw: List[Any]) -> FailureEvent:
    link, start, end, source, start_transition, end_transition = raw
    return FailureEvent(
        link=link,
        start=start,
        end=end,
        source=source,
        start_transition=None
        if start_transition is None
        else decode_transition(start_transition),
        end_transition=None
        if end_transition is None
        else decode_transition(end_transition),
    )


def encode_episode(episode: FlapEpisode) -> List[Any]:
    return [episode.link, episode.start, episode.end, episode.failure_count]


def decode_episode(raw: List[Any]) -> FlapEpisode:
    link, start, end, failure_count = raw
    return FlapEpisode(link=link, start=start, end=end, failure_count=failure_count)


def encode_report(report: SanitizationReport) -> Dict[str, Any]:
    return {
        "kept": [encode_failure(f) for f in report.kept],
        "removed_listener_overlap": [
            encode_failure(f) for f in report.removed_listener_overlap
        ],
        "removed_unverified_long": [
            encode_failure(f) for f in report.removed_unverified_long
        ],
        "verified_long": [encode_failure(f) for f in report.verified_long],
    }


def decode_report(raw: Dict[str, Any]) -> SanitizationReport:
    report = SanitizationReport()
    report.kept = [decode_failure(f) for f in raw["kept"]]
    report.removed_listener_overlap = [
        decode_failure(f) for f in raw["removed_listener_overlap"]
    ]
    report.removed_unverified_long = [
        decode_failure(f) for f in raw["removed_unverified_long"]
    ]
    report.verified_long = [decode_failure(f) for f in raw["verified_long"]]
    return report


def _encode_maybe_inf(value: float) -> Optional[float]:
    # JSON has no infinities; the engine's pre-first-event watermark is
    # the only non-finite value in its state.
    return None if math.isinf(value) else value


def _decode_watermark(raw: Optional[float]) -> float:
    return -math.inf if raw is None else raw


# ----------------------------------------------------------- options codec
def encode_options(options: "StreamOptions") -> Dict[str, Any]:  # noqa: F821
    analysis = options.analysis
    return {
        "drain_interval": options.drain_interval,
        "syslog": {
            "merge_window": analysis.syslog.merge_window,
            "strategy": analysis.syslog.strategy.value,
        },
        "isis": {
            "merge_window": analysis.isis.merge_window,
            "strategy": analysis.isis.strategy.value,
        },
        "matching": {"window": analysis.matching.window},
        "sanitization": {
            "long_failure_threshold": analysis.sanitization.long_failure_threshold,
            "ticket_slack": analysis.sanitization.ticket_slack,
        },
        "flap_gap_threshold": analysis.flap_gap_threshold,
    }


def decode_options(raw: Dict[str, Any]) -> "StreamOptions":  # noqa: F821
    from repro.stream.engine import StreamOptions

    return StreamOptions(
        analysis=AnalysisOptions(
            syslog=SyslogExtractionConfig(
                merge_window=raw["syslog"]["merge_window"],
                strategy=AmbiguityStrategy(raw["syslog"]["strategy"]),
            ),
            isis=IsisExtractionConfig(
                merge_window=raw["isis"]["merge_window"],
                strategy=AmbiguityStrategy(raw["isis"]["strategy"]),
            ),
            matching=MatchConfig(window=raw["matching"]["window"]),
            sanitization=SanitizationConfig(
                long_failure_threshold=raw["sanitization"][
                    "long_failure_threshold"
                ],
                ticket_slack=raw["sanitization"]["ticket_slack"],
            ),
            flap_gap_threshold=raw["flap_gap_threshold"],
        ),
        drain_interval=raw["drain_interval"],
    )


# ------------------------------------------------------------ engine codec
def encode_engine(engine: "StreamEngine") -> Dict[str, Any]:  # noqa: F821
    from repro.stream.engine import MERGER_KEYS
    from repro.stream.sources import ISIS_CHANNEL, SYSLOG_CHANNEL

    if engine.finished:
        raise CheckpointError("a finished engine cannot be checkpointed")
    return {
        "version": CHECKPOINT_VERSION,
        "options": encode_options(engine.options),
        "horizon_start": engine.horizon_start,
        "horizon_end": engine.horizon_end,
        "watermark": _encode_maybe_inf(engine.watermark),
        "events_consumed": engine.events_consumed,
        "counters": dict(engine.counters),
        "mergers": {
            key: _encode_merger(engine.mergers[key]) for key in MERGER_KEYS
        },
        "timelines": {
            channel: {
                link: _encode_timeline(timeline)
                for link, timeline in sorted(engine.timelines[channel].items())
            }
            for channel in (SYSLOG_CHANNEL, ISIS_CHANNEL)
        },
        "sanitizers": {
            channel: _encode_sanitizer(engine.sanitizers[channel])
            for channel in (SYSLOG_CHANNEL, ISIS_CHANNEL)
        },
        "matcher": _encode_matcher(engine.matcher),
        "coverage": _encode_coverage(engine.coverage),
        "flaps": _encode_flaps(engine.flaps),
        "raw_failures": {
            channel: [encode_failure(f) for f in engine.raw_failures[channel]]
            for channel in (SYSLOG_CHANNEL, ISIS_CHANNEL)
        },
    }


def decode_engine(
    state: Dict[str, Any],
    resolver: LinkResolver,
    listener_outages: IntervalSet,
    tickets: Optional[TicketSystem],
) -> "StreamEngine":  # noqa: F821
    from repro.stream.engine import MERGER_KEYS, StreamEngine
    from repro.stream.sources import ISIS_CHANNEL, SYSLOG_CHANNEL

    if not isinstance(state, dict):
        raise CheckpointError(
            f"checkpoint document is {type(state).__name__}, not an object"
        )
    version = state.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} is not supported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    # A version-tagged document can still be structurally mangled (a torn
    # write, a bit flip that survived JSON) — decoding it must fail as a
    # typed CheckpointError the caller can fall back from, never as a
    # bare KeyError/TypeError deep inside a codec.
    try:
        engine = StreamEngine(
            resolver,
            state["horizon_start"],
            state["horizon_end"],
            listener_outages,
            tickets,
            decode_options(state["options"]),
        )
        engine.watermark = _decode_watermark(state["watermark"])
        engine.events_consumed = state["events_consumed"]
        engine.counters = dict(state["counters"])
        for key in MERGER_KEYS:
            _decode_merger(engine.mergers[key], state["mergers"][key])
        for channel in (SYSLOG_CHANNEL, ISIS_CHANNEL):
            for link, raw_timeline in state["timelines"][channel].items():
                engine.timelines[channel][link] = _decode_timeline(
                    engine, channel, link, raw_timeline
                )
            _decode_sanitizer(
                engine.sanitizers[channel], state["sanitizers"][channel]
            )
            engine.raw_failures[channel] = [
                decode_failure(f) for f in state["raw_failures"][channel]
            ]
        _decode_matcher(engine.matcher, state["matcher"])
        _decode_coverage(engine.coverage, state["coverage"])
        _decode_flaps(engine.flaps, state["flaps"])
    except CheckpointError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as error:
        raise CheckpointError(
            f"checkpoint structure invalid at {type(error).__name__}: {error}"
        ) from error
    return engine


# ------------------------------------------------------- component codecs
def _encode_merger(merger: "RunMerger") -> Dict[str, Any]:  # noqa: F821
    return {
        "transition_count": merger.transition_count,
        "open_runs": {
            link: [encode_message(m) for m in run]
            for link, run in sorted(merger.open_runs.items())
        },
    }


def _decode_merger(
    merger: "RunMerger", raw: Dict[str, Any]  # noqa: F821
) -> None:
    merger.transition_count = raw["transition_count"]
    for link, run in raw["open_runs"].items():
        merger.open_runs[link] = [decode_message(m) for m in run]


def _encode_sanitizer(sanitizer: "Sanitizer") -> Dict[str, Any]:  # noqa: F821
    return {
        "report": encode_report(sanitizer.report),
        "held": {
            link: [encode_failure(f) for f in queue]
            for link, queue in sorted(sanitizer.held.items())
        },
    }


def _decode_sanitizer(
    sanitizer: "Sanitizer", raw: Dict[str, Any]  # noqa: F821
) -> None:
    sanitizer.report = decode_report(raw["report"])
    for link, queue in raw["held"].items():
        sanitizer.held[link] = deque(decode_failure(f) for f in queue)


def _encode_timeline(timeline: "TimelineBuilder") -> Dict[str, Any]:  # noqa: F821
    return {
        "cursor": timeline.cursor,
        "state": timeline.state.value,
        "last_message_time": timeline.last_message_time,
        "tail": None
        if timeline.tail is None
        else [timeline.tail[0], timeline.tail[1], timeline.tail[2].value],
        "pending": [encode_transition(t) for t in timeline.pending],
        "pending_time": timeline.pending_time,
        "index": [
            [time, direction, encode_transition(transition)]
            for (time, direction), transition in sorted(timeline.index.items())
        ],
        "anomaly_count": timeline.anomaly_count,
        "emitted": [encode_failure(f) for f in timeline.emitted],
        "flushed": timeline.flushed,
    }


def _decode_timeline(
    engine: "StreamEngine",  # noqa: F821
    channel: str,
    link: str,
    raw: Dict[str, Any],
) -> "TimelineBuilder":  # noqa: F821
    from repro.core.events import SOURCE_ISIS_IS, SOURCE_SYSLOG
    from repro.stream.sources import SYSLOG_CHANNEL
    from repro.engine.timeline import TimelineBuilder

    timeline = TimelineBuilder(
        link,
        engine.horizon_start,
        engine.horizon_end,
        engine.options.analysis.syslog.strategy
        if channel == SYSLOG_CHANNEL
        else engine.options.analysis.isis.strategy,
        SOURCE_SYSLOG if channel == SYSLOG_CHANNEL else SOURCE_ISIS_IS,
    )
    timeline.cursor = raw["cursor"]
    timeline.state = LinkState(raw["state"])
    timeline.last_message_time = raw["last_message_time"]
    tail = raw["tail"]
    timeline.tail = (
        None if tail is None else (tail[0], tail[1], LinkState(tail[2]))
    )
    timeline.pending = [decode_transition(t) for t in raw["pending"]]
    timeline.pending_time = raw["pending_time"]
    timeline.index = {
        (time, direction): decode_transition(transition)
        for time, direction, transition in raw["index"]
    }
    timeline.anomaly_count = raw["anomaly_count"]
    timeline.emitted = [decode_failure(f) for f in raw["emitted"]]
    timeline.flushed = raw["flushed"]
    return timeline


def _encode_matcher(matcher: "Matcher") -> Dict[str, Any]:  # noqa: F821
    return {
        "pairs": [
            [encode_failure(fa), encode_failure(fb)] for fa, fb in matcher.pairs
        ],
        "only_a": [encode_failure(f) for f in matcher.only_a],
        "only_b": [encode_failure(f) for f in matcher.only_b],
        "partial_a": [encode_failure(f) for f in matcher.partial_a],
        "partial_b": [encode_failure(f) for f in matcher.partial_b],
        "links": {
            link: {
                "a_pending": len(state.a_pending),
                "b_pending": list(state.b_pending),
                "a_all": [encode_failure(f) for f in state.a_all],
                "b_all": [encode_failure(f) for f in state.b_all],
                "b_consumed": list(state.b_consumed),
            }
            for link, state in sorted(matcher.links.items())
        },
    }


def _decode_matcher(
    matcher: "Matcher", raw: Dict[str, Any]  # noqa: F821
) -> None:
    matcher.pairs = [
        (decode_failure(fa), decode_failure(fb)) for fa, fb in raw["pairs"]
    ]
    matcher.only_a = [decode_failure(f) for f in raw["only_a"]]
    matcher.only_b = [decode_failure(f) for f in raw["only_b"]]
    matcher.partial_a = [decode_failure(f) for f in raw["partial_a"]]
    matcher.partial_b = [decode_failure(f) for f in raw["partial_b"]]
    for link, raw_state in raw["links"].items():
        state = matcher._state(link)
        state.a_all = [decode_failure(f) for f in raw_state["a_all"]]
        state.b_all = [decode_failure(f) for f in raw_state["b_all"]]
        state.b_consumed = list(raw_state["b_consumed"])
        # a_pending is always the trailing slice of a_all (decisions pop
        # from the front in arrival order), so its length suffices.
        pending = raw_state["a_pending"]
        state.a_pending = deque(
            state.a_all[len(state.a_all) - pending :] if pending else []
        )
        state.b_pending = deque(raw_state["b_pending"])


def _encode_coverage(coverage: "CoverageScorer") -> Dict[str, Any]:  # noqa: F821
    return {
        "counts": {
            direction: {str(bucket): count for bucket, count in buckets.items()}
            for direction, buckets in coverage.counts.items()
        },
        "unmatched": [encode_transition(t) for t in coverage.unmatched],
        "pending": [encode_transition(t) for t in coverage.pending],
        "messages": [
            [link, direction, [[time, reporter] for time, reporter in ring]]
            for (link, direction), ring in sorted(coverage.messages.items())
        ],
    }


def _decode_coverage(
    coverage: "CoverageScorer", raw: Dict[str, Any]  # noqa: F821
) -> None:
    coverage.counts = {
        direction: {int(bucket): count for bucket, count in buckets.items()}
        for direction, buckets in raw["counts"].items()
    }
    coverage.unmatched = [decode_transition(t) for t in raw["unmatched"]]
    coverage.pending = deque(decode_transition(t) for t in raw["pending"])
    for link, direction, ring in raw["messages"]:
        coverage.messages[(link, direction)] = deque(
            (time, reporter) for time, reporter in ring
        )


def _encode_flaps(flaps: "FlapDetector") -> Dict[str, Any]:  # noqa: F821
    return {
        "episodes": [encode_episode(e) for e in flaps.episodes],
        "runs": {
            link: [run.start, run.end, run.count]
            for link, run in sorted(flaps.runs.items())
        },
    }


def _decode_flaps(
    flaps: "FlapDetector", raw: Dict[str, Any]  # noqa: F821
) -> None:
    from repro.engine.flaps import FlapRun

    flaps.episodes = [decode_episode(e) for e in raw["episodes"]]
    for link, (start, end, count) in raw["runs"].items():
        run = FlapRun.__new__(FlapRun)
        run.start = start
        run.end = end
        run.count = count
        flaps.runs[link] = run


# -------------------------------------------------------------- file I/O
def save_checkpoint(path: str, engine: "StreamEngine") -> None:  # noqa: F821
    """Write the engine's full state to ``path`` as JSON, atomically.

    The document is written to a sibling temp file and renamed into
    place, so a crash mid-write (the exact scenario checkpoints exist
    for) leaves the previous checkpoint intact rather than a torn file.
    """
    document = engine.checkpoint_state()
    temp_path = f"{path}.tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read a checkpoint document; raises :class:`CheckpointError` if bad.

    Every corruption mode a crashed or interrupted writer can produce —
    unreadable file, truncated or garbled JSON, a document of the wrong
    shape, an unknown version — surfaces as a :class:`CheckpointError`
    whose message names the file and what is wrong with it, so ``repro
    stream --resume`` can report it and the caller can fall back to a
    fresh run.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    try:
        document = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON ({error}); the file is "
            f"corrupt or was truncated mid-write"
        ) from error
    if not isinstance(document, dict) or "version" not in document:
        raise CheckpointError(f"{path} is not a checkpoint document")
    version = document["version"]
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}, which is not "
            f"supported (expected {CHECKPOINT_VERSION})"
        )
    return document
