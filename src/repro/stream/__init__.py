"""repro.stream — online, incremental failure analysis with checkpoint/resume.

The batch pipeline (:func:`repro.core.pipeline.run_analysis`) needs the
complete syslog file and LSP archive before it can emit a single failure.
This package maintains the same §3–§4 methodology *incrementally*: an
event-time-ordered merge of the two channels drives per-link online state
machines, a watermark-driven matcher, online sanitisation, and flap
detection, so failures, match verdicts, and flap episodes are emitted as
soon as they are provably final — and never retracted.

The load-bearing guarantee, enforced by the test suite: on any dataset the
streaming engine's end-of-stream results equal ``run_analysis``'s exactly,
and serialising the engine state mid-stream (:mod:`repro.stream.checkpoint`)
then resuming changes nothing.

Quickstart::

    from repro import run_scenario, ScenarioConfig
    from repro.stream import stream_dataset

    dataset = run_scenario(ScenarioConfig(seed=7, duration_days=30))
    result = stream_dataset(dataset)
    print(len(result.syslog_failures), len(result.isis_failures))
"""

from repro.stream.engine import (
    StreamEngine,
    StreamOptions,
    StreamResult,
    stream_dataset,
)
from repro.stream.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.sources import (
    StreamEvent,
    ReorderBuffer,
    dataset_event_stream,
    isis_events,
    merge_events,
    syslog_events,
)

__all__ = [
    "StreamEngine",
    "StreamOptions",
    "StreamResult",
    "stream_dataset",
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
    "StreamEvent",
    "ReorderBuffer",
    "dataset_event_stream",
    "isis_events",
    "merge_events",
    "syslog_events",
]
