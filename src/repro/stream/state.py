"""Per-link online state machines replacing the batch timeline build.

Two machines, both exact incremental replicas of their batch
counterparts:

:class:`OnlineRunMerger`
    replicates :func:`repro.core.reconstruct.merge_messages`: per-link
    runs of same-direction messages collapse into link-level
    :class:`~repro.core.events.Transition` records.  A run closes the
    moment a message proves it over (direction change, or same direction
    outside the merge window) — or when the watermark passes the run's
    start plus the merge window, after which no message can join it.

:class:`OnlineTimeline`
    replicates :meth:`LinkStateTimeline.from_transitions` plus
    :func:`failures_from_timelines` for one link: it applies the
    ambiguity strategy transition by transition, merges contiguous
    equal-state segments on the fly, and emits a
    :class:`~repro.core.events.FailureEvent` the moment a complete
    (non-censored) DOWN span can no longer change — which for the
    paper's PREVIOUS_STATE strategy is as soon as the watermark passes
    the closing UP transition.

Both machines expose *frontiers*: provable lower bounds on the time of
anything they may still emit for a link.  Frontiers are what lets the
downstream matcher and flap detector finalise early without ever being
wrong.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.events import FailureEvent, LinkMessage, Transition
from repro.intervals.timeline import (
    DOWN,
    AmbiguityStrategy,
    LinkState,
    _window_state,
)


class OnlineRunMerger:
    """Incremental replica of ``merge_messages`` for one message category."""

    def __init__(self, merge_window: float, source: str) -> None:
        if merge_window < 0:
            raise ValueError("merge window must be non-negative")
        self.merge_window = merge_window
        self.source = source
        self._open_runs: Dict[str, List[LinkMessage]] = {}
        self.transition_count = 0

    def _close(self, run: List[LinkMessage]) -> Transition:
        self.transition_count += 1
        return Transition(
            time=run[0].time,
            link=run[0].link,
            direction=run[0].direction,
            source=self.source,
            reporters=frozenset(message.reporter for message in run),
            messages=tuple(run),
        )

    def feed(self, message: LinkMessage) -> Optional[Transition]:
        """Add one message; returns the transition it closed, if any."""
        run = self._open_runs.get(message.link)
        if (
            run is not None
            and message.direction == run[0].direction
            and message.time - run[0].time <= self.merge_window
        ):
            run.append(message)
            return None
        self._open_runs[message.link] = [message]
        return self._close(run) if run is not None else None

    def advance(self, watermark: float) -> List[Transition]:
        """Close every run no future message (time >= watermark) can join."""
        closed: List[Transition] = []
        for link in sorted(self._open_runs):
            run = self._open_runs[link]
            if watermark > run[0].time + self.merge_window:
                closed.append(self._close(run))
                del self._open_runs[link]
        return closed

    def frontier(self, link: str, watermark: float) -> float:
        """Lower bound on the time of any future transition on ``link``."""
        run = self._open_runs.get(link)
        return min(run[0].time, watermark) if run is not None else watermark

    @property
    def open_run_count(self) -> int:
        return len(self._open_runs)

    @property
    def open_runs(self) -> Dict[str, List[LinkMessage]]:
        """The open runs, exposed for checkpointing."""
        return self._open_runs


class OnlineTimeline:
    """Incremental replica of the batch timeline build for one link.

    State mirrors the loop variables of ``from_transitions`` (``cursor``,
    ``state``, ``last_message_time``) plus the one piece of deferred
    bookkeeping the batch code does afterwards: the *tail*, the last
    merged constant-state segment, which stays open until a
    different-state segment (or the horizon) seals it.  Sealed DOWN
    tails that touch neither horizon edge become failures.
    """

    def __init__(
        self,
        link: str,
        horizon_start: float,
        horizon_end: float,
        strategy: AmbiguityStrategy,
        source: str,
    ) -> None:
        self.link = link
        self.horizon_start = horizon_start
        self.horizon_end = horizon_end
        self.strategy = strategy
        self.source = source

        self.cursor = horizon_start
        self.state = LinkState.UP
        self.last_message_time: Optional[float] = None
        #: The unfinalised merged segment, or None ((start, end, state));
        #: invariant: tail.end == cursor.
        self.tail: Optional[Tuple[float, float, LinkState]] = None
        #: Same-time reorder buffer: transitions at pending_time.
        self.pending: List[Transition] = []
        self.pending_time: Optional[float] = None
        #: (time, direction) -> Transition, for failure attachment.
        self.index: Dict[Tuple[float, str], Transition] = {}
        self.anomaly_count = 0
        self.flushed = False
        #: Finalised failures awaiting collection by the engine.
        self.emitted: List[FailureEvent] = []

    # -------------------------------------------------------------- feed
    def feed(self, transition: Transition) -> None:
        """Apply one link transition (must arrive in time order)."""
        time = transition.time
        if not self.horizon_start <= time < self.horizon_end:
            return
        if self.pending_time is not None and time < self.pending_time:
            raise ValueError(
                f"transition at {time} precedes pending time {self.pending_time}"
            )
        if self.pending_time is not None and time > self.pending_time:
            self._release_pending()
        self.pending_time = time
        self.pending.append(transition)
        self.index[(time, transition.direction)] = transition

    def _release_pending(self) -> None:
        # The batch build sorts (time, direction) pairs, so equal-time
        # transitions apply down-before-up regardless of arrival order.
        self.pending.sort(key=lambda t: t.direction)
        for transition in self.pending:
            self._apply(transition.time, transition.direction)
        self.pending = []
        self.pending_time = None

    def _apply(self, time: float, direction: str) -> None:
        new_state = LinkState.DOWN if direction == DOWN else LinkState.UP
        if new_state == self.state:
            if self.last_message_time is None:
                self.last_message_time = time
                return
            self.anomaly_count += 1
            window = _window_state(self.strategy, self.state)
            if window != self.state:
                self._append(self.cursor, self.last_message_time, self.state)
                self._append(self.last_message_time, time, window)
                self.cursor = time
            self.last_message_time = time
        else:
            self._append(self.cursor, time, self.state)
            self.cursor = time
            self.state = new_state
            self.last_message_time = time

    # ----------------------------------------------------- segment merge
    def _append(self, start: float, end: float, state: LinkState) -> None:
        if start == end:
            return
        if (
            self.tail is not None
            and self.tail[2] == state
            and self.tail[1] == start
        ):
            self.tail = (self.tail[0], end, state)
            return
        if self.tail is not None:
            self._seal_tail()
        self.tail = (start, end, state)

    def _seal_tail(self) -> None:
        assert self.tail is not None
        start, end, state = self.tail
        self.tail = None
        if (
            state is LinkState.DOWN
            and start > self.horizon_start
            and end < self.horizon_end
        ):
            self.emitted.append(
                FailureEvent(
                    link=self.link,
                    start=start,
                    end=end,
                    source=self.source,
                    start_transition=self.index.get((start, "down")),
                    end_transition=self.index.get((end, "up")),
                )
            )
        # Future span boundaries all lie at or after this segment's end.
        stale = [key for key in self.index if key[0] < end]
        for key in stale:
            del self.index[key]

    # ----------------------------------------------------------- advance
    def advance(self, watermark: float) -> None:
        """Finalise everything the watermark proves immutable."""
        if self.pending_time is not None and watermark > self.pending_time:
            self._release_pending()
        if (
            self.tail is not None
            and self.tail[2] != self.state
            and watermark > self.cursor
            and not self._tail_can_still_grow()
        ):
            self._seal_tail()

    def _tail_can_still_grow(self) -> bool:
        # A future ambiguity window starting exactly at the tail's end
        # could merge into it — only when the strategy forces windows to
        # the tail's state and the last message sits at the cursor.
        assert self.tail is not None
        return (
            _window_state(self.strategy, self.state) == self.tail[2]
            and self.last_message_time == self.cursor
        )

    def flush(self) -> None:
        """End of stream: close the final segment at the horizon edge."""
        if self.flushed:
            return
        self.flushed = True
        if self.pending:
            self._release_pending()
        self.pending_time = None
        self._append(self.cursor, self.horizon_end, self.state)
        self.cursor = self.horizon_end
        if self.tail is not None:
            self._seal_tail()

    def collect(self) -> List[FailureEvent]:
        """Drain finalised failures (engine calls after feed/advance)."""
        if not self.emitted:
            return []
        out = self.emitted
        self.emitted = []
        return out

    # ---------------------------------------------------------- frontier
    def down_frontier(self) -> float:
        """Lower bound on the start of any failure still to be emitted."""
        frontier = math.inf
        if self.tail is not None and self.tail[2] is LinkState.DOWN:
            frontier = min(frontier, self.tail[0])
        if self.state is LinkState.DOWN:
            if (
                self.tail is not None
                and self.tail[2] is LinkState.DOWN
                and self.tail[1] == self.cursor
            ):
                frontier = min(frontier, self.tail[0])
            else:
                frontier = min(frontier, self.cursor)
        if self.pending_time is not None:
            frontier = min(frontier, self.pending_time)
        if (
            self.strategy is not AmbiguityStrategy.PREVIOUS_STATE
            and self.last_message_time is not None
        ):
            # Non-default strategies can open DOWN windows reaching back
            # to the last message.
            frontier = min(frontier, self.last_message_time)
        return frontier
