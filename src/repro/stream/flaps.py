"""Online sanitisation (§4.2) and flap detection (§4.1).

:class:`OnlineSanitizer` applies the batch cleaning rules as failures
are emitted, with the one genuinely temporal rule deferred: a syslog
failure at or above the 24 h threshold is held until the watermark
passes its end plus the ticket slack — the horizon inside which a NOC
ticket corroborating it could still close — before the ticket archive is
consulted.  Listener-outage masking is immediate: the listener's outage
log for the elapsed portion of the campaign is already final when the
failure ends.  Per-link release order is preserved (a held long failure
queues everything behind it on its link) so downstream consumers see
per-link failure streams in start order.

:class:`OnlineFlapDetector` replicates the ten-minute rule of §4.1
(:func:`repro.core.flapping.detect_flap_episodes`): a run of sanitised
IS-IS failures closes into an episode once the channel's frontier proves
no further failure can start within the gap threshold of the run's last
end.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.core.events import FailureEvent
from repro.core.flapping import FlapEpisode
from repro.core.sanitize import (
    KEEP,
    KEEP_VERIFIED,
    SanitizationConfig,
    SanitizationReport,
    apply_disposition,
    classify_failure,
)
from repro.intervals import IntervalSet
from repro.ticketing import TicketSystem


class OnlineSanitizer:
    """Streaming replica of :func:`repro.core.sanitize.sanitize_failures`."""

    def __init__(
        self,
        listener_outages: IntervalSet,
        tickets: Optional[TicketSystem],
        config: SanitizationConfig,
    ) -> None:
        self.listener_outages = listener_outages
        self.tickets = tickets
        self.config = config
        self.report = SanitizationReport()
        #: Per-link FIFO of failures awaiting a decision.
        self.held: Dict[str, Deque[FailureEvent]] = {}

    def _decidable(self, failure: FailureEvent, watermark: float) -> bool:
        if self.tickets is None:
            return True
        if failure.duration < self.config.long_failure_threshold:
            return True
        # The ticket horizon: a corroborating ticket can open/close up to
        # `ticket_slack` after the outage; only then is absence decisive.
        return watermark > failure.end + self.config.ticket_slack

    def feed(self, failure: FailureEvent, watermark: float) -> List[FailureEvent]:
        """Add one failure; returns the kept failures released by it."""
        queue = self.held.get(failure.link)
        if queue is None:
            queue = self.held[failure.link] = deque()
        queue.append(failure)
        return self._drain_link(failure.link, watermark)

    def _drain_link(self, link: str, watermark: float) -> List[FailureEvent]:
        queue = self.held.get(link)
        released: List[FailureEvent] = []
        while queue and self._decidable(queue[0], watermark):
            failure = queue.popleft()
            disposition = classify_failure(
                failure, self.listener_outages, self.tickets, self.config
            )
            apply_disposition(self.report, failure, disposition)
            if disposition in (KEEP, KEEP_VERIFIED):
                released.append(failure)
        if queue is not None and not queue:
            del self.held[link]
        return released

    def advance(self, watermark: float) -> List[FailureEvent]:
        """Release everything whose ticket horizon has closed."""
        released: List[FailureEvent] = []
        for link in sorted(self.held):
            released.extend(self._drain_link(link, watermark))
        return released

    def flush(self) -> List[FailureEvent]:
        return self.advance(math.inf)

    def held_frontier(self, link: str) -> float:
        """Lower bound on the start of any held (undecided) failure."""
        queue = self.held.get(link)
        return queue[0].start if queue else math.inf

    @property
    def held_count(self) -> int:
        return sum(len(queue) for queue in self.held.values())

    def finalized_report(self) -> SanitizationReport:
        """The report in the batch pass's canonical (start, link) order."""
        report = SanitizationReport()
        key = lambda f: (f.start, f.link)  # noqa: E731
        report.kept = sorted(self.report.kept, key=key)
        report.removed_listener_overlap = sorted(
            self.report.removed_listener_overlap, key=key
        )
        report.removed_unverified_long = sorted(
            self.report.removed_unverified_long, key=key
        )
        report.verified_long = sorted(self.report.verified_long, key=key)
        return report


class _FlapRun:
    """A growing run of rapid consecutive failures on one link."""

    __slots__ = ("start", "end", "count")

    def __init__(self, failure: FailureEvent) -> None:
        self.start = failure.start
        self.end = failure.end
        self.count = 1


class OnlineFlapDetector:
    """Streaming replica of :func:`detect_flap_episodes` (ten-minute rule)."""

    def __init__(self, gap_threshold: float) -> None:
        if gap_threshold <= 0:
            raise ValueError("gap threshold must be positive")
        self.gap_threshold = gap_threshold
        self.runs: Dict[str, _FlapRun] = {}
        self.episodes: List[FlapEpisode] = []

    def feed(self, failure: FailureEvent) -> None:
        """Add one sanitised failure (per-link start order required)."""
        run = self.runs.get(failure.link)
        if run is not None and failure.start - run.end < self.gap_threshold:
            run.end = failure.end
            run.count += 1
            return
        if run is not None:
            self._close(failure.link, run)
        self.runs[failure.link] = _FlapRun(failure)

    def _close(self, link: str, run: _FlapRun) -> None:
        if run.count >= 2:
            self.episodes.append(FlapEpisode(link, run.start, run.end, run.count))

    def advance(self, frontier: Callable[[str], float]) -> None:
        """Close every run no future failure can extend.

        ``frontier(link)`` bounds the start of any sanitised failure the
        channel may still emit on ``link``; a run is over once that bound
        reaches its last end plus the gap threshold.
        """
        for link in sorted(self.runs):
            run = self.runs[link]
            if frontier(link) >= run.end + self.gap_threshold:
                self._close(link, run)
                del self.runs[link]

    def flush(self) -> None:
        for link in sorted(self.runs):
            self._close(link, self.runs[link])
        self.runs.clear()

    def result(self) -> List[FlapEpisode]:
        """Episodes in the batch detector's canonical (start, link) order."""
        return sorted(self.episodes, key=lambda e: (e.start, e.link))

    @property
    def open_run_count(self) -> int:
        return len(self.runs)
