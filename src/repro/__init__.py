"""repro — a reproduction of Turner et al., "A Comparison of Syslog and
IS-IS for Network Failure Analysis" (IMC 2013).

The library has two halves:

* a **measurement-environment simulator** (:mod:`repro.topology`,
  :mod:`repro.isis`, :mod:`repro.syslog`, :mod:`repro.simulation`,
  :mod:`repro.ticketing`) standing in for the proprietary CENIC traces, and
* the **analysis methodology** (:mod:`repro.core`) that reconstructs and
  compares failures from the two observation channels.

Quickstart::

    from repro import ScenarioConfig, run_scenario, run_analysis

    dataset = run_scenario(ScenarioConfig(seed=7, duration_days=60))
    result = run_analysis(dataset)
    print(len(result.syslog_failures), len(result.isis_failures))

See ``examples/`` for complete walk-throughs and ``benchmarks/`` for the
code regenerating every table and figure of the paper.
"""

from repro.core.pipeline import AnalysisOptions, AnalysisResult, run_analysis
from repro.simulation.dataset import Dataset
from repro.simulation.scenario import ScenarioConfig, ScenarioRunner, run_scenario

__version__ = "1.0.0"

__all__ = [
    "AnalysisOptions",
    "AnalysisResult",
    "run_analysis",
    "Dataset",
    "ScenarioConfig",
    "ScenarioRunner",
    "run_scenario",
    "__version__",
]
