"""Deterministic work partitioning for the parallel pipeline.

Every function here is a pure function of its inputs — shard boundaries
never depend on worker count timing, machine load, or anything else that
varies between runs — because the byte-identity contract starts with
giving every run the same shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class LogSegment:
    """One line-aligned piece of a log file.

    ``text`` never contains a partial line: segments cut immediately
    after a newline, and the newline itself is dropped from the preceding
    segment (the final segment keeps any trailing newline).  ``line_base``
    is the number of lines before the segment and ``offset_base`` the
    byte offset of its first character, so drop-ledger entries produced
    while parsing the segment carry file-global coordinates.
    """

    text: str
    line_base: int
    offset_base: int


def segment_log_text(text: str, shard_count: int) -> List[LogSegment]:
    """Split log text into at most ``shard_count`` line-aligned segments.

    Boundaries aim at equal byte shares and advance to the next newline,
    so a line is never split across segments.  Concatenating the
    segments' lines reproduces the whole file's lines with the same line
    numbers and byte offsets — the property
    :func:`repro.parallel.merge.merge_parsed_segments` relies on.
    """
    if shard_count < 1:
        raise ValueError("shard count must be positive")
    if not text:
        return []
    boundaries = [0]
    for i in range(1, shard_count):
        target = (len(text) * i) // shard_count
        newline = text.find("\n", target)
        cut = len(text) if newline < 0 else newline + 1
        if cut > boundaries[-1] and cut < len(text):
            boundaries.append(cut)
    boundaries.append(len(text))

    segments: List[LogSegment] = []
    for start, end in zip(boundaries, boundaries[1:]):
        # Drop the trailing newline from every non-final segment: the
        # parser treats a trailing newline as starting one more (empty)
        # line, which would shift line numbering of the next segment.
        last = end < len(text)
        segment_text = text[start : end - 1] if last else text[start:end]
        segments.append(
            LogSegment(
                text=segment_text,
                line_base=text.count("\n", 0, start),
                offset_base=start,
            )
        )
    return segments


def index_ranges(total: int, shard_count: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into at most ``shard_count`` balanced ranges.

    Returns ``(start, stop)`` pairs covering ``0..total`` exactly once,
    each within one item of the others in size.  Empty ranges are never
    returned.
    """
    if shard_count < 1:
        raise ValueError("shard count must be positive")
    if total <= 0:
        return []
    count = min(shard_count, total)
    base, extra = divmod(total, count)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for i in range(count):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def chunk_links(links: Sequence[T], shard_count: int) -> List[List[T]]:
    """Partition an ordered link list into contiguous chunks.

    The caller passes links in sorted order; chunk boundaries are then a
    pure function of ``(len(links), shard_count)``.  The downstream merge
    re-sorts everything by canonical keys, so chunking affects only load
    balance, never results.
    """
    return [list(links[a:b]) for a, b in index_ranges(len(links), shard_count)]
