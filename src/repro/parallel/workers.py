"""Worker-side functions of the parallel pipeline.

Everything here must be importable at module top level (process pools
pickle functions by qualified name) and must communicate through small,
cheaply picklable values: the LSP decode stage in particular returns
compact tuples rather than :class:`~repro.isis.lsp.LinkStatePacket`
objects, whose pickling costs more than decoding them again would.

Workers are deliberately context-free: a syslog shard is parsed without
knowing what came before it, and a decode shard knows nothing of the
LSDB.  All sequencing — year-resolution context, LSDB acceptance, merge
order — happens in the parent (:mod:`repro.parallel.merge`), which is
what makes the results reproducible regardless of worker scheduling.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.events import (
    SOURCE_ISIS_IP,
    SOURCE_ISIS_IS,
    SOURCE_SYSLOG,
    FailureEvent,
    LinkMessage,
    Transition,
)
from repro.core.extract_isis import IsisExtractionConfig
from repro.core.extract_syslog import SyslogExtractionConfig
from repro.core.flapping import FlapEpisode, detect_flap_episodes
from repro.core.matching import (
    FailureMatchResult,
    MatchConfig,
    TransitionCoverage,
    count_matching_reporters,
    match_failures,
)
from repro.core.reconstruct import (
    merge_messages,
    reconstruct_channel,
)
from repro.core.sanitize import (
    SanitizationConfig,
    SanitizationReport,
    sanitize_failures,
)
from repro.faults.ledger import IngestReport
from repro.intervals import IntervalSet
from repro.intervals.timeline import LinkStateTimeline
from repro.isis.lsp import LinkStatePacket
from repro.isis.mrt import MrtDumpReader
from repro.syslog.collector import ParsedSegment, SyslogCollector
from repro.ticketing import TicketSystem, TroubleTicket

#: A decoded LSP reduced to what the listener replay consumes:
#: ``(time, system_id, pseudonode, fragment, sequence_number, is_purge,
#: neighbor_system_ids, (prefix, prefix_length) pairs)``.
CompactLsp = Tuple[
    float,
    str,
    int,
    int,
    int,
    bool,
    Tuple[str, ...],
    Tuple[Tuple[int, int], ...],
]


def parse_syslog_shard(
    text: str, line_base: int, offset_base: int, ingest: str = "scalar"
) -> Tuple[ParsedSegment, IngestReport]:
    """Parse one log segment without its predecessors' context.

    Always lenient: in a strict run the parent re-parses any segment with
    drops sequentially (with real context) so the first error surfaces
    exactly as a sequential run would raise it.  The returned report is
    shard-local; the parent folds accepted shards' reports into the run
    ledger in shard order.  ``ingest="columnar"`` swaps in the vectorised
    engine of :mod:`repro.columnar`; the two produce identical segments
    and ledgers on every input.
    """
    if ingest == "columnar":
        from repro.columnar import parse_log_segment_columnar as parse_segment
    else:
        parse_segment = SyslogCollector.parse_log_segment
    report = IngestReport()
    segment = parse_segment(
        text,
        strict=False,
        report=report,
        after=0.0,
        line_base=line_base,
        offset_base=offset_base,
    )
    return segment, report


def decode_lsp_shard(
    records: List[Tuple[float, bytes]], start_index: int
) -> Tuple[List[CompactLsp], List[Tuple[int, str]]]:
    """Decode one range of LSP records into compact replay tuples.

    Returns ``(compact_records, errors)`` where ``errors`` carries
    ``(global_record_index, message)`` for every undecodable record —
    the parent decides (by mode) whether those become ledger entries or
    the run's first exception.
    """
    compact: List[CompactLsp] = []
    errors: List[Tuple[int, str]] = []
    for position, (time, raw) in enumerate(records):
        try:
            lsp = LinkStatePacket.unpack(raw)
        except (ValueError, struct.error) as error:
            errors.append((start_index + position, str(error)))
            continue
        compact.append(
            (
                time,
                lsp.lsp_id.system_id,
                lsp.lsp_id.pseudonode,
                lsp.lsp_id.fragment,
                lsp.sequence_number,
                lsp.is_purge(),
                tuple(neighbor.system_id for neighbor in lsp.is_neighbors),
                tuple(
                    (prefix.prefix, prefix.prefix_length)
                    for prefix in lsp.ip_prefixes
                ),
            )
        )
    return compact, errors


def decode_dump_shard(
    path: str, start_offset: int, start_index: int, count: int
) -> Tuple[List[CompactLsp], List[Tuple[int, str]]]:
    """File-based variant of :func:`decode_lsp_shard`.

    The worker reads its own record range straight from the archive
    (via :meth:`repro.isis.mrt.MrtDumpReader.read_range`), so the parent
    ships only ``(path, offset, index, count)`` instead of payload bytes.
    """
    return decode_lsp_shard(
        MrtDumpReader.read_range(path, start_offset, count), start_index
    )


@dataclass(frozen=True)
class LinkChunkContext:
    """Everything shared by all links in a phase-5 chunk."""

    horizon_start: float
    horizon_end: float
    syslog: SyslogExtractionConfig
    isis: IsisExtractionConfig
    matching: MatchConfig
    sanitization: SanitizationConfig
    flap_gap_threshold: float
    listener_outages: IntervalSet


@dataclass(frozen=True)
class LinkWorkItem:
    """One link's inputs to the per-link funnel.

    Message lists are the link's slice of the globally sorted message
    streams — i.e. already in the order the sequential per-link funnel
    would see them.  ``tickets`` is the link's slice of the ticket
    system, or ``None`` for a channel that skips ticket checks.
    """

    link: str
    is_single: bool
    syslog_isis: Tuple[LinkMessage, ...] = ()
    syslog_physical: Tuple[LinkMessage, ...] = ()
    isis_is: Tuple[LinkMessage, ...] = ()
    isis_ip: Tuple[LinkMessage, ...] = ()
    tickets: Optional[Tuple[TroubleTicket, ...]] = None


@dataclass
class LinkResult:
    """Everything the per-link funnel produced for one link."""

    link: str
    syslog_isis_transitions: List[Transition] = field(default_factory=list)
    syslog_physical_transitions: List[Transition] = field(default_factory=list)
    isis_is_transitions: List[Transition] = field(default_factory=list)
    isis_ip_transitions: List[Transition] = field(default_factory=list)
    syslog_timeline: Optional[LinkStateTimeline] = None
    isis_timeline: Optional[LinkStateTimeline] = None
    syslog_failures: List[FailureEvent] = field(default_factory=list)
    isis_failures: List[FailureEvent] = field(default_factory=list)
    syslog_sanitized: Optional[SanitizationReport] = None
    isis_sanitized: Optional[SanitizationReport] = None
    match: Optional[FailureMatchResult] = None
    coverage: Optional[TransitionCoverage] = None
    flap_episodes: List[FlapEpisode] = field(default_factory=list)


def _process_link(item: LinkWorkItem, context: LinkChunkContext) -> LinkResult:
    """Run the sequential per-link funnel for one link.

    Each stage here is exactly the sequential pipeline's computation
    restricted to one link; the merge step reassembles global order.
    """
    result = LinkResult(link=item.link)
    result.syslog_isis_transitions = merge_messages(
        list(item.syslog_isis), context.syslog.merge_window, SOURCE_SYSLOG
    )
    result.syslog_physical_transitions = merge_messages(
        list(item.syslog_physical), context.syslog.merge_window, SOURCE_SYSLOG
    )
    result.isis_is_transitions = merge_messages(
        list(item.isis_is), context.isis.merge_window, SOURCE_ISIS_IS
    )
    result.isis_ip_transitions = merge_messages(
        list(item.isis_ip), context.isis.merge_window, SOURCE_ISIS_IP
    )

    # Timeline universes mirror the sequential extractors exactly: the
    # syslog channel reconstructs state only for single-link adjacencies,
    # the IS-IS channel for every link its IS transitions name plus all
    # single links (in practice the same set, see §3.4).
    if item.is_single:
        timelines, result.syslog_failures = reconstruct_channel(
            result.syslog_isis_transitions,
            context.horizon_start,
            context.horizon_end,
            strategy=context.syslog.strategy,
            links=[item.link],
            source=SOURCE_SYSLOG,
        )
        result.syslog_timeline = timelines[item.link]
    if item.is_single or result.isis_is_transitions:
        timelines, result.isis_failures = reconstruct_channel(
            result.isis_is_transitions,
            context.horizon_start,
            context.horizon_end,
            strategy=context.isis.strategy,
            links=[item.link],
            source=SOURCE_ISIS_IS,
        )
        result.isis_timeline = timelines[item.link]

    tickets = (
        TicketSystem(item.tickets) if item.tickets is not None else None
    )
    result.syslog_sanitized = sanitize_failures(
        result.syslog_failures,
        context.listener_outages,
        tickets,
        context.sanitization,
    )
    result.isis_sanitized = sanitize_failures(
        result.isis_failures,
        context.listener_outages,
        tickets=None,
        config=context.sanitization,
    )

    result.match = match_failures(
        result.syslog_sanitized.kept,
        result.isis_sanitized.kept,
        context.matching,
    )
    result.coverage = count_matching_reporters(
        result.isis_is_transitions, list(item.syslog_isis), context.matching
    )
    result.flap_episodes = detect_flap_episodes(
        result.isis_sanitized.kept, context.flap_gap_threshold
    )
    return result


def process_link_chunk(
    items: List[LinkWorkItem], context: LinkChunkContext
) -> List[LinkResult]:
    """Run the per-link funnel for every link in one chunk."""
    return [_process_link(item, context) for item in items]
