"""The parallel pipeline orchestrator.

:func:`run_parallel_analysis` is ``run_analysis`` with the three
parallel axes swapped in (see the package docstring), structured as:

1. **Fan out ingestion** — syslog segments and LSP decode shards are all
   submitted to one process pool up front, so the two channels decode
   concurrently as well as sharded.
2. **Merge ingestion** (parent) — segment parses fold left-to-right
   under the context re-parse rule; compact LSP records replay through
   the listener-equivalent state machine.  Strict-mode errors surface
   here, in the sequential run's order: syslog parse errors first, then
   LSP decode errors.
3. **Classify** (parent) — entry/change classification is cheap dict
   lookups against the resolver, and keeping it in the parent avoids
   shipping the mined inventory to every worker.
4. **Fan out per-link analysis** — the per-link funnel (merge →
   timeline → failures → sanitise → match → coverage → flaps) runs over
   link chunks.
5. **Merge results** (parent) — canonical-key stable sorts and
   insertion-order dict rebuilds assemble the exact sequential
   :class:`~repro.core.pipeline.AnalysisResult`.

Workers only ever see picklable value objects; the resolver, the ticket
system, and the drop ledger stay in the parent.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import LinkMessage, failure_sort_key, message_sort_key
from repro.core.extract_isis import IsisExtraction, classify_changes
from repro.core.extract_syslog import SyslogExtraction, classify_entries
from repro.core.flapping import flap_intervals
from repro.core.links import LinkResolver
from repro.core.pipeline import AnalysisOptions, AnalysisResult
from repro.faults.ledger import IngestReport
from repro.parallel.merge import (
    collect_link_results,
    merge_coverage,
    merge_failures,
    merge_match_results,
    merge_parsed_segments,
    merge_sanitization,
    merge_transitions,
    ordered_timelines,
    replay_compact_records,
)
from repro.parallel.sharding import chunk_links, index_ranges, segment_log_text
from repro.parallel.workers import (
    CompactLsp,
    LinkChunkContext,
    LinkResult,
    LinkWorkItem,
    decode_lsp_shard,
    parse_syslog_shard,
    process_link_chunk,
)
from repro.simulation.dataset import Dataset

#: Chunks submitted per pool worker in the per-link phase: more chunks
#: than workers smooths out skew from flap-heavy links without changing
#: results (chunking is invisible after the merge).
_CHUNKS_PER_JOB = 4


def _group_by_link(
    messages: Sequence[LinkMessage],
) -> Dict[str, List[LinkMessage]]:
    grouped: Dict[str, List[LinkMessage]] = {}
    for message in messages:
        grouped.setdefault(message.link, []).append(message)
    return grouped


def _build_work_items(
    dataset: Dataset,
    resolver: LinkResolver,
    syslog_isis: Sequence[LinkMessage],
    syslog_physical: Sequence[LinkMessage],
    isis_is: Sequence[LinkMessage],
    isis_ip: Sequence[LinkMessage],
) -> List[LinkWorkItem]:
    """One work item per link, in sorted link order.

    The universe is every link any message stream names plus every
    single link (those get all-UP timelines even without messages, as
    the sequential extractors' ``links=`` parameters arrange).
    """
    single = {record.name for record in resolver.single_links()}
    by_link = {
        "syslog_isis": _group_by_link(syslog_isis),
        "syslog_physical": _group_by_link(syslog_physical),
        "isis_is": _group_by_link(isis_is),
        "isis_ip": _group_by_link(isis_ip),
    }
    links = set(single)
    for grouped in by_link.values():
        links.update(grouped)
    return [
        LinkWorkItem(
            link=link,
            is_single=link in single,
            syslog_isis=tuple(by_link["syslog_isis"].get(link, ())),
            syslog_physical=tuple(by_link["syslog_physical"].get(link, ())),
            isis_is=tuple(by_link["isis_is"].get(link, ())),
            isis_ip=tuple(by_link["isis_ip"].get(link, ())),
            tickets=tuple(dataset.tickets.tickets_for(link)),
        )
        for link in sorted(links)
    ]


def _assemble_syslog(
    entries_classified: Tuple[List[LinkMessage], List[LinkMessage], int, int],
    link_results: Sequence[LinkResult],
    resolver: LinkResolver,
) -> SyslogExtraction:
    result = SyslogExtraction()
    (
        result.isis_messages,
        result.physical_messages,
        result.unparsed_count,
        result.unresolved_count,
    ) = entries_classified
    result.isis_messages.sort(key=message_sort_key)
    result.physical_messages.sort(key=message_sort_key)
    result.isis_transitions = merge_transitions(
        [r.syslog_isis_transitions for r in link_results]
    )
    result.physical_transitions = merge_transitions(
        [r.syslog_physical_transitions for r in link_results]
    )
    single = {record.name for record in resolver.single_links()}
    timeline_transitions = [
        t for t in result.isis_transitions if t.link in single
    ]
    result.timelines = ordered_timelines(
        timeline_transitions,
        {
            r.link: r.syslog_timeline
            for r in link_results
            if r.syslog_timeline is not None
        },
        sorted(single),
    )
    result.failures = merge_failures(
        [r.syslog_failures for r in link_results]
    )
    return result


def _assemble_isis(
    changes_classified: Tuple[List[LinkMessage], List[LinkMessage], int, int],
    rejected_lsps: int,
    link_results: Sequence[LinkResult],
    resolver: LinkResolver,
) -> IsisExtraction:
    result = IsisExtraction()
    result.rejected_lsps = rejected_lsps
    (
        result.is_messages,
        result.ip_messages,
        result.multilink_skipped,
        result.unresolved_count,
    ) = changes_classified
    result.is_messages.sort(key=message_sort_key)
    result.ip_messages.sort(key=message_sort_key)
    result.is_transitions = merge_transitions(
        [r.isis_is_transitions for r in link_results]
    )
    result.ip_transitions = merge_transitions(
        [r.isis_ip_transitions for r in link_results]
    )
    result.timelines = ordered_timelines(
        result.is_transitions,
        {
            r.link: r.isis_timeline
            for r in link_results
            if r.isis_timeline is not None
        },
        [record.name for record in resolver.single_links()],
    )
    result.failures = merge_failures([r.isis_failures for r in link_results])
    return result


def run_parallel_analysis(
    dataset: Dataset,
    options: Optional[AnalysisOptions] = None,
    *,
    strict: bool = True,
    report: Optional[IngestReport] = None,
    jobs: int = 2,
    ingest: str = "scalar",
) -> AnalysisResult:
    """Run the complete methodology across a process pool.

    Byte-identical to :func:`repro.core.pipeline.run_analysis` with the
    same arguments — results, orderings, ledger, and (in strict mode)
    the exception raised on bad input.  ``jobs`` controls the pool width
    and shard counts; ``ingest`` the syslog parse engine used inside the
    workers (and for context re-parses); both affect wall-clock only.
    """
    if jobs < 1:
        raise ValueError("jobs must be positive")
    if ingest not in ("scalar", "columnar"):
        raise ValueError(f"unknown ingest engine {ingest!r}")
    if options is None:
        options = AnalysisOptions()
    if not strict and report is None:
        report = IngestReport()
    resolver = LinkResolver(dataset.inventory)
    horizon_start = dataset.analysis_start
    horizon_end = dataset.horizon_end

    segments = segment_log_text(dataset.syslog_text, jobs)
    lsp_ranges = index_ranges(len(dataset.lsp_records), jobs)

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        # Phase 1: both channels' shards go in together, so syslog
        # parsing and LSP decoding overlap in the pool.
        syslog_futures = [
            pool.submit(  # reprolint: dispatch
                parse_syslog_shard,
                segment.text,
                segment.line_base,
                segment.offset_base,
                ingest,
            )
            for segment in segments
        ]
        lsp_futures: List[
            Future[Tuple[List[CompactLsp], List[Tuple[int, str]]]]
        ] = [
            pool.submit(  # reprolint: dispatch
                decode_lsp_shard, dataset.lsp_records[start:stop], start
            )
            for start, stop in lsp_ranges
        ]

        # Phase 2: fold shards in source order.  Syslog errors surface
        # before LSP errors, as in the sequential run.
        entries = merge_parsed_segments(
            [
                (segment, parsed, shard_report)
                for segment, (parsed, shard_report) in zip(
                    segments, (f.result() for f in syslog_futures)
                )
            ],
            strict=strict,
            report=report,
            ingest=ingest,
        )
        compact: List[CompactLsp] = []
        decode_errors: List[Tuple[int, str]] = []
        for future in lsp_futures:
            shard_compact, shard_errors = future.result()
            compact.extend(shard_compact)
            decode_errors.extend(shard_errors)
        changes, rejected = replay_compact_records(
            compact,
            decode_errors,
            dataset.lsp_records,
            strict=strict,
            report=report,
        )

        # Phase 3: classification in the parent (resolver stays local).
        entries_classified = classify_entries(entries, resolver)
        changes_classified = classify_changes(changes, resolver)

        # Phase 4: per-link fan.  Items carry each link's slice of the
        # globally sorted message streams.
        syslog_isis = sorted(
            entries_classified[0], key=message_sort_key
        )
        syslog_physical = sorted(
            entries_classified[1], key=message_sort_key
        )
        isis_is = sorted(
            changes_classified[0], key=message_sort_key
        )
        isis_ip = sorted(
            changes_classified[1], key=message_sort_key
        )
        items = _build_work_items(
            dataset, resolver, syslog_isis, syslog_physical, isis_is, isis_ip
        )
        context = LinkChunkContext(
            horizon_start=horizon_start,
            horizon_end=horizon_end,
            syslog=options.syslog,
            isis=options.isis,
            matching=options.matching,
            sanitization=options.sanitization,
            flap_gap_threshold=options.flap_gap_threshold,
            listener_outages=dataset.listener_outages,
        )
        chunk_futures = [
            pool.submit(process_link_chunk, chunk, context)  # reprolint: dispatch
            for chunk in chunk_links(items, jobs * _CHUNKS_PER_JOB)
        ]
        link_results = collect_link_results(
            [future.result() for future in chunk_futures]
        )

    # Phase 5: merge per-link results into the sequential shapes.
    syslog = _assemble_syslog(entries_classified, link_results, resolver)
    isis = _assemble_isis(
        changes_classified, rejected, link_results, resolver
    )
    syslog_sanitized = merge_sanitization(
        [r.syslog_sanitized for r in link_results if r.syslog_sanitized]
    )
    isis_sanitized = merge_sanitization(
        [r.isis_sanitized for r in link_results if r.isis_sanitized]
    )
    failure_match = merge_match_results(
        [r.match for r in link_results if r.match]
    )
    coverage = merge_coverage(
        [r.coverage for r in link_results if r.coverage]
    )
    episodes = [
        episode for r in link_results for episode in r.flap_episodes
    ]
    episodes.sort(key=failure_sort_key)

    return AnalysisResult(
        resolver=resolver,
        syslog=syslog,
        isis=isis,
        syslog_sanitized=syslog_sanitized,
        isis_sanitized=isis_sanitized,
        failure_match=failure_match,
        coverage=coverage,
        flap_episodes=episodes,
        flap_intervals=flap_intervals(episodes, horizon_start=horizon_start),
        horizon_start=horizon_start,
        horizon_end=horizon_end,
        options=options,
        ingest=report,
    )
