"""Process-pool execution of the batch analysis pipeline.

The paper's pipeline is embarrassingly parallel in three places, and this
package exploits exactly those and nothing else:

1. **Syslog parsing** shards the log file into contiguous, line-aligned
   segments (:mod:`repro.parallel.sharding`).  The RFC 3164 year
   ambiguity makes each line's parse depend on the latest timestamp seen
   *before* it, so segments are parsed context-free in workers and the
   merge step (:mod:`repro.parallel.merge`) proves, per segment, that the
   missing context could not have changed the outcome — re-parsing the
   rare segment where it could have.
2. **LSP decoding** shards the archive by record ranges.  Decoding is
   context-free; only the listener replay is stateful, so workers return
   compact per-record tuples and the parent replays them through a
   listener-equivalent state machine.
3. **Per-link reconstruction** (merge → timeline → failures → sanitise →
   match → coverage → flaps) fans over a pool keyed by link and merges in
   sorted-link order.

The contract is byte-identity: ``run_analysis(dataset, jobs=N)`` returns
results indistinguishable from ``jobs=1`` — same lists in the same order,
same dict key order, same drop ledger, same floating-point sums (floats
are summed in the sequential order during the merge, never per-shard).
``docs/performance.md`` walks through the sharding model and the proof
obligations; ``tests/test_parallel_pipeline.py`` enforces them.
"""

from repro.parallel.pipeline import run_parallel_analysis
from repro.parallel.sharding import (
    chunk_links,
    index_ranges,
    segment_log_text,
)

__all__ = [
    "run_parallel_analysis",
    "segment_log_text",
    "index_ranges",
    "chunk_links",
]
