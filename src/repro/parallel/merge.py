"""Parent-side merging that makes sharded results byte-identical.

Each function here reassembles worker output into exactly what the
sequential pipeline would have produced, and documents why the
reassembly is exact.  Three kinds of argument recur:

* **Context re-parse** (syslog): a segment parsed without its
  predecessors' year-resolution context is accepted only when that
  context provably could not have changed a single line's outcome;
  otherwise the segment is re-parsed sequentially (rare — it requires
  the log to jump back in time across a shard boundary by more than the
  transport-skew slack, or a drop whose reason is context-dependent).
* **State replay** (IS-IS): decoding is context-free and sharded; the
  stateful part — LSDB acceptance and reachability diffing — is replayed
  in the parent over the workers' compact records, through a state
  machine equivalent to :class:`repro.isis.listener.IsisListener`.
* **Canonical-key stable sorts** (per-link results): every global list
  the sequential pipeline produces is ordered by a canonical key —
  ``(time, link)`` for transitions, ``(start, link)`` for failures and
  episodes — with ties only between items of the *same* link, in
  per-link processing order.  Concatenating per-link worker lists in any
  link order and stable-sorting by the canonical key therefore
  reproduces the sequential list exactly.  Float aggregates
  (:class:`~repro.core.sanitize.SanitizationReport` downtime sums) are
  properties computed over those lists, so merging the lists merges the
  sums with zero floating-point reassociation.
"""

from __future__ import annotations

import struct
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.events import (
    FailureEvent,
    Transition,
    failure_sort_key,
    transition_sort_key,
)
from repro.core.matching import FailureMatchResult, TransitionCoverage
from repro.core.sanitize import SanitizationReport
from repro.faults.ledger import CHANNEL_ISIS, CHANNEL_SYSLOG, IngestReport
from repro.intervals.timeline import LinkStateTimeline
from repro.isis.listener import ReachabilityChange, ReachabilityKind
from repro.isis.lsp import LinkStatePacket
from repro.parallel.sharding import LogSegment
from repro.parallel.workers import CompactLsp, LinkResult
from repro.syslog.collector import CollectedEntry, ParsedSegment, SyslogCollector
from repro.util.timefmt import _YEAR_RESOLUTION_SLACK

#: The one lenient drop reason whose verdict depends on parse context
#: (how far the log has progressed): everything else — malformed lines,
#: PRI range, impossible dates — is decided by the line alone.
_CONTEXT_DEPENDENT_REASON = "timestamp-out-of-range"


def segment_needs_reparse(
    latest: float,
    parsed: ParsedSegment,
    shard_report: IngestReport,
    *,
    strict: bool,
) -> bool:
    """Decide whether a context-free segment parse can be trusted.

    ``latest`` is the running maximum timestamp over everything before
    the segment (what a sequential parse would pass as ``after``).  The
    worker parsed with ``after=0.0``, so acceptance requires proving the
    missing context changes nothing:

    * Every timestamp the worker parsed must sit at or above
      ``latest - slack``.  Then (a) no line the worker parsed would have
      been rejected as out-of-range sequentially, and (b) the worker's
      chosen candidate year for each line lies in the sequential
      eligible set, whose minimum it therefore still is — the candidate
      sets only shrink from below as ``after`` grows.
    * In strict mode, any worker drop at all forces a sequential
      re-parse: the sequential run would have *raised* at that line, and
      the re-parse reproduces the exact exception.
    * In lenient mode, an out-of-range drop forces a re-parse: with the
      real (larger) ``after`` the candidate-year window extends further,
      so the line might parse sequentially.  All other drop reasons are
      line-local and keep their verdicts.
    """
    if parsed.min_parsed is not None and (
        latest > parsed.min_parsed + _YEAR_RESOLUTION_SLACK
    ):
        return True
    if strict:
        return shard_report.dropped() > 0
    return _CONTEXT_DEPENDENT_REASON in shard_report.reasons(CHANNEL_SYSLOG)


def merge_parsed_segments(
    shards: Sequence[Tuple[LogSegment, ParsedSegment, IngestReport]],
    *,
    strict: bool = True,
    report: Optional[IngestReport] = None,
    ingest: str = "scalar",
) -> List[CollectedEntry]:
    """Fold context-free segment parses into one sequential-order parse.

    ``shards`` must be in file order.  Accepted segments contribute their
    entries verbatim and their drop records in order; rejected ones are
    re-parsed with the true context (in strict mode this re-raises the
    sequential run's first error at its original line).  ``ingest``
    selects the engine for those re-parses; both engines raise and drop
    identically, so it affects wall-clock only.
    """
    if ingest == "columnar":
        from repro.columnar import parse_log_segment_columnar as parse_segment
    else:
        parse_segment = SyslogCollector.parse_log_segment
    entries: List[CollectedEntry] = []
    latest = 0.0
    for segment, parsed, shard_report in shards:
        if segment_needs_reparse(latest, parsed, shard_report, strict=strict):
            parsed = parse_segment(
                segment.text,
                strict=strict,
                report=report,
                after=latest,
                line_base=segment.line_base,
                offset_base=segment.offset_base,
            )
        elif report is not None:
            report.merge_from(shard_report)
        entries.extend(parsed.entries)
        latest = max(latest, parsed.latest)
    return entries


def replay_compact_records(
    compact: Sequence[CompactLsp],
    errors: Sequence[Tuple[int, str]],
    raw_records: Sequence[Tuple[float, bytes]],
    *,
    strict: bool = True,
    report: Optional[IngestReport] = None,
) -> Tuple[List[ReachabilityChange], int]:
    """Replay sharded decode output through a listener-equivalent machine.

    Returns ``(changes, rejected_count)`` exactly as
    :func:`repro.core.extract_isis.replay_lsp_records` would.  In strict
    mode the first undecodable record is re-decoded here so the original
    exception (type, message, traceback origin) is raised, not a
    description of it.
    """
    ordered_errors = sorted(errors)
    if ordered_errors:
        first_index, first_message = ordered_errors[0]
        if strict:
            LinkStatePacket.unpack(raw_records[first_index][1])
            raise ValueError(first_message)
        if report is not None:
            for index, message in ordered_errors:
                report.record(
                    CHANNEL_ISIS, "lsp-decode", index=index, sample=message
                )

    # Listener-equivalent state: per origin, the stored fragments keyed
    # by (pseudonode, fragment) — the tail of the LspId sort key, since
    # all of one origin's fragments share its system ID — and the
    # last-diffed aggregate reachability.
    fragments_by_origin: Dict[
        str, Dict[Tuple[int, int], CompactLsp]
    ] = {}
    origin_state: Dict[
        str, Tuple[FrozenSet[str], FrozenSet[Tuple[int, int]]]
    ] = {}
    changes: List[ReachabilityChange] = []
    rejected = 0

    for record in compact:
        (time, origin, pseudonode, fragment, sequence, purge, _, _) = record
        fragments = fragments_by_origin.setdefault(origin, {})
        stored = fragments.get((pseudonode, fragment))
        if stored is not None:
            stored_sequence, stored_purge = stored[4], stored[5]
            if sequence < stored_sequence:
                rejected += 1
                continue
            if sequence == stored_sequence and not (
                purge and not stored_purge
            ):
                rejected += 1
                continue
        fragments[(pseudonode, fragment)] = record

        if purge:
            new_is: FrozenSet[str] = frozenset()
            new_ip: FrozenSet[Tuple[int, int]] = frozenset()
        else:
            neighbors: Set[str] = set()
            prefixes: Set[Tuple[int, int]] = set()
            for key in sorted(fragments):
                stored_record = fragments[key]
                neighbors.update(stored_record[6])
                prefixes.update(stored_record[7])
            new_is = frozenset(neighbors)
            new_ip = frozenset(prefixes)

        previous = origin_state.get(origin)
        origin_state[origin] = (new_is, new_ip)
        if previous is None:
            # First contact seeds the view silently, as the listener does.
            continue
        previous_is, previous_ip = previous
        for neighbor_id in sorted(previous_is - new_is):
            changes.append(
                ReachabilityChange(
                    time, origin, ReachabilityKind.IS, "down", neighbor_id
                )
            )
        for neighbor_id in sorted(new_is - previous_is):
            changes.append(
                ReachabilityChange(
                    time, origin, ReachabilityKind.IS, "up", neighbor_id
                )
            )
        for prefix in sorted(previous_ip - new_ip):
            changes.append(
                ReachabilityChange(
                    time, origin, ReachabilityKind.IP, "down", prefix
                )
            )
        for prefix in sorted(new_ip - previous_ip):
            changes.append(
                ReachabilityChange(
                    time, origin, ReachabilityKind.IP, "up", prefix
                )
            )
    return changes, rejected


def merge_transitions(
    per_link: Sequence[List[Transition]],
) -> List[Transition]:
    """Concatenate per-link transition lists into global transition order."""
    merged = [transition for items in per_link for transition in items]
    merged.sort(key=transition_sort_key)
    return merged


def merge_failures(
    per_link: Sequence[List[FailureEvent]],
) -> List[FailureEvent]:
    """Concatenate per-link failure lists into global failure order."""
    merged = [failure for items in per_link for failure in items]
    merged.sort(key=failure_sort_key)
    return merged


def merge_sanitization(
    reports: Sequence[SanitizationReport],
) -> SanitizationReport:
    """Fold per-link sanitisation reports into the global report.

    The sequential pass appends each failure to its disposition list in
    ``(start, link)`` input order, so every list merges by canonical-key
    stable sort; the downtime-hour sums are properties over the lists.
    """
    merged = SanitizationReport()
    merged.kept = merge_failures([r.kept for r in reports])
    merged.removed_listener_overlap = merge_failures(
        [r.removed_listener_overlap for r in reports]
    )
    merged.removed_unverified_long = merge_failures(
        [r.removed_unverified_long for r in reports]
    )
    merged.verified_long = merge_failures([r.verified_long for r in reports])
    return merged


def merge_match_results(
    results: Sequence[FailureMatchResult],
) -> FailureMatchResult:
    """Fold per-link match results into the global result.

    Matching never crosses links, so the global greedy pass decomposes
    exactly into the per-link passes; all five lists come back in the
    sequential pass's ``(start, link)`` orders.
    """
    merged = FailureMatchResult()
    merged.pairs = [pair for r in results for pair in r.pairs]
    merged.pairs.sort(key=lambda pair: (pair[0].start, pair[0].link))
    merged.only_a = merge_failures([r.only_a for r in results])
    merged.only_b = merge_failures([r.only_b for r in results])
    merged.partial_a = merge_failures([r.partial_a for r in results])
    merged.partial_b = merge_failures([r.partial_b for r in results])
    return merged


def merge_coverage(
    coverages: Sequence[TransitionCoverage],
) -> TransitionCoverage:
    """Fold per-link Table-3 coverage into the global tally."""
    merged = TransitionCoverage()
    for coverage in coverages:
        for direction in ("down", "up"):
            for bucket in (0, 1, 2):
                merged.counts[direction][bucket] += coverage.counts[
                    direction
                ][bucket]
        merged.unmatched.extend(coverage.unmatched)
    merged.unmatched.sort(key=transition_sort_key)
    return merged


def ordered_timelines(
    transitions: Sequence[Transition],
    timelines: Dict[str, LinkStateTimeline],
    trailing_links: Sequence[str],
) -> Dict[str, LinkStateTimeline]:
    """Rebuild a timelines dict in the sequential (sorted-link) order.

    :func:`repro.core.reconstruct.reconstruct_channel` covers the links
    seen in the transition stream plus the ``links`` parameter's
    leftovers, inserting in sorted-link order; dict iteration order is
    observable downstream, so the merge replicates both the membership
    and the order exactly.
    """
    selected = {transition.link for transition in transitions}
    selected.update(trailing_links)
    return {link: timelines[link] for link in sorted(selected)}


def collect_link_results(
    chunk_results: Sequence[List[LinkResult]],
) -> List[LinkResult]:
    """Flatten chunked worker output back into sorted-link order.

    Chunks are contiguous slices of the sorted link list, gathered in
    submission order, so plain concatenation is already link-sorted.
    """
    return [result for chunk in chunk_results for result in chunk]  # reprolint: disable=M101 -- chunks are contiguous slices of the sorted link list gathered in submission order; concatenation is already link-sorted
