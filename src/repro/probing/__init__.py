"""Active probing — the paper's fifth data source, for isolation detection.

The authors' earlier study used active probes as one of its ground-truth
sources; the intro lists probing among the tools pressed into failure
analysis.  Probes answer a different question than the per-link channels:
not "which link failed" but "can this customer be reached right now" —
precisely §4.4's customer-isolation metric, measured directly instead of
being reconstructed from multi-link state.

:class:`~repro.probing.prober.ActiveProber` sends a probe from the
measurement vantage to every customer site on a fixed period (with packet
loss, so single losses need confirmation);
:func:`~repro.probing.prober.reconstruct_outages` turns the responses
into per-site outage intervals with the prober's quantisation error.
"""

from repro.probing.prober import (
    ActiveProber,
    ProbeParameters,
    ProbeSample,
    reconstruct_outages,
    reconstruct_outages_stream,
)

__all__ = [
    "ActiveProber",
    "ProbeParameters",
    "ProbeSample",
    "reconstruct_outages",
    "reconstruct_outages_stream",
]
