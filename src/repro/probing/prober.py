"""Periodic reachability probing of customer sites.

The prober lives at the measurement vantage (the same hub hosting the
collector and listener) and pings every customer site each period.  Truth
comes from the dataset's ground-truth reachability: a probe *can* succeed
exactly when some attachment router of the site is reachable from the
vantage.  On top of that sit the channel's own failure modes:

* **probe loss** — a reachable site can still drop a probe (transient
  congestion), so a single missed reply must not be declared an outage;
  the standard remedy, implemented here, requires ``confirmations``
  consecutive misses;
* **quantisation** — outage edges are only resolvable to the probing
  period, and outages shorter than a period can vanish entirely;
* the confirmation requirement **delays detection** by
  ``(confirmations - 1)`` periods and makes short outages harder to see.

This channel measures *site isolation* directly — the §4.4 metric — so
its output is per-site outage intervals, comparable against
:func:`repro.core.isolation.compute_isolation`'s per-channel results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.intervals import Interval, IntervalSet
from repro.simulation.dataset import Dataset
from repro.topology.connectivity import unreachable_intervals
from repro.util.rand import child_rng


@dataclass(frozen=True)
class ProbeParameters:
    """Prober configuration."""

    #: Seconds between probes of one site.
    period: float = 60.0
    #: Probability that a probe to a *reachable* site gets no reply.
    probe_loss_probability: float = 0.003
    #: Consecutive missed replies before the site is declared unreachable.
    #: This must be sized against the loss rate: with loss p and a
    #: campaign of N probes, expect ~N * p**confirmations false outages.
    #: A 13-month campaign at one probe per minute per site is ~7e7
    #: probes, so 2 confirmations at 0.3% loss would still fabricate
    #: hundreds of outages; 3 keeps the expectation near one.
    confirmations: int = 3

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("probe period must be positive")
        if not 0.0 <= self.probe_loss_probability <= 1.0:
            raise ValueError("probe loss must be a probability")
        if self.confirmations < 1:
            raise ValueError("at least one confirmation required")


@dataclass(frozen=True)
class ProbeSample:
    """One probe: did the site answer at this instant?"""

    time: float
    site: str
    answered: bool


class ActiveProber:
    """Generates probe archives for one dataset."""

    def __init__(
        self,
        dataset: Dataset,
        parameters: ProbeParameters = ProbeParameters(),
        seed: int = 0,
        vantage: Optional[str] = None,
    ) -> None:
        self.dataset = dataset
        self.parameters = parameters
        self._rng = child_rng(seed, "active-prober")
        network = dataset.network
        self.vantage = vantage or sorted(
            r.name for r in network.core_routers()
        )[0]

        failure_spans: Dict[str, List[Interval]] = {}
        for failure in dataset.ground_truth_failures:
            failure_spans.setdefault(failure.link_id, []).append(
                Interval(failure.start, min(failure.end, dataset.horizon_end))
            )
        unreachable = unreachable_intervals(
            network,
            {k: IntervalSet(v) for k, v in failure_spans.items()},
            0.0,
            dataset.horizon_end,
            root=self.vantage,
        )
        #: Per-site isolation truth: all attachments unreachable at once.
        self.true_isolation: Dict[str, IntervalSet] = {
            name: IntervalSet.intersect_all(
                [unreachable[r] for r in site.attachment_routers]
            )
            for name, site in network.sites.items()
        }

    def probe_times(self) -> List[float]:
        times = []
        t = self.dataset.analysis_start + self.parameters.period / 2.0
        while t < self.dataset.horizon_end:
            times.append(t)
            t += self.parameters.period
        return times

    def samples(self) -> Iterator[ProbeSample]:
        """Generate all probe results in time order."""
        loss = self.parameters.probe_loss_probability
        sites = sorted(self.true_isolation)
        for time in self.probe_times():
            for site in sites:
                if self.true_isolation[site].contains(time):
                    answered = False
                else:
                    answered = not (loss and self._rng.random() < loss)
                yield ProbeSample(time=time, site=site, answered=answered)

    def collect(self) -> List[ProbeSample]:
        return list(self.samples())


def reconstruct_outages(
    samples: Sequence[ProbeSample],
    parameters: ProbeParameters = ProbeParameters(),
) -> Dict[str, IntervalSet]:
    """Per-site outage intervals from a probe archive.

    An outage opens after ``confirmations`` consecutive missed replies
    (dated from the first miss, the usual convention) and closes at the
    first answered probe.  Trailing misses at the archive's end still open
    an outage if confirmed; it runs to the last probe time.
    """
    by_site: Dict[str, List[ProbeSample]] = {}
    for sample in samples:
        by_site.setdefault(sample.site, []).append(sample)

    outages: Dict[str, List[Interval]] = {}
    for site, series in by_site.items():
        series.sort(key=lambda s: s.time)
        spans: List[Interval] = []
        miss_run: List[ProbeSample] = []
        open_since: Optional[float] = None
        for sample in series:
            if sample.answered:
                if open_since is not None:
                    spans.append(Interval(open_since, sample.time))
                    open_since = None
                miss_run = []
            else:
                miss_run.append(sample)
                if open_since is None and len(miss_run) >= parameters.confirmations:
                    open_since = miss_run[0].time
        if open_since is not None and series:
            end = series[-1].time
            if end > open_since:
                spans.append(Interval(open_since, end))
        outages[site] = IntervalSet(spans)
    return outages


class _SiteFsm:
    """Streaming consecutive-miss state machine for one site."""

    __slots__ = ("miss_first", "miss_count", "open_since", "last_time", "spans")

    def __init__(self) -> None:
        self.miss_first: Optional[float] = None
        self.miss_count = 0
        self.open_since: Optional[float] = None
        self.last_time: Optional[float] = None
        self.spans: List[Interval] = []

    def feed(self, time: float, answered: bool, confirmations: int) -> None:
        self.last_time = time
        if answered:
            if self.open_since is not None:
                self.spans.append(Interval(self.open_since, time))
                self.open_since = None
            self.miss_first = None
            self.miss_count = 0
        else:
            if self.miss_count == 0:
                self.miss_first = time
            self.miss_count += 1
            if self.open_since is None and self.miss_count >= confirmations:
                self.open_since = self.miss_first

    def finish(self) -> IntervalSet:
        if self.open_since is not None and self.last_time is not None:
            if self.last_time > self.open_since:
                self.spans.append(Interval(self.open_since, self.last_time))
        return IntervalSet(self.spans)


def reconstruct_outages_stream(
    samples,
    parameters: ProbeParameters = ProbeParameters(),
) -> Dict[str, IntervalSet]:
    """Streaming equivalent of :func:`reconstruct_outages`.

    Consumes the probe archive one sample at a time (tens of millions of
    rows at 13-month scale) assuming per-site time order, which the
    prober's generator guarantees.
    """
    fsms: Dict[str, _SiteFsm] = {}
    for sample in samples:
        fsms.setdefault(sample.site, _SiteFsm()).feed(
            sample.time, sample.answered, parameters.confirmations
        )
    return {site: fsm.finish() for site, fsm in fsms.items()}
