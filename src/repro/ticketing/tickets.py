"""Trouble ticket generation and the long-failure cross-check."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.intervals import Interval


@dataclass(frozen=True)
class TicketParameters:
    """How diligently the (simulated) NOC documents outages."""

    #: Outages at least this long are ticket-worthy (30 minutes).
    min_duration: float = 1800.0
    #: Probability that a ticket-worthy outage actually gets a ticket.
    coverage: float = 0.95
    #: Tickets open a little after the outage starts (detection lag) and
    #: close a little after it ends (confirmation lag); uniform bounds.
    max_open_lag: float = 900.0
    max_close_lag: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError("coverage must be a probability")
        if self.min_duration < 0 or self.max_open_lag < 0 or self.max_close_lag < 0:
            raise ValueError("durations and lags must be non-negative")


@dataclass(frozen=True)
class TroubleTicket:
    """One NOC ticket covering an outage on a link."""

    ticket_id: str
    link_id: str
    open_time: float
    close_time: float
    summary: str

    def __post_init__(self) -> None:
        if self.close_time < self.open_time:
            raise ValueError("ticket closes before it opens")

    @property
    def span(self) -> Interval:
        return Interval(self.open_time, self.close_time)


class TicketSystem:
    """Holds tickets and answers the sanitiser's corroboration query."""

    def __init__(self, tickets: Iterable[TroubleTicket] = ()) -> None:
        self._by_link: Dict[str, List[TroubleTicket]] = {}
        for ticket in tickets:
            self.add(ticket)

    def add(self, ticket: TroubleTicket) -> None:
        self._by_link.setdefault(ticket.link_id, []).append(ticket)

    def __len__(self) -> int:
        return sum(len(tickets) for tickets in self._by_link.values())

    def tickets_for(self, link_id: str) -> List[TroubleTicket]:
        return sorted(self._by_link.get(link_id, []), key=lambda t: t.open_time)

    def all_tickets(self) -> List[TroubleTicket]:
        """Every ticket in the system, ordered by open time then link."""
        return sorted(
            (t for tickets in self._by_link.values() for t in tickets),
            key=lambda t: (t.open_time, t.link_id),
        )

    def confirms(
        self, link_id: str, start: float, end: float, slack: float = 7200.0
    ) -> bool:
        """True when a ticket corroborates the *specific* claimed outage.

        Confirmation requires a ticket on the same link whose open time sits
        within ``slack`` of the claimed start **and** whose close time sits
        within ``slack`` of the claimed end.  Matching both edges is what a
        human cross-check does: a week-long claimed outage is not vouched
        for by a ticket documenting a 30-minute event somewhere inside it —
        that is precisely the spurious-downtime case §4.2's manual
        verification exists to catch.
        """
        return any(
            abs(ticket.open_time - start) <= slack
            and abs(ticket.close_time - end) <= slack
            for ticket in self._by_link.get(link_id, [])
        )

    def overlaps_any(
        self, link_id: str, start: float, end: float, slack: float = 0.0
    ) -> bool:
        """Weaker query: does any ticket merely overlap the claimed span."""
        probe = Interval(max(0.0, start - slack), end + slack)
        return any(
            ticket.span.overlaps(probe) or probe.contains(ticket.open_time)
            for ticket in self._by_link.get(link_id, [])
        )

    @classmethod
    def from_ground_truth(
        cls,
        failures: Iterable[Tuple[str, float, float]],
        rng: random.Random,
        parameters: TicketParameters = TicketParameters(),
    ) -> "TicketSystem":
        """Generate tickets from ground-truth ``(link_id, start, end)`` outages.

        Short outages are never ticketed (the paper's motivation for using
        IS-IS rather than tickets as ground truth); long ones are ticketed
        with high probability and realistic open/close lags.
        """
        system = cls()
        counter = 1
        for link_id, start, end in sorted(failures, key=lambda f: (f[1], f[0])):
            if end - start < parameters.min_duration:
                continue
            if rng.random() >= parameters.coverage:
                continue
            open_time = start + rng.uniform(0.0, parameters.max_open_lag)
            close_time = end + rng.uniform(0.0, parameters.max_close_lag)
            system.add(
                TroubleTicket(
                    ticket_id=f"TKT-{counter:06d}",
                    link_id=link_id,
                    open_time=open_time,
                    close_time=max(close_time, open_time),
                    summary=f"Outage on {link_id}",
                )
            )
            counter += 1
        return system
