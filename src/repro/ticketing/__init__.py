"""Trouble tickets — the oracle for manual verification of long failures.

The paper's sanitisation step manually verifies every syslog failure longer
than 24 hours against network trouble tickets, removing ~6,000 hours of
spurious downtime (§4.2).  Operators reliably chronicle *long* events and
rarely record short ones, so tickets are a trustworthy oracle exactly for
the failures that need checking.

:class:`TicketSystem` generates tickets from the simulation's ground truth
with that coverage profile, and answers the cross-check query the sanitiser
asks: "is there a ticket corroborating an outage on this link around this
period?".
"""

from repro.ticketing.tickets import TicketParameters, TicketSystem, TroubleTicket

__all__ = ["TicketParameters", "TicketSystem", "TroubleTicket"]
