"""Seeded corruptors for the on-disk artifacts of a measurement campaign.

Each injector is a pure ``bytes -> bytes`` function taking an explicit
:class:`random.Random`, so a given (artifact, seed) pair always produces
the same corruption — the chaos harness and the test suite rely on that
determinism to reproduce failures.  The damage modes are the ones a
crashed collector or listener actually leaves behind (§4.1/§4.2 of the
paper treat exactly these loss channels as the object of study):

* :func:`inject_garbage_lines` — binary junk and non-syslog chatter
  interleaved into the central log;
* :func:`truncate_log_lines` — syslog lines cut mid-line, as when the
  collector dies with a partially flushed buffer;
* :func:`truncate_mrt` — the LSP archive cut mid-record, the signature
  of a listener killed while appending;
* :func:`bitflip_mrt_payloads` — flipped bits inside LSP payloads
  (framing intact, checksums broken), as from storage rot;
* :func:`corrupt_mrt_length` — a mangled length field, after which the
  archive cannot be re-synchronised;
* :func:`corrupt_checkpoint` — a checkpoint file truncated, bit-flipped,
  or replaced with garbage mid-write.

``INJECTOR_NAMES`` lists the scenario names ``repro chaos`` exposes.
"""

from __future__ import annotations

import random
import struct
from typing import List, Tuple

from repro.isis.mrt import MAGIC, _RECORD_HEADER

#: Scenario names the chaos harness runs (see repro.faults.chaos).
INJECTOR_NAMES = (
    "syslog-garbage",
    "syslog-truncate",
    "mrt-truncate",
    "mrt-bitflip",
    "mrt-badlength",
    "checkpoint-corrupt",
    "kill-resume",
)

#: Bytes drawn on for garbage lines: control characters, high bytes, and
#: printable junk — everything a wedged serial console can emit.
_GARBAGE_ALPHABET = bytes(range(0, 9)) + bytes(range(14, 32)) + bytes(
    range(127, 256)
) + b"{}[]<>%$#@!~^&*"


def _garbage_line(rng: random.Random) -> bytes:
    length = rng.randint(1, 60)
    return bytes(rng.choice(_GARBAGE_ALPHABET) for _ in range(length))


def inject_garbage_lines(
    raw: bytes, rng: random.Random, count: int = 8
) -> bytes:
    """Insert ``count`` garbage lines at random positions in a text log.

    Garbage alternates between raw binary junk and plausible-but-foreign
    chatter (the "other messages in the feed" problem, amplified to the
    point of being undecodable).
    """
    lines = raw.split(b"\n")
    for _ in range(count):
        position = rng.randint(0, len(lines))
        if rng.random() < 0.5:
            junk = _garbage_line(rng)
        else:
            junk = b"#%&! wedged console output " + _garbage_line(rng)
        lines.insert(position, junk)
    return b"\n".join(lines)


def truncate_log_lines(
    raw: bytes, rng: random.Random, count: int = 8
) -> bytes:
    """Cut ``count`` randomly chosen non-empty lines mid-line.

    A truncated RFC 3164 line usually loses its body or part of its
    header and stops parsing; lines cut inside the body may still parse
    (with a shortened body), which is fine — the injector models the
    damage, the ledger reports only what actually became unreadable.
    """
    lines = raw.split(b"\n")
    candidates = [i for i, line in enumerate(lines) if len(line) > 2]
    rng.shuffle(candidates)
    for i in candidates[:count]:
        cut = rng.randint(1, max(1, len(lines[i]) - 1))
        lines[i] = lines[i][:cut]
    return b"\n".join(lines)


def _mrt_record_spans(raw: bytes) -> List[Tuple[int, int]]:
    """``(offset, payload_length)`` of each complete record in a dump."""
    spans: List[Tuple[int, int]] = []
    offset = len(MAGIC)
    while offset + _RECORD_HEADER.size <= len(raw):
        _, length = _RECORD_HEADER.unpack_from(raw, offset)
        if offset + _RECORD_HEADER.size + length > len(raw):
            break
        spans.append((offset, length))
        offset += _RECORD_HEADER.size + length
    return spans


def truncate_mrt(raw: bytes, rng: random.Random) -> bytes:
    """Cut the archive at a random byte inside one of its last records.

    The cut lands strictly inside a record (header or payload), never on
    a record boundary, so the salvage reader must detect and report it.
    """
    spans = _mrt_record_spans(raw)
    if not spans:
        return raw[: len(MAGIC) + rng.randint(1, _RECORD_HEADER.size - 1)]
    # Cut within the last quarter of records so a meaningful prefix survives.
    first_candidate = (3 * len(spans)) // 4
    offset, length = spans[rng.randint(first_candidate, len(spans) - 1)]
    cut = offset + rng.randint(1, _RECORD_HEADER.size + length - 1)
    return raw[:cut]


#: First payload byte the Fletcher checksum covers (the LSP ID onward).
#: Real IS-IS deliberately excludes the header and remaining-lifetime
#: field from the checksum, so rot there is undetectable by design; the
#: injector targets the covered region so every flip is *attributable* —
#: the chaos harness asserts each damaged record lands in the ledger.
_LSP_CHECKSUMMED_FROM = 12
#: Offset of the remaining-lifetime field in an LSP payload; a zero
#: lifetime marks a purge, whose checksum is legitimately not verified.
_LSP_LIFETIME_OFFSET = 10


def bitflip_mrt_payloads(
    raw: bytes, rng: random.Random, records: int = 6, flips: int = 3
) -> bytes:
    """Flip bits inside the payloads of randomly chosen records.

    Record headers (timestamps and lengths) are left intact so the
    archive still frames correctly; the damage surfaces as LSP checksum
    failures, the paper's "listener heard something unusable" case.
    Flips land in the checksum-covered region of non-purge LSPs, so every
    corrupted record is detectable — and must show up in the drop ledger.
    """
    data = bytearray(raw)
    candidates = []
    for offset, length in _mrt_record_spans(raw):
        payload_start = offset + _RECORD_HEADER.size
        if length <= _LSP_CHECKSUMMED_FROM:
            continue
        lifetime = data[
            payload_start + _LSP_LIFETIME_OFFSET
            : payload_start + _LSP_LIFETIME_OFFSET + 2
        ]
        if lifetime == b"\x00\x00":
            continue
        candidates.append((payload_start, length))
    rng.shuffle(candidates)
    for payload_start, length in candidates[:records]:
        for _ in range(flips):
            position = payload_start + rng.randint(
                _LSP_CHECKSUMMED_FROM, length - 1
            )
            data[position] ^= 1 << rng.randint(0, 7)
    return bytes(data)


def corrupt_mrt_length(raw: bytes, rng: random.Random) -> bytes:
    """Overwrite one record's length field with an absurd value.

    Everything after the mangled header is unreachable (the reader cannot
    re-synchronise), so lenient mode must salvage the prefix and report
    an ``oversize-record`` cut.
    """
    spans = _mrt_record_spans(raw)
    if not spans:
        return raw
    offset, _ = spans[rng.randint(len(spans) // 2, len(spans) - 1)]
    data = bytearray(raw)
    # Length field sits after the 8-byte timestamp double.
    struct.pack_into(">I", data, offset + 8, 0x7FFFFFFF - rng.randint(0, 1 << 20))
    return bytes(data)


#: Corruption modes of :func:`corrupt_checkpoint`.
CHECKPOINT_MODES = ("truncate", "bitflip", "garbage")


def corrupt_checkpoint(raw: bytes, rng: random.Random, mode: str) -> bytes:
    """Damage a checkpoint document the way an interrupted writer would.

    ``truncate`` cuts the JSON mid-document (torn write), ``bitflip``
    sets high bits inside it (storage rot; checkpoint JSON is pure ASCII,
    so a set high bit is guaranteed-invalid UTF-8 and must surface as
    :class:`CheckpointError`, never a silent misread), ``garbage``
    replaces the file wholesale.
    """
    if mode == "truncate":
        if len(raw) < 2:
            return b""
        return raw[: rng.randint(1, len(raw) - 1)]
    if mode == "bitflip":
        data = bytearray(raw)
        for _ in range(max(4, len(raw) // 512)):
            position = rng.randint(0, len(data) - 1)
            data[position] ^= 0x80
        return bytes(data)
    if mode == "garbage":
        return _garbage_line(rng) + b"\n" + _garbage_line(rng)
    raise ValueError(f"unknown checkpoint corruption mode {mode!r}")
