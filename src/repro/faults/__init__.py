"""repro.faults — deterministic fault injection and the drop ledger.

Three pieces, mirroring how the paper treats measurement loss as the norm
rather than the exception:

* :mod:`repro.faults.ledger` — the :class:`IngestReport` drop ledger that
  lenient ingestion (``strict=False``) fills instead of raising;
* :mod:`repro.faults.injectors` — seeded corruptors for the real on-disk
  artifacts (garbage and mid-line truncation in the collector log,
  truncated tails and bit-flipped payloads in the LSP archive, checkpoint
  mangling);
* :mod:`repro.faults.chaos` — the ``repro chaos`` harness that replays a
  seeded campaign under every injector and asserts the survival
  invariants (see ``docs/robustness.md``).

Only the ledger is imported eagerly: the ingestion modules
(:mod:`repro.syslog.collector`, :mod:`repro.isis.mrt`, ...) depend on it,
so pulling the injectors or the chaos runner in here would be circular.
They load on first attribute access instead.
"""

from repro.faults.ledger import (
    CHANNEL_CHECKPOINT,
    CHANNEL_ISIS,
    CHANNEL_SYSLOG,
    ChannelLedger,
    DropRecord,
    IngestReport,
)

__all__ = [
    "CHANNEL_CHECKPOINT",
    "CHANNEL_ISIS",
    "CHANNEL_SYSLOG",
    "ChannelLedger",
    "DropRecord",
    "IngestReport",
    "INJECTOR_NAMES",
    "run_chaos",
]


def __getattr__(name: str) -> object:
    if name == "run_chaos":
        from repro.faults.chaos import run_chaos

        return run_chaos
    if name == "INJECTOR_NAMES":
        from repro.faults.injectors import INJECTOR_NAMES

        return INJECTOR_NAMES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
