"""The chaos harness behind ``repro chaos``.

:func:`run_chaos` replays one seeded measurement campaign under every
injector in :mod:`repro.faults.injectors` and asserts the robustness
invariants the hardened ingestion promises:

* **No unhandled exception.**  Every scenario runs the full lenient
  pipeline over deliberately damaged artifacts; any exception escaping
  it fails the scenario.
* **Every loss is attributed.**  Each record the damage made unreadable
  appears in the drop ledger with a reason, and where the artifact
  allows it, the arithmetic closes exactly (parsed + dropped = original).
* **Degradation is bounded.**  Damage confined to one channel leaves the
  other channel's results byte-identical to the pristine baseline, and
  result drift on the damaged channel is bounded by the number of
  dropped records.
* **Kill-anywhere resume.**  A stream killed at any event boundary and
  resumed from its checkpoint finishes with byte-identical results —
  checked through a real on-disk checkpoint file, in strict mode on the
  pristine dataset and in lenient mode on a damaged one.
* **Corrupt checkpoints fail typed.**  Every corruption mode of the
  checkpoint file surfaces as :class:`CheckpointError`, never a bare
  decode error or a silent misread.

All corruption is derived from the scenario seed via
:func:`repro.util.rand.child_rng`, so a failing run reproduces exactly.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple

from repro.core.links import LinkResolver
from repro.core.pipeline import AnalysisResult, run_analysis
from repro.core.report import render_table
from repro.faults.injectors import (
    CHECKPOINT_MODES,
    _mrt_record_spans,
    bitflip_mrt_payloads,
    corrupt_checkpoint,
    corrupt_mrt_length,
    inject_garbage_lines,
    truncate_log_lines,
    truncate_mrt,
)
from repro.faults.ledger import CHANNEL_ISIS, CHANNEL_SYSLOG, IngestReport
from repro.simulation.dataset import Dataset
from repro.simulation.scenario import ScenarioConfig, run_scenario
from repro.stream import checkpoint as codec
from repro.stream.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.stream.engine import StreamEngine, StreamResult, stream_dataset
from repro.syslog.collector import SyslogCollector
from repro.util.rand import child_rng

#: Damage intensities (lines / records touched per scenario).
GARBAGE_LINES = 10
TRUNCATED_LINES = 10
BITFLIPPED_RECORDS = 6


class _Killed(RuntimeError):
    """Raised by the chaos kill switch at a checkpoint boundary."""


# ------------------------------------------------------ canonical signatures
def _match_document(match: Any) -> Dict[str, Any]:
    return {
        "pairs": [
            [codec.encode_failure(a), codec.encode_failure(b)]
            for a, b in match.pairs
        ],
        "only_a": [codec.encode_failure(f) for f in match.only_a],
        "only_b": [codec.encode_failure(f) for f in match.only_b],
        "partial_a": [codec.encode_failure(f) for f in match.partial_a],
        "partial_b": [codec.encode_failure(f) for f in match.partial_b],
    }


def _coverage_document(coverage: Any) -> Dict[str, Any]:
    return {
        "counts": {
            direction: {str(bucket): count for bucket, count in sorted(buckets.items())}
            for direction, buckets in coverage.counts.items()
        },
        "unmatched": [codec.encode_transition(t) for t in coverage.unmatched],
    }


def analysis_signature(result: AnalysisResult) -> str:
    """Canonical bytes of everything Tables 2–5 are computed from."""
    document = {
        "horizon": [result.horizon_start, result.horizon_end],
        "syslog_sanitized": codec.encode_report(result.syslog_sanitized),
        "isis_sanitized": codec.encode_report(result.isis_sanitized),
        "match": _match_document(result.failure_match),
        "coverage": _coverage_document(result.coverage),
        "flaps": [codec.encode_episode(e) for e in result.flap_episodes],
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def stream_signature(result: StreamResult) -> str:
    """Canonical bytes of a :class:`StreamResult` (resume identity check)."""
    document = {
        "horizon": [result.horizon_start, result.horizon_end],
        "syslog_raw": [codec.encode_failure(f) for f in result.syslog_failures_raw],
        "isis_raw": [codec.encode_failure(f) for f in result.isis_failures_raw],
        "syslog_sanitized": codec.encode_report(result.syslog_sanitized),
        "isis_sanitized": codec.encode_report(result.isis_sanitized),
        "match": _match_document(result.failure_match),
        "coverage": _coverage_document(result.coverage),
        "flaps": [codec.encode_episode(e) for e in result.flap_episodes],
        "counters": result.counters,
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


# ------------------------------------------------------------------ outcomes
@dataclass
class ScenarioOutcome:
    """One chaos scenario's verdict and its audit trail."""

    name: str
    ok: bool = True
    notes: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    drops: int = 0

    def check(self, condition: bool, label: str) -> None:
        """Record one invariant; a false condition fails the scenario."""
        if condition:
            self.notes.append(label)
        else:
            self.ok = False
            self.failures.append(label)


class _Chaos:
    """Shared state of one chaos run: pristine artifacts and baselines."""

    def __init__(self, seed: int, days: float, kill_samples: int, root: Path):
        self.seed = seed
        self.days = days
        self.kill_samples = kill_samples
        self.root = root
        self.pristine_dir = root / "pristine"

        dataset = run_scenario(ScenarioConfig(seed=seed, duration_days=days))
        dataset.save(self.pristine_dir)
        self.network = dataset.network

        # The baseline is the *reloaded* pristine dataset in strict mode,
        # so every comparison below is load-path against load-path.
        self.pristine = Dataset.load(self.pristine_dir, self.network)
        self.baseline = run_analysis(self.pristine)
        self.baseline_signature = analysis_signature(self.baseline)
        self.baseline_entries = len(
            SyslogCollector.parse_log(self.pristine.syslog_text)
        )
        self.baseline_records = len(self.pristine.lsp_records)
        self._stream_baseline: Optional[StreamResult] = None

    def rng(self, label: str):
        return child_rng(self.seed, f"chaos:{label}")

    @property
    def stream_baseline(self) -> StreamResult:
        if self._stream_baseline is None:
            self._stream_baseline = stream_dataset(self.pristine)
        return self._stream_baseline

    def damaged(
        self, name: str, mutations: Dict[str, Callable[[bytes], bytes]]
    ) -> Tuple[Path, Dataset, IngestReport]:
        """Copy the pristine campaign, corrupt named files, reload lenient."""
        directory = self.root / name
        if directory.exists():
            shutil.rmtree(directory)
        shutil.copytree(self.pristine_dir, directory)
        for filename, mutate in mutations.items():
            path = directory / filename
            path.write_bytes(mutate(path.read_bytes()))
        report = IngestReport()
        dataset = Dataset.load(
            directory, self.network, strict=False, report=report
        )
        return directory, dataset, report

    def lenient_entry_count(self, dataset: Dataset) -> int:
        return len(
            SyslogCollector.parse_log(
                dataset.syslog_text, strict=False, report=IngestReport()
            )
        )


# ----------------------------------------------------------------- scenarios
def _scenario_clean_identity(chaos: _Chaos) -> ScenarioOutcome:
    """With no injector, lenient mode must be byte-identical to strict."""
    outcome = ScenarioOutcome("clean-identity")
    report = IngestReport()
    dataset = Dataset.load(
        chaos.pristine_dir, chaos.network, strict=False, report=report
    )
    result = run_analysis(dataset, strict=False, report=report)
    outcome.check(not report, "ledger empty on pristine artifacts")
    outcome.check(
        analysis_signature(result) == chaos.baseline_signature,
        "lenient results byte-identical to strict",
    )
    return outcome


def _scenario_syslog_garbage(chaos: _Chaos) -> ScenarioOutcome:
    outcome = ScenarioOutcome("syslog-garbage")
    rng = chaos.rng("syslog-garbage")
    _, dataset, report = chaos.damaged(
        "syslog-garbage",
        {"syslog.log": lambda raw: inject_garbage_lines(raw, rng, GARBAGE_LINES)},
    )
    result = run_analysis(dataset, strict=False, report=report)
    drops = outcome.drops = report.dropped(CHANNEL_SYSLOG)
    outcome.check(
        1 <= drops <= GARBAGE_LINES,
        f"{drops} of {GARBAGE_LINES} garbage lines quarantined",
    )
    outcome.check(report.dropped(CHANNEL_ISIS) == 0, "IS-IS channel untouched")
    outcome.check(
        chaos.lenient_entry_count(dataset) == chaos.baseline_entries,
        "every real log line still parses",
    )
    outcome.check(
        analysis_signature(result) == chaos.baseline_signature,
        "results byte-identical to baseline",
    )
    return outcome


def _scenario_syslog_truncate(chaos: _Chaos) -> ScenarioOutcome:
    outcome = ScenarioOutcome("syslog-truncate")
    rng = chaos.rng("syslog-truncate")
    _, dataset, report = chaos.damaged(
        "syslog-truncate",
        {"syslog.log": lambda raw: truncate_log_lines(raw, rng, TRUNCATED_LINES)},
    )
    result = run_analysis(dataset, strict=False, report=report)
    drops = outcome.drops = report.dropped(CHANNEL_SYSLOG)
    entries = chaos.lenient_entry_count(dataset)
    outcome.check(
        entries + drops == chaos.baseline_entries,
        f"loss fully attributed: {entries} parsed + {drops} dropped "
        f"= {chaos.baseline_entries} original lines",
    )
    known = {"malformed-line", "bad-timestamp", "pri-out-of-range"}
    outcome.check(
        set(report.reasons(CHANNEL_SYSLOG)) <= known,
        "every drop carries a typed reason",
    )
    delta = abs(len(result.syslog_failures) - len(chaos.baseline.syslog_failures))
    outcome.check(
        delta <= drops,
        f"syslog failure drift {delta} bounded by {drops} dropped lines",
    )
    outcome.check(
        json.dumps(codec.encode_report(result.isis_sanitized))
        == json.dumps(codec.encode_report(chaos.baseline.isis_sanitized)),
        "IS-IS results byte-identical to baseline",
    )
    return outcome


def _scenario_mrt_damage(
    chaos: _Chaos,
    name: str,
    mutate: Callable[[bytes], bytes],
    cut_reasons: set,
) -> ScenarioOutcome:
    """Shared body of the two unresynchronisable-archive scenarios."""
    outcome = ScenarioOutcome(name)
    directory, dataset, report = chaos.damaged(name, {"isis.dump": mutate})
    result = run_analysis(dataset, strict=False, report=report)
    drops = outcome.drops = report.dropped(CHANNEL_ISIS)
    salvageable = len(_mrt_record_spans((directory / "isis.dump").read_bytes()))
    lost = chaos.baseline_records - len(dataset.lsp_records)
    outcome.check(
        drops == 1 and set(report.reasons(CHANNEL_ISIS)) <= cut_reasons,
        f"cut recorded once ({', '.join(sorted(report.reasons(CHANNEL_ISIS)))})",
    )
    ledger = report.channel(CHANNEL_ISIS)
    outcome.check(
        ledger.first is not None and ledger.first.offset is not None,
        "cut carries its byte offset",
    )
    outcome.check(
        len(dataset.lsp_records) == salvageable and lost > 0,
        f"valid prefix salvaged: {len(dataset.lsp_records)} of "
        f"{chaos.baseline_records} records",
    )
    delta = abs(len(result.isis_failures) - len(chaos.baseline.isis_failures))
    outcome.check(
        delta <= lost,
        f"IS-IS failure drift {delta} bounded by {lost} lost records",
    )
    outcome.check(
        json.dumps(codec.encode_report(result.syslog_sanitized))
        == json.dumps(codec.encode_report(chaos.baseline.syslog_sanitized)),
        "syslog results byte-identical to baseline",
    )
    return outcome


def _scenario_mrt_bitflip(chaos: _Chaos) -> ScenarioOutcome:
    outcome = ScenarioOutcome("mrt-bitflip")
    rng = chaos.rng("mrt-bitflip")
    _, dataset, report = chaos.damaged(
        "mrt-bitflip",
        {
            "isis.dump": lambda raw: bitflip_mrt_payloads(
                raw, rng, BITFLIPPED_RECORDS
            )
        },
    )
    result = run_analysis(dataset, strict=False, report=report)
    outcome.check(
        len(dataset.lsp_records) == chaos.baseline_records,
        "framing intact: every record still loads",
    )
    drops = outcome.drops = report.dropped(CHANNEL_ISIS)
    outcome.check(
        1 <= drops <= BITFLIPPED_RECORDS
        and set(report.reasons(CHANNEL_ISIS)) == {"lsp-decode"},
        f"{drops} of {BITFLIPPED_RECORDS} flipped records rejected as lsp-decode",
    )
    ledger = report.channel(CHANNEL_ISIS)
    outcome.check(
        ledger.first is not None and ledger.first.index is not None,
        "rejections carry record indexes",
    )
    outcome.check(
        json.dumps(codec.encode_report(result.syslog_sanitized))
        == json.dumps(codec.encode_report(chaos.baseline.syslog_sanitized)),
        "syslog results byte-identical to baseline",
    )
    return outcome


def _scenario_checkpoint_corrupt(chaos: _Chaos) -> ScenarioOutcome:
    outcome = ScenarioOutcome("checkpoint-corrupt")
    rng = chaos.rng("checkpoint-corrupt")
    total = chaos.stream_baseline.counters["events"]
    path = chaos.root / "engine.ckpt"

    def save_and_kill(engine: StreamEngine) -> None:
        save_checkpoint(str(path), engine)
        raise _Killed()

    try:
        stream_dataset(
            chaos.pristine,
            checkpoint_at=[max(1, total // 2)],
            on_checkpoint=save_and_kill,
        )
    except _Killed:
        pass
    pristine_ckpt = path.read_bytes()

    state = load_checkpoint(str(path))
    resolver = LinkResolver(chaos.pristine.inventory)
    StreamEngine.restore(
        state, resolver, chaos.pristine.listener_outages, chaos.pristine.tickets
    )
    outcome.notes.append("intact checkpoint loads and restores")

    for mode in CHECKPOINT_MODES:
        path.write_bytes(corrupt_checkpoint(pristine_ckpt, rng, mode))
        try:
            damaged_state = load_checkpoint(str(path))
            StreamEngine.restore(
                damaged_state,
                resolver,
                chaos.pristine.listener_outages,
                chaos.pristine.tickets,
            )
        except CheckpointError as error:
            outcome.drops += 1
            outcome.check(
                bool(str(error)),
                f"{mode}: typed CheckpointError ({str(error)[:60]}...)",
            )
        else:
            outcome.check(False, f"{mode}: corruption loaded without error")
    return outcome


def _kill_points(total: int, samples: int) -> List[int]:
    """Event boundaries to kill at: evenly spread, always including the
    first boundary and the final one."""
    if total <= samples:
        return list(range(1, total + 1))
    step = total / samples
    points = {1, total}
    for i in range(1, samples):
        points.add(max(1, round(i * step)))
    return sorted(points)


def _resume_identical(
    dataset: Dataset,
    kill_at: int,
    path: Path,
    expected_signature: str,
    *,
    strict: bool = True,
) -> Tuple[bool, int]:
    """Kill one stream run at ``kill_at`` via a real checkpoint file and
    resume it; returns (signatures match, lenient drops after resume)."""

    def save_and_kill(engine: StreamEngine) -> None:
        save_checkpoint(str(path), engine)
        raise _Killed()

    report = None if strict else IngestReport()
    try:
        stream_dataset(
            dataset,
            checkpoint_at=[kill_at],
            on_checkpoint=save_and_kill,
            strict=strict,
            report=report,
        )
    except _Killed:
        pass
    resume_report = None if strict else IngestReport()
    resumed = stream_dataset(
        dataset,
        resume_state=load_checkpoint(str(path)),
        strict=strict,
        report=resume_report,
    )
    drops = resume_report.dropped() if resume_report is not None else 0
    return stream_signature(resumed) == expected_signature, drops


def _scenario_kill_resume(chaos: _Chaos) -> ScenarioOutcome:
    outcome = ScenarioOutcome("kill-resume")
    baseline = chaos.stream_baseline
    total = baseline.counters["events"]
    signature = stream_signature(baseline)
    path = chaos.root / "kill.ckpt"

    points = _kill_points(total, chaos.kill_samples)
    for kill_at in points:
        identical, _ = _resume_identical(chaos.pristine, kill_at, path, signature)
        outcome.check(
            identical, f"kill at event {kill_at}/{total}: resume byte-identical"
        )

    # The same guarantee must hold for a lenient stream over a damaged
    # archive — and the resumed run, which re-reads from byte zero, must
    # rebuild the *full* drop ledger, not just the post-kill tail.
    rng = chaos.rng("kill-resume-damage")
    _, damaged, report = chaos.damaged(
        "kill-resume",
        {
            "isis.dump": lambda raw: bitflip_mrt_payloads(
                raw, rng, BITFLIPPED_RECORDS
            )
        },
    )
    full_report = IngestReport()
    damaged_full = stream_dataset(damaged, strict=False, report=full_report)
    damaged_total = damaged_full.counters["events"]
    identical, resumed_drops = _resume_identical(
        damaged,
        max(1, damaged_total // 2),
        path,
        stream_signature(damaged_full),
        strict=False,
    )
    outcome.drops = resumed_drops
    outcome.check(identical, "lenient resume on damaged archive byte-identical")
    outcome.check(
        resumed_drops == full_report.dropped() and resumed_drops > 0,
        f"resumed run rebuilds the full ledger ({resumed_drops} drops)",
    )
    return outcome


# ------------------------------------------------------------------- driver
def run_chaos(
    seed: int = 2013,
    days: float = 10.0,
    *,
    kill_samples: int = 6,
    out: TextIO = sys.stdout,
    work_dir: Optional[Path] = None,
    only: Optional[str] = None,
) -> int:
    """Run every chaos scenario; returns a process exit code (0 = all ok).

    ``only`` restricts the run to scenarios whose name starts with the
    given prefix (``only="service-"`` is CI's live-service smoke job).
    """
    own_dir = work_dir is None
    root = (
        Path(tempfile.mkdtemp(prefix="repro-chaos-"))
        if own_dir
        else Path(work_dir)
    )
    try:
        return _run_scenarios(seed, days, kill_samples, root, out, only)
    finally:
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)


def _run_scenarios(
    seed: int,
    days: float,
    kill_samples: int,
    root: Path,
    out: TextIO,
    only: Optional[str] = None,
) -> int:
    print(
        f"chaos: seed={seed} days={days:g} — simulating pristine campaign",
        file=out,
    )
    chaos = _Chaos(seed, days, kill_samples, root)
    print(
        f"chaos: baseline {chaos.baseline_entries} log lines, "
        f"{chaos.baseline_records} LSP records",
        file=out,
    )

    scenarios: List[Tuple[str, Callable[[_Chaos], ScenarioOutcome]]] = [
        ("clean-identity", _scenario_clean_identity),
        ("syslog-garbage", _scenario_syslog_garbage),
        ("syslog-truncate", _scenario_syslog_truncate),
        (
            "mrt-truncate",
            lambda c: _scenario_mrt_damage(
                c,
                "mrt-truncate",
                lambda raw: truncate_mrt(raw, c.rng("mrt-truncate")),
                {"truncated-header", "truncated-payload"},
            ),
        ),
        ("mrt-bitflip", _scenario_mrt_bitflip),
        (
            "mrt-badlength",
            lambda c: _scenario_mrt_damage(
                c,
                "mrt-badlength",
                lambda raw: corrupt_mrt_length(raw, c.rng("mrt-badlength")),
                {"oversize-record"},
            ),
        ),
        ("checkpoint-corrupt", _scenario_checkpoint_corrupt),
        ("kill-resume", _scenario_kill_resume),
    ]
    # The live-service scenarios spawn real sockets and worker processes;
    # the import is deferred so batch-only chaos runs never pay for it
    # (and so repro.faults keeps no hard dependency on repro.service).
    from repro.service.chaos import service_scenarios

    scenarios.extend(service_scenarios())
    if only is not None:
        scenarios = [
            entry for entry in scenarios if entry[0].startswith(only)
        ]
        if not scenarios:
            print(f"chaos: no scenario matches prefix {only!r}", file=out)
            return 1

    outcomes: List[ScenarioOutcome] = []
    for name, scenario in scenarios:
        try:
            outcome = scenario(chaos)
        except Exception as error:  # the one invariant every scenario shares
            outcome = ScenarioOutcome(name, ok=False)
            outcome.failures.append(
                f"unhandled {type(error).__name__}: {error}"
            )
        outcomes.append(outcome)
        status = "ok" if outcome.ok else "FAIL"
        print(f"chaos: {outcome.name}: {status}", file=out)
        for note in outcome.notes:
            print(f"  + {note}", file=out)
        for failure in outcome.failures:
            print(f"  ! {failure}", file=out)

    print(file=out)
    print(
        render_table(
            ["Scenario", "Verdict", "Ledger drops", "Checks"],
            [
                [
                    o.name,
                    "ok" if o.ok else "FAIL",
                    str(o.drops),
                    f"{len(o.notes)}/{len(o.notes) + len(o.failures)}",
                ]
                for o in outcomes
            ],
            title="Chaos scenarios",
        ),
        file=out,
    )
    return 0 if all(o.ok for o in outcomes) else 1
