"""The drop ledger: typed accounting of everything lenient ingestion skips.

The paper's central finding is that measurement channels lose data —
syslog drops messages under flap bursts (§4.1), the listener itself goes
down (§4.2) — and the artifacts a crashed collector leaves behind are
garbled logs and truncated archives.  Hardened ingestion
(``strict=False`` through :mod:`repro.syslog.collector`,
:mod:`repro.isis.mrt`, :mod:`repro.stream.sources`, and
:func:`repro.core.pipeline.run_analysis`) never silently discards such a
record: every skip lands here, as a :class:`DropRecord` with a
machine-readable reason, the byte offset in the source artifact, and a
clipped sample of the offending data, aggregated per channel by an
:class:`IngestReport`.

The ledger is the quarantine's audit trail: ``repro chaos`` asserts that
under every injector the number of records the analysis lost is bounded
by (and attributed in) the ledger, and the reprolint E-rules forbid the
alternative (`except: pass`) outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Channel labels.  They intentionally match the stream engine's channel
#: vocabulary (:data:`repro.stream.sources.SYSLOG_CHANNEL` /
#: :data:`~repro.stream.sources.ISIS_CHANNEL`) so one report spans both
#: the batch and streaming paths.
CHANNEL_SYSLOG = "syslog"
CHANNEL_ISIS = "isis"
CHANNEL_CHECKPOINT = "checkpoint"
#: Transport/service-level losses (framing damage, backpressure shedding,
#: late arrivals beyond the reorder bound) recorded by :mod:`repro.service`.
CHANNEL_SERVICE = "service"

#: Longest sample text stored per drop (keeps reports small even when a
#: multi-megabyte binary blob lands in the log).
SAMPLE_LIMIT = 120


def clip_sample(data: object) -> str:
    """A printable, length-bounded sample of arbitrary bad input."""
    text = data if isinstance(data, str) else repr(data)
    if len(text) > SAMPLE_LIMIT:
        return text[:SAMPLE_LIMIT] + "…"
    return text


@dataclass(frozen=True)
class DropRecord:
    """One quarantined record.

    ``offset`` is the byte offset of the record in its source artifact
    (``None`` when the source is an in-memory sequence with no byte
    representation); ``index`` is the record/line ordinal where one is
    meaningful.
    """

    channel: str
    reason: str
    offset: Optional[int] = None
    index: Optional[int] = None
    sample: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "channel": self.channel,
            "reason": self.reason,
            "offset": self.offset,
            "index": self.index,
            "sample": self.sample,
        }


@dataclass
class ChannelLedger:
    """Per-channel aggregation: counts by reason plus boundary samples."""

    dropped: int = 0
    reasons: Dict[str, int] = field(default_factory=dict)
    first: Optional[DropRecord] = None
    last: Optional[DropRecord] = None

    def add(self, record: DropRecord) -> None:
        self.dropped += 1
        self.reasons[record.reason] = self.reasons.get(record.reason, 0) + 1
        if self.first is None:
            self.first = record
        self.last = record

    def merge_from(self, other: "ChannelLedger") -> None:
        """Fold another ledger in, as if its drops were recorded here next.

        Order matters for ``first``/``last``: callers merging sharded
        ledgers must merge in source order (shard 0 first), which makes
        the combined boundary samples identical to a sequential run's.
        """
        self.dropped += other.dropped
        for reason in sorted(other.reasons):
            self.reasons[reason] = (
                self.reasons.get(reason, 0) + other.reasons[reason]
            )
        if self.first is None:
            self.first = other.first  # reprolint: disable=M103 -- deliberate: the docstring contract requires folding shards in source order, making first/last identical to a sequential run
        if other.last is not None:
            self.last = other.last  # reprolint: disable=M103 -- deliberate: last-in-source-order under the documented in-order fold contract

    def to_json(self) -> Dict[str, object]:
        return {
            "dropped": self.dropped,
            "reasons": dict(sorted(self.reasons.items())),
            "first": None if self.first is None else self.first.to_json(),
            "last": None if self.last is None else self.last.to_json(),
        }


class IngestReport:
    """The drop ledger of one ingestion run (batch or stream).

    Create one, pass it everywhere a ``report=`` keyword is accepted, and
    inspect it afterwards; with no report passed, lenient mode still
    skips bad records but the accounting is lost, so the CLI and the
    chaos harness always provide one.
    """

    def __init__(self) -> None:
        self.channels: Dict[str, ChannelLedger] = {}

    def record(
        self,
        channel: str,
        reason: str,
        offset: Optional[int] = None,
        index: Optional[int] = None,
        sample: object = "",
    ) -> DropRecord:
        """Quarantine one record; returns the ledger entry created."""
        record = DropRecord(
            channel=channel,
            reason=reason,
            offset=offset,
            index=index,
            sample=clip_sample(sample),
        )
        self.channel(channel).add(record)
        return record

    def channel(self, name: str) -> ChannelLedger:
        ledger = self.channels.get(name)
        if ledger is None:
            ledger = self.channels[name] = ChannelLedger()
        return ledger

    def merge_from(self, other: "IngestReport") -> None:
        """Fold another report in (see :meth:`ChannelLedger.merge_from`).

        This is how the sharded ingestion path keeps one ledger: each
        shard records into its own report, and the merge step folds them
        back in shard order so counts, reasons, and the first/last
        boundary samples all match what a sequential run records.
        """
        for name in sorted(other.channels):
            self.channel(name).merge_from(other.channels[name])

    def dropped(self, channel: Optional[str] = None) -> int:
        """Total drops, overall or for one channel."""
        if channel is not None:
            ledger = self.channels.get(channel)
            return ledger.dropped if ledger else 0
        return sum(ledger.dropped for ledger in self.channels.values())

    def reasons(self, channel: str) -> Dict[str, int]:
        """Reason -> count for one channel (empty if clean)."""
        ledger = self.channels.get(channel)
        return dict(ledger.reasons) if ledger else {}

    def __bool__(self) -> bool:
        return self.dropped() > 0

    def to_json(self) -> Dict[str, object]:
        return {
            name: self.channels[name].to_json()
            for name in sorted(self.channels)
        }

    def render(self) -> str:
        """Human-readable accounting, one line per (channel, reason)."""
        if not self:
            return "ingest ledger: clean (0 records dropped)"
        lines = [f"ingest ledger: {self.dropped()} record(s) dropped"]
        for name in sorted(self.channels):
            ledger = self.channels[name]
            for reason in sorted(ledger.reasons):
                lines.append(
                    f"  {name}: {ledger.reasons[reason]} × {reason}"
                )
            if ledger.first is not None:
                lines.append(
                    f"  {name}: first at offset {ledger.first.offset} "
                    f"({ledger.first.sample!r})"
                )
            if ledger.last is not None and ledger.last is not ledger.first:
                lines.append(
                    f"  {name}: last at offset {ledger.last.offset} "
                    f"({ledger.last.sample!r})"
                )
        return "\n".join(lines)
