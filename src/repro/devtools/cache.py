"""On-disk per-file result cache for ``repro lint``.

Per-module rules are pure functions of *(file bytes, rule set)*, so
their findings can be reused across runs: the cache key is a SHA-256
over the reported path, the rule-set version
(:data:`repro.devtools.rules.RULESET_VERSION` — bumped whenever rule
semantics change), the selected per-module rule ids (tagged with each
rule's scope, so widening a rule to a new subpackage invalidates its
entries), and the file text.  Any edit, rename, rule change, scope
change, or selection change misses naturally; nothing is ever
invalidated in place.

Entries are small JSON files (the *raw* findings, before suppression
and baseline handling — both of those depend on driver flags and are
applied by the driver every run).  Writes are atomic
(temp file + ``os.replace``) so a killed lint run never leaves a
corrupt entry; unreadable entries are treated as misses.  Project-wide
rules (codec, mutability, R001) are never cached — their findings
depend on other files.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence

from repro.devtools.base import Finding
from repro.devtools.rules import RULESET_VERSION

#: Schema of the cache entries themselves.
_ENTRY_VERSION = 1


class LintCache:
    """A directory of per-file lint results."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def key(self, path: str, text: str, rule_ids: Sequence[str]) -> str:
        digest = hashlib.sha256()
        digest.update(RULESET_VERSION.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(",".join(sorted(rule_ids)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.replace("\\", "/").encode("utf-8"))
        digest.update(b"\x00")
        digest.update(text.encode("utf-8"))
        return digest.hexdigest()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[List[Finding]]:
        try:
            with open(
                self._entry_path(key), "r", encoding="utf-8"
            ) as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(document, dict)
            or document.get("version") != _ENTRY_VERSION
            or not isinstance(document.get("findings"), list)
        ):
            self.misses += 1
            return None
        findings = []
        try:
            for entry in document["findings"]:
                findings.append(
                    Finding(
                        rule=str(entry["rule"]),
                        path=str(entry["path"]),
                        line=int(entry["line"]),
                        column=int(entry["column"]),
                        message=str(entry["message"]),
                        snippet=str(entry.get("snippet", "")),
                    )
                )
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(self, key: str, findings: Sequence[Finding]) -> None:
        document: Dict[str, object] = {
            "version": _ENTRY_VERSION,
            "findings": [finding.to_json() for finding in findings],
        }
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w",
                encoding="utf-8",
                dir=self.directory,
                suffix=".tmp",
                delete=False,
            )
            with handle:
                json.dump(document, handle)
            os.replace(handle.name, self._entry_path(key))
        except OSError:
            # A read-only or full disk degrades to an uncached run.
            try:
                os.unlink(handle.name)
            except (OSError, UnboundLocalError):
                pass
