"""A forward worklist solver over small abstract lattices.

The flow rules all need the same question answered: *what kind of value
can this local name hold at this program point?* — where "kind" is a
small set of tags (``{"set"}``, ``{"datetime"}``, …) and the interesting
part is how values flow through chains of local assignments, tuple
unpacking, conditionals, and loops.

The abstract domain is deliberately tiny: an environment maps each
local name to a **frozenset of tags**; joining two environments unions
the tag sets name by name (a may-analysis — if a name *can* hold a set
on some path, iterating it is already a reproducibility hazard).  An
absent name / empty set means "nothing known".  Reassignment rebinds
(kills) a name on that path, which is exactly the flow-sensitivity the
syntactic D/T rules lack: ``s = set(x); s = sorted(s)`` leaves ``s``
with no set tag, while ``t = s`` one line earlier propagates it.

:class:`TagEvaluator` turns expressions into tag sets and is the only
piece a rule family customises; :class:`ForwardDataflow` runs the
worklist over a :class:`~repro.devtools.flow.cfg.CFG` and returns the
environment *entering* every statement node.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.devtools.base import ImportMap, dotted_name
from repro.devtools.flow.cfg import (
    CFG,
    ENTRY,
    build_cfg,
    owned_expressions,
    scope_parameters,
)

Tags = FrozenSet[str]
Env = Dict[str, Tags]

EMPTY: Tags = frozenset()


def join_envs(left: Env, right: Env) -> Env:
    """Name-wise union of two environments."""
    if not left:
        return dict(right)
    if not right:
        return dict(left)
    merged = dict(left)
    for name, tags in right.items():
        merged[name] = merged.get(name, EMPTY) | tags
    return merged


def meet_envs(left: Env, right: Env) -> Env:
    """Name-wise intersection: a name survives only when bound in both
    environments, keeping the tags common to both paths."""
    return {
        name: left[name] & right[name]
        for name in left
        if name in right
    }


class TagEvaluator:
    """Maps expressions to tag sets; rule families override the hooks.

    The base class handles the structural cases every domain shares —
    names come from the environment (falling back to
    :meth:`name_constant` for imported module-level constants),
    conditionals join their arms, parenthesised/unary shells are
    transparent — and delegates calls, operators, and annotations to the
    hooks.
    """

    def __init__(self, imports: ImportMap) -> None:
        self.imports = imports

    # ----------------------------------------------------------- hooks
    def name_constant(self, dotted: str) -> Tags:
        """Tags of a name resolved through the imports (e.g. a known
        module-level constant); the environment takes precedence."""
        return EMPTY

    def call(self, node: ast.Call, env: Env) -> Tags:
        return EMPTY

    def binop(self, node: ast.BinOp, left: Tags, right: Tags) -> Tags:
        return EMPTY

    def annotation(self, node: Optional[ast.AST]) -> Tags:
        return EMPTY

    def iter_element(self, tags: Tags) -> Tags:
        """Tags of one element drawn from an iterable with ``tags``."""
        return EMPTY

    def augmented(self, old: Tags, op: ast.operator, value: Tags) -> Tags:
        """``x op= v``: by default the name keeps its tags (``s |= t``
        leaves a set a set)."""
        return old

    # ------------------------------------------------------- evaluation
    def evaluate(self, node: ast.AST, env: Env) -> Tags:
        if isinstance(node, ast.Name):
            if node.id in env:
                # Presence matters, not truthiness: a local binding with
                # no tags still shadows a module-level constant.
                return env[node.id]
            return self.name_constant(self.imports.resolve(node.id))
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None:
                head = dotted.split(".", 1)[0]
                if head not in env:
                    return self.name_constant(self.imports.resolve(dotted))
            return EMPTY
        if isinstance(node, ast.IfExp):
            return self.evaluate(node.body, env) | self.evaluate(
                node.orelse, env
            )
        if isinstance(node, ast.BoolOp):
            tags: Tags = EMPTY
            for value in node.values:
                tags |= self.evaluate(value, env)
            return tags
        if isinstance(node, ast.NamedExpr):
            return self.evaluate(node.value, env)
        if isinstance(node, ast.Await):
            return self.evaluate(node.value, env)
        if isinstance(node, ast.UnaryOp):
            return self.evaluate(node.operand, env)
        if isinstance(node, ast.BinOp):
            return self.binop(
                node,
                self.evaluate(node.left, env),
                self.evaluate(node.right, env),
            )
        if isinstance(node, ast.Call):
            return self.call(node, env)
        if isinstance(node, ast.Constant):
            return self.constant(node)
        return EMPTY

    def constant(self, node: ast.Constant) -> Tags:
        return EMPTY


class ForwardDataflow:
    """The worklist solver: one evaluator, one CFG, a fixpoint."""

    #: Safety valve — tag lattices are finite so termination is
    #: guaranteed, but a bound keeps a pathological scope cheap.
    MAX_VISITS_PER_NODE = 64

    def __init__(self, evaluator: TagEvaluator) -> None:
        self.evaluator = evaluator

    def run(self, cfg: CFG, initial: Env) -> Dict[int, Env]:
        """Environments *entering* each node (``ENTRY``'s out is
        ``initial``, typically built from parameter annotations)."""
        out: Dict[int, Env] = {ENTRY: dict(initial)}
        in_env: Dict[int, Env] = {}
        visits: Dict[int, int] = {}
        worklist: List[int] = [node for node, _ in cfg.nodes()]
        pending = set(worklist)
        while worklist:
            node = worklist.pop(0)
            pending.discard(node)
            if visits.get(node, 0) >= self.MAX_VISITS_PER_NODE:
                continue
            visits[node] = visits.get(node, 0) + 1
            entering = self.join_predecessors(
                cfg.pred.get(node, []), out
            )
            in_env[node] = entering
            leaving = self.transfer(cfg.statements[node], entering)
            if leaving != out.get(node):
                out[node] = leaving
                for successor in cfg.succ.get(node, []):
                    if successor >= 0 and successor not in pending:
                        worklist.append(successor)
                        pending.add(successor)
        return in_env

    # ------------------------------------------------------------ join
    def join_predecessors(
        self, predecessors: List[int], out: Dict[int, Env]
    ) -> Env:
        """Combine predecessor out-environments (may-direction: union,
        an unvisited predecessor contributes nothing)."""
        entering: Env = {}
        for predecessor in predecessors:
            entering = join_envs(entering, out.get(predecessor, {}))
        return entering

    # -------------------------------------------------------- transfer
    def transfer(self, statement: ast.stmt, env: Env) -> Env:
        env = dict(env)
        evaluate = self.evaluator.evaluate

        if isinstance(statement, ast.Assign):
            tags = evaluate(statement.value, env)
            for target in statement.targets:
                self._bind(target, statement.value, tags, env)
        elif isinstance(statement, ast.AnnAssign):
            tags = self.evaluator.annotation(statement.annotation)
            if statement.value is not None:
                tags = tags | evaluate(statement.value, env)
            if isinstance(statement.target, ast.Name):
                env[statement.target.id] = tags
        elif isinstance(statement, ast.AugAssign):
            if isinstance(statement.target, ast.Name):
                name = statement.target.id
                env[name] = self.evaluator.augmented(
                    env.get(name, EMPTY),
                    statement.op,
                    evaluate(statement.value, env),
                )
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            element = self.evaluator.iter_element(
                evaluate(statement.iter, env)
            )
            self._bind(statement.target, None, element, env)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, EMPTY, env)
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(statement, ast.Import):
            for alias in statement.names:
                env[alias.asname or alias.name.split(".")[0]] = EMPTY
        elif isinstance(statement, ast.ImportFrom):
            for alias in statement.names:
                local = alias.asname or alias.name
                dotted = (
                    f"{statement.module}.{alias.name}"
                    if statement.module
                    else alias.name
                )
                # A known constant keeps its tags through a local import.
                env[local] = self.evaluator.name_constant(dotted)
        elif isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            env[statement.name] = EMPTY
        elif isinstance(statement, (ast.Global, ast.Nonlocal)):
            for name in statement.names:
                env[name] = EMPTY

        # Walrus assignments anywhere in the node's own expressions.
        for expression in owned_expressions(statement):
            for walrus in ast.walk(expression):
                if isinstance(walrus, ast.NamedExpr) and isinstance(
                    walrus.target, ast.Name
                ):
                    env[walrus.target.id] = evaluate(walrus.value, env)
        return env

    def _bind(
        self,
        target: ast.AST,
        value: Optional[ast.AST],
        tags: Tags,
        env: Env,
    ) -> None:
        """Bind one assignment target, element-wise where possible."""
        if isinstance(target, ast.Name):
            env[target.id] = tags
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, None, EMPTY, env)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elements: List[Optional[ast.AST]]
            if (
                isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == len(target.elts)
                and not any(isinstance(t, ast.Starred) for t in target.elts)
            ):
                # `a, b = set(x), 0` — carry each element's own tags.
                elements = list(value.elts)
                for sub_target, sub_value in zip(target.elts, elements):
                    sub_tags = (
                        self.evaluator.evaluate(sub_value, env)
                        if sub_value is not None
                        else EMPTY
                    )
                    self._bind(sub_target, sub_value, sub_tags, env)
            else:
                element = self.evaluator.iter_element(tags)
                for sub_target in target.elts:
                    self._bind(sub_target, None, element, env)
            return
        # Attribute / subscript targets do not touch the local env.


class MustForwardDataflow(ForwardDataflow):
    """The must-direction solver: a fact holds at a node only when it
    holds on *every* path reaching it.

    Predecessor environments are **intersected** (:func:`meet_envs`)
    instead of unioned, and predecessors the worklist has not yet
    computed are skipped — the optimistic top element — so loop
    back-edges start permissive and the fixpoint only ever removes
    facts after the first sweep.  The transfer function is shared with
    the may-direction solver, so reassignment still kills: ``x = ...``
    rebinds ``x`` to the tags of its new value on that path.  The
    H-rules use this to prove a sampled timestamp is clipped to the
    horizon on *all* CFG paths, not just some.
    """

    def join_predecessors(
        self, predecessors: List[int], out: Dict[int, Env]
    ) -> Env:
        computed = [
            out[predecessor]
            for predecessor in predecessors
            if predecessor in out
        ]
        if not computed:
            return {}
        entering = dict(computed[0])
        for env in computed[1:]:
            entering = meet_envs(entering, env)
        return entering


def analyze_scope(
    scope: ast.AST, evaluator: TagEvaluator
) -> Tuple[CFG, Dict[int, Env]]:
    """CFG + per-node entry environments of one scope.

    The initial environment is built from the scope's parameter
    annotations via the evaluator's :meth:`TagEvaluator.annotation`
    hook (empty for a module scope).
    """
    cfg = build_cfg(scope)
    initial: Env = {}
    for parameter in scope_parameters(scope):
        # Bind every parameter (tagged or not) so a parameter that
        # shadows a module-level constant is seen as the parameter.
        initial[parameter.arg] = evaluator.annotation(parameter.annotation)
    solver = ForwardDataflow(evaluator)
    return cfg, solver.run(cfg, initial)
