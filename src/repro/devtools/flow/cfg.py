"""Per-scope control-flow graphs for the flow-sensitive lint rules.

One :class:`CFG` covers one *scope*: a function body or a module's
top-level statements.  Nodes are individual statements — simple
statements and the headers of compound ones (``if``/``while``/``for``/
``try``/``with``); the bodies of compound statements contribute their
own nodes.  Nested function and class definitions are opaque single
nodes (each nested function gets its own CFG when analysed).

Edges model what the dataflow solver needs, conservatively:

* ``if``/``else`` fork at the header and rejoin after both arms;
* loops have the back edge, the fall-through exit, and ``break``/
  ``continue`` edges (``orelse`` runs on normal exit);
* ``try`` is handled pessimistically — every statement in the ``try``
  body may raise, so each one gets an edge into every handler (plus an
  edge from the header itself, for an exception before the first
  statement); ``finally`` joins all paths;
* ``return``/``raise`` end the path (edge to the virtual exit).

The builder never executes anything and never fails on odd shapes: a
construct it does not model precisely just gets extra edges, which only
makes the downstream analyses more conservative, never unsound in the
may-analysis direction the rules rely on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Virtual node ids: the edge sources/sinks that bracket every scope.
ENTRY = -1
EXIT = -2


@dataclass
class CFG:
    """Statement-level control-flow graph of one scope."""

    #: The scope's statements in source order; indexes are node ids.
    statements: List[ast.stmt] = field(default_factory=list)
    succ: Dict[int, List[int]] = field(default_factory=dict)
    pred: Dict[int, List[int]] = field(default_factory=dict)

    def add_node(self, statement: ast.stmt) -> int:
        node = len(self.statements)
        self.statements.append(statement)
        self.succ.setdefault(node, [])
        self.pred.setdefault(node, [])
        return node

    def add_edge(self, source: int, target: int) -> None:
        if target not in self.succ.setdefault(source, []):
            self.succ[source].append(target)
        if source not in self.pred.setdefault(target, []):
            self.pred[target].append(source)

    def nodes(self) -> Iterator[Tuple[int, ast.stmt]]:
        return enumerate(self.statements)


@dataclass
class _LoopContext:
    """Where ``continue`` and ``break`` jump inside the innermost loop."""

    header: int
    breaks: List[int] = field(default_factory=list)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.succ[ENTRY] = []
        self.cfg.pred[ENTRY] = []
        self.cfg.succ[EXIT] = []
        self.cfg.pred[EXIT] = []

    def build(self, body: List[ast.stmt]) -> CFG:
        frontier = self._wire(body, [ENTRY], [])
        for node in frontier:
            self.cfg.add_edge(node, EXIT)
        return self.cfg

    def _wire(
        self,
        statements: List[ast.stmt],
        frontier: List[int],
        loops: List[_LoopContext],
    ) -> List[int]:
        """Wire a statement list; returns the nodes that fall out of it."""
        for statement in statements:
            node = self.cfg.add_node(statement)
            for source in frontier:
                self.cfg.add_edge(source, node)
            frontier = self._wire_statement(statement, node, loops)
        return frontier

    def _wire_statement(
        self, statement: ast.stmt, node: int, loops: List[_LoopContext]
    ) -> List[int]:
        if isinstance(statement, ast.If):
            then_exit = self._wire(statement.body, [node], loops)
            if statement.orelse:
                else_exit = self._wire(statement.orelse, [node], loops)
            else:
                else_exit = [node]
            return then_exit + else_exit

        if isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
            context = _LoopContext(header=node)
            body_exit = self._wire(statement.body, [node], loops + [context])
            for source in body_exit:
                self.cfg.add_edge(source, node)  # back edge
            if statement.orelse:
                normal_exit = self._wire(statement.orelse, [node], loops)
            else:
                normal_exit = [node]
            return normal_exit + context.breaks

        if isinstance(statement, ast.Try):
            first = len(self.cfg.statements)
            body_exit = self._wire(statement.body, [node], loops)
            body_nodes = [node] + list(range(first, len(self.cfg.statements)))
            handler_exits: List[int] = []
            for handler in statement.handlers:
                handler_exits.extend(
                    self._wire(handler.body, list(body_nodes), loops)
                )
            if statement.orelse:
                body_exit = self._wire(statement.orelse, body_exit, loops)
            merged = body_exit + handler_exits
            if statement.finalbody:
                return self._wire(statement.finalbody, merged, loops)
            return merged

        if isinstance(statement, (ast.With, ast.AsyncWith)):
            return self._wire(statement.body, [node], loops)

        if isinstance(statement, ast.Match):
            exits: List[int] = [node]  # no case may match
            for case in statement.cases:
                exits.extend(self._wire(case.body, [node], loops))
            return exits

        if isinstance(statement, (ast.Return, ast.Raise)):
            self.cfg.add_edge(node, EXIT)
            return []

        if isinstance(statement, ast.Break):
            if loops:
                loops[-1].breaks.append(node)
            return []

        if isinstance(statement, ast.Continue):
            if loops:
                self.cfg.add_edge(node, loops[-1].header)
            return []

        # Simple statements (and opaque nested defs) fall through.
        return [node]


def build_cfg(scope: ast.AST) -> CFG:
    """The CFG of one scope: a (async) function, or a whole module."""
    body = getattr(scope, "body", None)
    if not isinstance(body, list):
        raise TypeError(f"cannot build a CFG for {type(scope).__name__}")
    return _Builder().build(body)


def owned_expressions(statement: ast.stmt) -> List[ast.expr]:
    """The expressions evaluated *by this node itself*.

    For compound statements that is the header expression only (the
    ``if`` test, the ``for`` iterable, …) — the bodies belong to their
    own CFG nodes.  For simple statements it is every child expression.
    Nested function/class definitions own nothing (their bodies are
    separate scopes; their decorators and defaults are evaluated here
    but are rarely interesting and never rebind locals).
    """
    if isinstance(statement, ast.If) or isinstance(statement, ast.While):
        return [statement.test]
    if isinstance(statement, (ast.For, ast.AsyncFor)):
        return [statement.iter]
    if isinstance(statement, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in statement.items]
    if isinstance(statement, ast.Match):
        return [statement.subject]
    if isinstance(statement, ast.Try):
        return []
    if isinstance(
        statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []
    return [
        child
        for child in ast.iter_child_nodes(statement)
        if isinstance(child, ast.expr)
    ]


def iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Every analysable scope of a module: the module, then each
    function/method at any nesting depth, outermost first."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def scope_parameters(scope: ast.AST) -> List[ast.arg]:
    """The parameter list of a function scope (empty for a module)."""
    arguments: Optional[ast.arguments] = getattr(scope, "args", None)
    if arguments is None:
        return []
    params = list(arguments.posonlyargs) + list(arguments.args)
    if arguments.vararg is not None:
        params.append(arguments.vararg)
    params.extend(arguments.kwonlyargs)
    if arguments.kwarg is not None:
        params.append(arguments.kwarg)
    return params
