"""A project-wide call graph resolved through the :class:`Project`.

The interprocedural R-rules ask a question no single module can answer:
*does every call path from a public ingestion entry point down to a
``strict``-accepting parser actually forward the caller's ``strict``?*
Answering it needs to know, for each call site, which project function
it lands on — across modules, through import aliases, and through
method receivers.

Resolution is deliberately modest and sound-for-our-purposes:

* bare names — same-module functions, then import aliases
  (``from repro.core.pipeline import run_analysis``);
* ``self.m`` / ``cls.m`` — the enclosing class, then its base classes
  by name;
* ``ClassName.method`` and fully-dotted
  ``repro.pkg.module.ClassName.method`` spellings;
* ``ClassName(...)`` — the class's ``__init__``;
* ``obj.method`` where ``obj`` is a parameter annotated with a project
  class or a local assigned from ``ClassName(...)``;
* ``self.attr.method`` where ``attr`` is inferred from the class body:
  ``self.attr: T`` annotations, ``self.attr = ClassName(...)`` and
  ``self.attr = name`` assignments (``name`` locally typed);
* subscripted receivers — ``self.mergers[key].feed(...)`` and
  ``self.timelines[ch][link].feed(...)`` resolve through the container
  annotation's element classes (``Dict[str, RunMerger]``), which
  is what lets the spine pass follow the streaming engine's per-link
  machine registries.

Anything else (dynamic dispatch, callables in containers) produces no
edge, which for the R-rules means no finding — a miss, never a false
positive.  The graph is memoised on ``project.cache`` so every rule in
one lint run shares a single build.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple, TypeGuard, Union

from repro.devtools.base import ImportMap, Project, SourceModule, dotted_name
from repro.devtools.flow.cfg import scope_parameters

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_self_attr(node: ast.expr) -> TypeGuard[ast.Attribute]:
    """``self.attr`` / ``cls.attr`` as an assignment target."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    )


def module_dotted_name(module: SourceModule) -> str:
    """A stable dotted name for a module: ``repro.core.matching`` for a
    file under the ``repro`` package, the slash-to-dot path otherwise
    (fixtures keep distinct identities without needing a package)."""
    parts = module.path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index, part in enumerate(parts):
        if part == "repro":
            return ".".join(parts[index:])
    return ".".join(part for part in parts if part not in ("", "."))


@dataclass
class FunctionInfo:
    """One module-level function or method known to the graph."""

    qualname: str
    name: str
    class_name: Optional[str]
    module: SourceModule
    node: FunctionNode
    parameters: Tuple[str, ...]

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class CallEdge:
    """One resolved call site: ``caller``'s body invokes ``callee``."""

    caller: str
    callee: str
    call: ast.Call


class CallGraph:
    """Functions + resolved call edges of one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self.edges: List[CallEdge] = []
        self.edges_from: Dict[str, List[CallEdge]] = {}
        self._imports: Dict[str, ImportMap] = {}
        self._module_names: Dict[str, str] = {}
        #: Package re-exports: ``repro.columnar.parse_log_segment_columnar``
        #: -> ``repro.columnar.ingest.parse_log_segment_columnar`` for a
        #: ``from repro.columnar.ingest import ...`` in the package
        #: ``__init__``.  Without these, a call imported through the
        #: package facade resolves to a qualname the graph never defines
        #: and the edge is silently dropped.
        self.reexports: Dict[str, str] = {}
        #: class name -> attribute name -> inferred project classes, from
        #: ``self.attr`` annotations/assignments across the class body.
        self._attr_types_cache: Dict[str, Dict[str, Set[str]]] = {}
        self._collect()
        self._connect()

    # ------------------------------------------------------ collection
    def _collect(self) -> None:
        for module in self.project.modules:
            if module.tree is None:
                continue
            self._imports[module.path] = ImportMap.from_tree(module.tree)
            prefix = module_dotted_name(module)
            self._module_names[module.path] = prefix
            if module.path.replace("\\", "/").endswith("/__init__.py"):
                for statement in module.tree.body:
                    if (
                        isinstance(statement, ast.ImportFrom)
                        and statement.module
                        and statement.level == 0
                    ):
                        for alias in statement.names:
                            local = alias.asname or alias.name
                            self.reexports[f"{prefix}.{local}"] = (
                                f"{statement.module}.{alias.name}"
                            )
            for statement in module.tree.body:
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self._add(module, statement, prefix, None)
                elif isinstance(statement, ast.ClassDef):
                    for member in statement.body:
                        if isinstance(
                            member, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            self._add(
                                module,
                                member,
                                f"{prefix}.{statement.name}",
                                statement.name,
                            )

    def _add(
        self,
        module: SourceModule,
        node: FunctionNode,
        prefix: str,
        class_name: Optional[str],
    ) -> None:
        info = FunctionInfo(
            qualname=f"{prefix}.{node.name}",
            name=node.name,
            class_name=class_name,
            module=module,
            node=node,
            parameters=tuple(p.arg for p in scope_parameters(node)),
        )
        # First definition wins, mirroring Project.find_class.
        self.functions.setdefault(info.qualname, info)

    # ------------------------------------------------------ connection
    def _connect(self) -> None:
        for info in list(self.functions.values()):
            imports = self._imports[info.module.path]
            local_types = self._local_class_types(info, imports)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func)
                if dotted is not None:
                    callees = self._resolve(
                        dotted, info, imports, local_types
                    )
                else:
                    callees = self._resolve_subscripted(
                        node.func, info, local_types
                    )
                for callee in callees:
                    edge = CallEdge(
                        caller=info.qualname, callee=callee, call=node
                    )
                    self.edges.append(edge)
                    self.edges_from.setdefault(info.qualname, []).append(
                        edge
                    )

    def _resolve(
        self,
        dotted: str,
        info: FunctionInfo,
        imports: ImportMap,
        local_types: Dict[str, Set[str]],
    ) -> List[str]:
        parts = dotted.split(".")
        head = parts[0]

        if head in ("self", "cls") and info.class_name and len(parts) == 2:
            found = self._method(info.class_name, parts[1])
            return [found] if found else []

        # ``self.attr.method`` — through the class's inferred attribute
        # types (``self.matcher = Matcher(...)`` et al.).
        if head in ("self", "cls") and info.class_name and len(parts) == 3:
            targets = []
            attr_types = self._attr_types(info.class_name)
            for class_name in sorted(attr_types.get(parts[1], set())):
                found = self._method(class_name, parts[2])
                if found:
                    targets.append(found)
            return targets

        if head in local_types and len(parts) == 2:
            targets = []
            for class_name in sorted(local_types[head]):
                found = self._method(class_name, parts[1])
                if found:
                    targets.append(found)
            return targets

        resolved = imports.resolve(dotted)
        # Chase package-``__init__`` re-exports to the defining module
        # (alias-of-alias bounded; cycles terminate via the bound).
        for _ in range(4):
            if resolved in self.functions:
                return [resolved]
            target = self.reexports.get(resolved)
            if target is None or target == resolved:
                break
            resolved = target
        if resolved in self.functions:
            return [resolved]
        # ``ClassName(...)`` — with the class imported or module-local.
        constructor = self._constructor(resolved)
        if constructor:
            return [constructor]

        if len(parts) == 1:
            prefix = self._module_names[info.module.path]
            local = f"{prefix}.{dotted}"
            if local in self.functions:
                return [local]
            found = self._constructor(dotted)
            return [found] if found else []

        if len(parts) == 2:
            found = self._method(head, parts[1])
            return [found] if found else []
        return []

    def _constructor(self, name: str) -> Optional[str]:
        """``__init__`` of a class spelled bare or fully dotted."""
        bare = name.split(".")[-1]
        entry = self.project.find_class(bare)
        if entry is None:
            return None
        module, class_def = entry
        qual = f"{self._class_prefix(module, class_def)}.__init__"
        return qual if qual in self.functions else None

    def _method(
        self, class_name: str, method: str, depth: int = 0
    ) -> Optional[str]:
        """A method looked up on a class, then its named bases."""
        if depth > 8:
            return None
        entry = self.project.find_class(class_name)
        if entry is None:
            return None
        module, class_def = entry
        qual = f"{self._class_prefix(module, class_def)}.{method}"
        if qual in self.functions:
            return qual
        for base in class_def.bases:
            base_name = dotted_name(base)
            if base_name is None:
                continue
            found = self._method(
                base_name.split(".")[-1], method, depth + 1
            )
            if found:
                return found
        return None

    def _class_prefix(
        self, module: SourceModule, class_def: ast.ClassDef
    ) -> str:
        prefix = self._module_names.get(module.path)
        if prefix is None:
            prefix = module_dotted_name(module)
        return f"{prefix}.{class_def.name}"

    def _local_class_types(
        self, info: FunctionInfo, imports: ImportMap
    ) -> Dict[str, Set[str]]:
        """Names in ``info`` known to hold instances of project classes:
        annotated parameters and ``x = ClassName(...)`` locals."""
        return self._scope_class_types(info.node, imports)

    def _scope_class_types(
        self, scope: FunctionNode, imports: ImportMap
    ) -> Dict[str, Set[str]]:
        """Per-scope name typing: annotated parameters, annotated locals,
        and (multi-target) assignments from ``ClassName(...)``.  The
        multi-target case matters for the streaming engine's
        ``timeline = self.timelines[ch][link] = TimelineBuilder(...)``
        idiom — every ``Name`` target receives the constructed type."""
        types: Dict[str, Set[str]] = {}
        for parameter in scope_parameters(scope):
            for class_name in self._annotation_classes(parameter.annotation):
                types.setdefault(parameter.arg, set()).add(class_name)
        for node in ast.walk(scope):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
                if isinstance(node.target, ast.Name):
                    for class_name in self._annotation_classes(
                        node.annotation
                    ):
                        types.setdefault(node.target.id, set()).add(
                            class_name
                        )
            name_targets = [t for t in targets if isinstance(t, ast.Name)]
            if not name_targets or not isinstance(value, ast.Call):
                continue
            dotted = dotted_name(value.func)
            if dotted is None:
                continue
            bare = imports.resolve(dotted).split(".")[-1]
            if self.project.find_class(bare) is not None:
                for target in name_targets:
                    types.setdefault(target.id, set()).add(bare)
        return types

    def _attr_types(self, class_name: str) -> Dict[str, Set[str]]:
        """Project classes each ``self.attr`` of ``class_name`` may hold,
        inferred over the whole class body: ``self.attr: T`` annotations
        (container annotations contribute their element classes),
        ``self.attr = ClassName(...)`` constructions, and
        ``self.attr = name`` where ``name`` is locally typed."""
        cached = self._attr_types_cache.get(class_name)
        if cached is not None:
            return cached
        types: Dict[str, Set[str]] = {}
        # Pre-seed the cache so a self-referential attribute type cannot
        # recurse through ``_scope_class_types``.
        self._attr_types_cache[class_name] = types
        entry = self.project.find_class(class_name)
        if entry is None:
            return types
        module, class_def = entry
        imports = self._imports.get(module.path)
        if imports is None and module.tree is not None:
            imports = ImportMap.from_tree(module.tree)
        if imports is None:
            return types
        for member in class_def.body:
            if not isinstance(
                member, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            local = self._scope_class_types(member, imports)
            for node in ast.walk(member):
                if isinstance(node, ast.AnnAssign) and _is_self_attr(
                    node.target
                ):
                    for cname in self._annotation_classes(node.annotation):
                        types.setdefault(node.target.attr, set()).add(cname)
                elif isinstance(node, ast.Assign):
                    attrs = [
                        target.attr
                        for target in node.targets
                        if _is_self_attr(target)
                    ]
                    if not attrs:
                        continue
                    for cname in self._value_classes(
                        node.value, imports, local
                    ):
                        for attr in attrs:
                            types.setdefault(attr, set()).add(cname)
        return types

    def _value_classes(
        self,
        value: Optional[ast.expr],
        imports: ImportMap,
        local: Dict[str, Set[str]],
    ) -> Set[str]:
        """Project classes a right-hand side may construct or forward."""
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is not None:
                bare = imports.resolve(dotted).split(".")[-1]
                if self.project.find_class(bare) is not None:
                    return {bare}
            return set()
        if isinstance(value, ast.Name):
            return set(local.get(value.id, set()))
        return set()

    def _resolve_subscripted(
        self,
        func: ast.expr,
        info: FunctionInfo,
        local_types: Dict[str, Set[str]],
    ) -> List[str]:
        """Calls whose receiver goes through subscripts —
        ``self.mergers[key].feed(...)``,
        ``self.timelines[ch][link].feed(...)`` — resolved by peeling the
        subscripts and typing the base through the container annotation's
        element classes."""
        if not isinstance(func, ast.Attribute):
            return []
        base = func.value
        peeled = False
        while isinstance(base, ast.Subscript):
            base = base.value
            peeled = True
        if not peeled:
            return []
        base_dotted = dotted_name(base)
        if base_dotted is None:
            return []
        targets = []
        for class_name in sorted(
            self._receiver_classes(base_dotted, info, local_types)
        ):
            found = self._method(class_name, func.attr)
            if found:
                targets.append(found)
        return targets

    def _receiver_classes(
        self,
        base_dotted: str,
        info: FunctionInfo,
        local_types: Dict[str, Set[str]],
    ) -> Set[str]:
        """Project classes a receiver expression may evaluate to."""
        parts = base_dotted.split(".")
        if parts[0] in ("self", "cls") and info.class_name:
            if len(parts) == 1:
                return {info.class_name}
            if len(parts) == 2:
                return set(
                    self._attr_types(info.class_name).get(parts[1], set())
                )
            return set()
        if len(parts) == 1 and parts[0] in local_types:
            return set(local_types[parts[0]])
        return set()

    def _annotation_classes(
        self, annotation: Optional[ast.AST]
    ) -> List[str]:
        """Project-class names mentioned by an annotation, seeing
        through ``Optional[...]``/unions and string annotations."""
        if annotation is None:
            return []
        names: List[str] = []
        stack: List[ast.AST] = [annotation]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                try:
                    stack.append(ast.parse(node.value, mode="eval").body)
                except SyntaxError:
                    continue
                continue
            for child in ast.walk(node):
                if isinstance(child, ast.Name):
                    if self.project.find_class(child.id) is not None:
                        names.append(child.id)
                elif isinstance(child, ast.Attribute):
                    if (
                        self.project.find_class(child.attr) is not None
                    ):
                        names.append(child.attr)
        return names

    # ------------------------------------------------------- resolution
    def resolve_callable(
        self, dotted: str, module: SourceModule
    ) -> Optional[str]:
        """Resolve a function *reference* (not a call) spelled in
        ``module`` — e.g. the first argument of ``pool.submit(f, ...)``
        — to a graph qualname, through import aliases, package
        re-exports, the module-local prefix, and ``Class.method``."""
        imports = self._imports.get(module.path)
        if imports is None:
            return None
        resolved = imports.resolve(dotted)
        for _ in range(4):
            if resolved in self.functions:
                return resolved
            target = self.reexports.get(resolved)
            if target is None or target == resolved:
                break
            resolved = target
        if resolved in self.functions:
            return resolved
        parts = dotted.split(".")
        if len(parts) == 1:
            prefix = self._module_names.get(module.path)
            if prefix is not None:
                local = f"{prefix}.{dotted}"
                if local in self.functions:
                    return local
        if len(parts) == 2:
            return self._method(parts[0], parts[1])
        return None

    # ----------------------------------------------------- reachability
    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Every function reachable from ``roots`` over call edges,
        roots included (when they exist in the graph)."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.edges_from.get(current, []):
                if edge.callee not in seen:
                    stack.append(edge.callee)
        return seen


def get_callgraph(project: Project) -> CallGraph:
    """The project's call graph, built once per lint run."""
    graph = project.cache.get("callgraph")
    if not isinstance(graph, CallGraph):
        graph = CallGraph(project)
        project.cache["callgraph"] = graph
    return graph
