"""Structural picklability check over type annotations (for W004).

A function dispatched to a :class:`ProcessPoolExecutor` worker has its
arguments and return value pickled across the process boundary.  Most
project types survive that; callables, iterators, open file handles,
sockets and locks do not — and the failure is a runtime ``TypeError``
deep inside ``multiprocessing`` rather than anything attributable to
the dispatch site.

This walk answers the question *statically and structurally*: given a
parameter/return annotation, does any component name a type known to
be unpicklable?  Project classes referenced by the annotation are
recursed into (their own annotated fields, depth- and cycle-bounded),
so a frozen dataclass smuggling a ``Callable`` field is still caught.
Unknown names are assumed picklable — a miss, never a false positive.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.devtools.base import ImportMap, Project, dotted_name

#: Fully-dotted names (after import resolution) that cannot cross a
#: process boundary by pickling.
UNPICKLABLE_DOTTED = frozenset(
    {
        "socket.socket",
        "threading.Lock",
        "threading.RLock",
        "threading.Event",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Thread",
        "types.ModuleType",
        "types.FrameType",
        "types.TracebackType",
        "_thread.LockType",
    }
)

#: Bare type names unpicklable under any module spelling
#: (``typing.Callable`` and ``collections.abc.Callable`` alike).
UNPICKLABLE_BARE = frozenset(
    {
        "Callable",
        "Iterator",
        "Generator",
        "AsyncGenerator",
        "AsyncIterator",
        "IO",
        "TextIO",
        "BinaryIO",
        "IOBase",
        "TextIOBase",
        "TextIOWrapper",
        "BufferedReader",
        "BufferedWriter",
        "ModuleType",
        "FrameType",
        "TracebackType",
    }
)

#: Recursion bound over nested project classes.
MAX_DEPTH = 5


def unpicklable_names(
    annotation: Optional[ast.AST],
    imports: ImportMap,
    project: Project,
    _depth: int = 0,
    _seen: Optional[Set[str]] = None,
) -> List[str]:
    """Spelled names inside ``annotation`` that are structurally
    unpicklable; empty when the annotation is absent or looks safe."""
    if annotation is None or _depth > MAX_DEPTH:
        return []
    if _seen is None:
        _seen = set()

    offenders: List[str] = []
    for spelled in _component_names(annotation):
        resolved = imports.resolve(spelled)
        bare = resolved.split(".")[-1]
        if resolved in UNPICKLABLE_DOTTED or bare in UNPICKLABLE_BARE:
            offenders.append(spelled)
            continue
        if bare in _seen:
            continue
        entry = project.find_class(bare)
        if entry is None:
            continue
        _seen.add(bare)
        class_module, class_def = entry
        class_imports = ImportMap.from_tree(class_module.tree)
        for statement in class_def.body:
            if isinstance(statement, ast.AnnAssign):
                nested = unpicklable_names(
                    statement.annotation,
                    class_imports,
                    project,
                    _depth + 1,
                    _seen,
                )
                offenders.extend(
                    f"{spelled}.{name}" for name in nested
                )
    return offenders


def _component_names(annotation: ast.AST) -> List[str]:
    """Every dotted name mentioned by an annotation, seeing through
    string annotations and subscripts, without re-visiting the inner
    links of a dotted chain."""
    names: List[str] = []
    stack: List[ast.AST] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                stack.append(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                continue
            continue
        if isinstance(node, (ast.Name, ast.Attribute)):
            spelled = dotted_name(node)
            if spelled is not None:
                names.append(spelled)
                continue
        stack.extend(ast.iter_child_nodes(node))
    return names
