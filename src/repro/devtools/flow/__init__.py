"""Flow-sensitive analysis engine under reprolint.

Three layers, each usable on its own:

* :mod:`repro.devtools.flow.cfg` — per-scope control-flow graphs;
* :mod:`repro.devtools.flow.dataflow` — a forward worklist solver over
  small tag lattices (the F/U rule families plug in evaluators);
* :mod:`repro.devtools.flow.callgraph` — a project-wide call graph for
  the interprocedural R rules.

See ``docs/static-analysis.md`` for the architecture notes.
"""

from repro.devtools.flow.callgraph import (
    CallEdge,
    CallGraph,
    FunctionInfo,
    get_callgraph,
    module_dotted_name,
)
from repro.devtools.flow.cfg import (
    CFG,
    ENTRY,
    EXIT,
    build_cfg,
    iter_scopes,
    owned_expressions,
    scope_parameters,
)
from repro.devtools.flow.dataflow import (
    EMPTY,
    Env,
    ForwardDataflow,
    TagEvaluator,
    Tags,
    analyze_scope,
    join_envs,
)

__all__ = [
    "CFG",
    "CallEdge",
    "CallGraph",
    "EMPTY",
    "ENTRY",
    "EXIT",
    "Env",
    "ForwardDataflow",
    "FunctionInfo",
    "TagEvaluator",
    "Tags",
    "analyze_scope",
    "build_cfg",
    "get_callgraph",
    "iter_scopes",
    "join_envs",
    "module_dotted_name",
    "owned_expressions",
    "scope_parameters",
]
