"""``repro lint`` / ``python -m repro.devtools.lint`` — the driver.

Collects Python files, runs every registered rule, applies suppression
comments and the committed baseline, and reports the remainder in human
or ``--format json`` form.  Exit status: 0 clean, 1 findings, 2 usage or
configuration error — CI treats any non-zero as a failed build.

Configuration lives in ``[tool.reprolint]`` in ``pyproject.toml``::

    [tool.reprolint]
    paths = ["src"]
    exclude = ["tests/fixtures"]
    baseline = "reprolint-baseline.json"
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools import rules as _rules  # noqa: F401  (registry side effect)
from repro.devtools.base import REGISTRY, Finding, Project, SourceModule
from repro.devtools.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
    split_baselined,
)

#: Directory names never descended into during file collection.
SKIP_DIRS = {"__pycache__", ".git", ".hg", ".tox", ".venv", "venv", "node_modules"}


@dataclass
class LintConfig:
    """Effective configuration after pyproject + CLI merging."""

    paths: List[str] = field(default_factory=lambda: ["src"])
    exclude: List[str] = field(default_factory=lambda: ["tests/fixtures"])
    baseline: Optional[str] = None
    root: str = "."


def find_pyproject(start: str) -> Optional[str]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = os.path.abspath(start)
    while True:
        candidate = os.path.join(current, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def load_config(start: str = ".") -> LintConfig:
    """Read ``[tool.reprolint]``; missing file or section means defaults."""
    config = LintConfig()
    pyproject = find_pyproject(start)
    if pyproject is None:
        return config
    config.root = os.path.dirname(pyproject)
    try:
        import tomllib

        with open(pyproject, "rb") as handle:
            document = tomllib.load(handle)
    except ModuleNotFoundError:  # Python < 3.11 without tomli: defaults
        return config
    except (OSError, ValueError):
        return config
    section = document.get("tool", {}).get("reprolint", {})
    if isinstance(section.get("paths"), list):
        config.paths = [str(p) for p in section["paths"]]
    if isinstance(section.get("exclude"), list):
        config.exclude = [str(p) for p in section["exclude"]]
    if isinstance(section.get("baseline"), str):
        config.baseline = section["baseline"]
    return config


def collect_files(
    paths: Sequence[str], exclude: Sequence[str] = ()
) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    normalized_excludes = [os.path.normpath(e).replace("\\", "/") for e in exclude]

    def excluded(path: str) -> bool:
        norm = os.path.normpath(path).replace("\\", "/")
        return any(fragment in norm for fragment in normalized_excludes)

    found: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and not excluded(path):
                found.add(os.path.normpath(path))
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                if not excluded(full):
                    found.add(os.path.normpath(full))
    return sorted(found)


def load_project(files: Sequence[str]) -> Project:
    modules: List[SourceModule] = []
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise SystemExit(f"cannot read {path}: {error}")
        modules.append(SourceModule(path, text))
    return Project(modules)


def lint_project(
    project: Project, rule_ids: Optional[Iterable[str]] = None
) -> Tuple[List[Finding], List[Finding]]:
    """Run the registry over a project.

    Returns ``(active, suppressed)``: findings that count against the
    exit status, and findings silenced by suppression comments.
    """
    selected = (
        {rule_id: REGISTRY[rule_id] for rule_id in rule_ids}
        if rule_ids is not None
        else REGISTRY
    )
    raw: List[Finding] = []
    modules_by_path: Dict[str, SourceModule] = {
        module.path: module for module in project.modules
    }
    for module in project.modules:
        if module.syntax_error is not None:
            raw.append(
                Finding(
                    rule="X001",
                    path=module.path,
                    line=module.syntax_error.lineno or 1,
                    column=(module.syntax_error.offset or 1) - 1,
                    message=f"syntax error: {module.syntax_error.msg}",
                    snippet=module.snippet(module.syntax_error.lineno or 1),
                )
            )
            continue
        for rule in selected.values():
            if not rule.applies_to(module):
                continue
            raw.extend(rule.check(module, project))
        # Suppressions without a justification are findings themselves.
        for suppression in module.suppressions.missing_reasons():
            raw.append(
                Finding(
                    rule="S001",
                    path=module.path,
                    line=suppression.line,
                    column=0,
                    message=(
                        "suppression without a reason; append "
                        "`-- <why this is safe>`"
                    ),
                    snippet=module.snippet(suppression.line),
                )
            )
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        module = modules_by_path.get(finding.path)
        if (
            finding.rule != "S001"
            and module is not None
            and module.suppressions.is_suppressed(finding.rule, finding.line)
        ):
            suppressed.append(finding)
        else:
            active.append(finding)
    active.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return active, suppressed


def lint_paths(
    paths: Sequence[str],
    exclude: Sequence[str] = (),
    rule_ids: Optional[Iterable[str]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Convenience wrapper: collect, parse, lint."""
    project = load_project(collect_files(paths, exclude))
    return lint_project(project, rule_ids)


# ------------------------------------------------------------------ output
def render_human(
    active: Sequence[Finding],
    baselined: Sequence[Finding],
    suppressed: Sequence[Finding],
    files_checked: int,
) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.column + 1}: {f.rule} {f.message}"
        for f in active
    ]
    summary = (
        f"{len(active)} finding{'s' if len(active) != 1 else ''} "
        f"({len(baselined)} baselined, {len(suppressed)} suppressed) "
        f"in {files_checked} file{'s' if files_checked != 1 else ''}"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    active: Sequence[Finding],
    baselined: Sequence[Finding],
    suppressed: Sequence[Finding],
    files_checked: int,
) -> str:
    return json.dumps(
        {
            "version": 1,
            "files_checked": files_checked,
            "findings": [f.to_json() for f in active],
            "baselined": [f.to_json() for f in baselined],
            "suppressed": [f.to_json() for f in suppressed],
        },
        indent=2,
    )


def render_rules() -> str:
    lines = []
    for rule in REGISTRY.values():
        scope = ", ".join(rule.scope) if rule.scope else "everywhere"
        lines.append(f"{rule.id}  {rule.name}  [{scope}]")
        lines.append(f"      {rule.rationale}")
    lines.append(
        "S001  suppression-reason  [everywhere]\n"
        "      Every `# reprolint: disable=...` must justify itself with "
        "`-- <reason>`."
    )
    lines.append(
        "X001  syntax-error  [everywhere]\n"
        "      A file that does not parse cannot be certified."
    )
    return "\n".join(lines)


# --------------------------------------------------------------------- CLI
def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared between ``python -m repro.devtools.lint`` and ``repro lint``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: [tool.reprolint] paths)",
    )
    parser.add_argument(
        "--format",
        choices=["human", "json"],
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        help="baseline file (default: [tool.reprolint] baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any configured baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_rules())
        return 0

    config = load_config()
    # Paths given on the command line are linted as-is: the configured
    # exclusions only shape the default (config-driven) file walk, so
    # `repro lint tests/fixtures/...` can inspect a deliberately bad file.
    exclude = () if args.paths else tuple(config.exclude)
    paths = args.paths or [
        os.path.join(config.root, p) if not os.path.isabs(p) else p
        for p in config.paths
    ]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    rule_ids = None
    if args.select:
        rule_ids = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in rule_ids if r not in REGISTRY]
        if unknown:
            print(f"unknown rule id: {', '.join(unknown)}", file=sys.stderr)
            return 2

    baseline_path = args.baseline
    if baseline_path is None and config.baseline is not None:
        baseline_path = (
            config.baseline
            if os.path.isabs(config.baseline)
            else os.path.join(config.root, config.baseline)
        )
    if args.no_baseline:
        baseline_path = None

    files = collect_files(paths, exclude)
    project = load_project(files)
    active, suppressed = lint_project(project, rule_ids)

    if args.update_baseline:
        if baseline_path is None:
            print("--update-baseline requires a baseline path", file=sys.stderr)
            return 2
        save_baseline(baseline_path, active)
        print(
            f"baseline written: {len(active)} finding(s) -> {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baselined: List[Finding] = []
    if baseline_path is not None and os.path.exists(baseline_path):
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as error:
            print(str(error), file=sys.stderr)
            return 2
        active, baselined = split_baselined(active, baseline)

    renderer = render_json if args.format == "json" else render_human
    print(renderer(active, baselined, suppressed, len(files)))
    return 1 if active else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project-specific static analysis for reproducibility "
        "invariants (see docs/static-analysis.md)",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
